#!/usr/bin/env python3
"""Measure the R-cache's shielding of the V-cache from bus traffic.

Runs the thor surrogate (4 CPUs) through all three organisations the
paper compares and prints, per CPU, how many coherence messages had to
be forwarded to the first-level cache — the experiment behind the
paper's Tables 11-13.

Run:  python examples/coherence_shielding.py [scale]
"""

import sys

from repro import HierarchyConfig, HierarchyKind, Multiprocessor, make_workload
from repro.perf.tables import render


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    rows = []
    per_kind_totals = {}
    for kind in (
        HierarchyKind.VR,
        HierarchyKind.RR_INCLUSION,
        HierarchyKind.RR_NO_INCLUSION,
    ):
        workload = make_workload("thor", scale)
        config = HierarchyConfig.sized("4K", "64K", kind=kind)
        machine = Multiprocessor(workload.layout, workload.spec.n_cpus, config)
        result = machine.run(workload)
        counts = [stats.coherence_to_l1() for stats in result.per_cpu]
        per_kind_totals[kind] = sum(counts)
        rows.append([kind.value, *counts, sum(counts)])

    n_cpus = len(rows[0]) - 2
    headers = ["organisation"] + [f"cpu{i}" for i in range(n_cpus)] + ["total"]
    print(render(headers, rows,
                 title=f"Coherence messages to level 1 (thor, scale={scale:g})"))

    shield_factor = per_kind_totals[HierarchyKind.RR_NO_INCLUSION] / max(
        per_kind_totals[HierarchyKind.VR], 1
    )
    print(
        f"\nWithout inclusion, the first-level cache sees "
        f"{shield_factor:.1f}x more coherence traffic than the V-R design."
    )
    print("Inclusion (V-R or R-R) lets the second level absorb the rest.")


if __name__ == "__main__":
    main()
