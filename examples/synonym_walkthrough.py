#!/usr/bin/env python3
"""Walk through the paper's synonym-handling machinery, step by step.

Two virtual names for the same physical block are created with a
shared mapping; the script then drives the hierarchy through each of
the paper's resolution paths and shows what the tag stores did:

1. *sameset* — the synonym lands in the same V-cache set: the block is
   re-tagged in place, no data moves, a pending write-back is
   cancelled.
2. *move* — on a larger V-cache the two names index different sets:
   the data migrates and the old location is invalidated.
3. *buffer restore* — the only copy is in the write buffer when the
   synonym arrives: the write-back is cancelled and the dirty data
   returns to the V-cache under its new name.

Run:  python examples/synonym_walkthrough.py
"""

from repro import Bus, HierarchyConfig, MainMemory, MemoryLayout, RefKind
from repro.hierarchy import TwoLevelHierarchy

# Two virtual names for one physical region.  The bases differ in bit
# 14, so V-caches bigger than 16K index them into different sets while
# page-sized caches see them in the same set.
NAME_A = 0x200000
NAME_B = 0x284000


def build(l1_size: str, l2_size: str) -> TwoLevelHierarchy:
    layout = MemoryLayout()
    layout.add_shared_segment("alias", [(1, NAME_A), (1, NAME_B)], n_pages=4)
    config = HierarchyConfig.sized(l1_size, l2_size)
    return TwoLevelHierarchy(config, layout, Bus(MainMemory()))


def show(hier: TwoLevelHierarchy, label: str) -> None:
    counters = hier.stats.counters
    print(
        f"  after {label}: sameset={counters['synonym_sameset']} "
        f"moves={counters['synonym_moves']} "
        f"writeback_cancels={counters['writeback_cancels']} "
        f"buffer={len(hier.write_buffer)}"
    )


def scenario_sameset() -> None:
    print("1) sameset: 1K V-cache, both names index the same set")
    hier = build("1K", "8K")
    version = hier.access(1, NAME_A, RefKind.WRITE).version
    print(f"  wrote {version} under {NAME_A:#x}")
    result = hier.access(1, NAME_B, RefKind.READ)
    print(
        f"  read under {NAME_B:#x}: outcome={result.outcome.value}, "
        f"version={result.version} (dirty data preserved, no write-back)"
    )
    show(hier, "synonym read")
    print()


def scenario_move() -> None:
    print("2) move: 32K V-cache, the names index different sets")
    hier = build("32K", "64K")
    l1 = hier.l1_caches[0]
    print(
        f"  set of name A: {l1.config.set_index(NAME_A)}, "
        f"set of name B: {l1.config.set_index(NAME_B)}"
    )
    hier.access(1, NAME_A, RefKind.WRITE)
    result = hier.access(1, NAME_B, RefKind.READ)
    print(f"  read under name B: outcome={result.outcome.value}")
    # The old location must be gone: a third access through name A is
    # itself resolved as a synonym again (the copy now lives under B).
    again = hier.access(1, NAME_A, RefKind.READ)
    print(f"  re-read under name A: outcome={again.outcome.value}")
    show(hier, "round trip")
    print()


def scenario_buffer_restore() -> None:
    print("3) buffer restore: the only copy is in the write buffer")
    hier = build("1K", "8K")
    version = hier.access(1, NAME_A, RefKind.WRITE).version
    # Evict the dirty block with a conflicting address (same V set).
    conflict = NAME_A + hier.config.l1.size
    hier.access(1, conflict, RefKind.READ)
    print(
        f"  evicted dirty block into the write buffer "
        f"(entries: {len(hier.write_buffer)})"
    )
    result = hier.access(1, NAME_B, RefKind.READ)
    print(
        f"  synonym read: outcome={result.outcome.value}, "
        f"version={result.version} == written {version}"
    )
    show(hier, "buffer cancel")
    print()


def main() -> None:
    scenario_sameset()
    scenario_move()
    scenario_buffer_restore()
    print("All synonym paths resolved with exactly one V-cache copy alive.")


if __name__ == "__main__":
    main()
