#!/usr/bin/env python3
"""Coherent I/O against the virtual-real hierarchy.

Problem 4 of the paper's introduction: I/O devices use physical
addresses, which a purely virtual cache can't match without reverse
translation.  In the V-R organisation the physically-addressed
R-cache snoops DMA traffic like any other bus transaction and uses
its v-pointers to reach into the V-cache only when necessary.

The script writes a "file buffer" from the CPU, lets a DMA device
read it out (flushing dirty V-cache data on the fly), then has the
device deposit fresh data that the CPU picks up — all without any
software cache management.

Run:  python examples/dma_io.py
"""

import itertools

from repro import Bus, HierarchyConfig, MainMemory, MemoryLayout, RefKind
from repro.hierarchy import TwoLevelHierarchy
from repro.system import DMAEngine

BUFFER_VADDR = 0x40000
BUFFER_BYTES = 128


def main() -> None:
    layout = MemoryLayout()
    layout.add_private_segment(1, "iobuf", BUFFER_VADDR, n_pages=1)
    bus = Bus(MainMemory())
    cpu = TwoLevelHierarchy(
        HierarchyConfig.sized("4K", "64K"), layout, bus,
        next_version=itertools.count(1).__next__,
    )
    dma = DMAEngine.for_config(bus, cpu.config.l1)
    buffer_paddr = layout.translate(1, BUFFER_VADDR)

    print("1) CPU fills the buffer (write-back V-cache: data stays dirty)")
    for offset in range(0, BUFFER_BYTES, 16):
        cpu.access(1, BUFFER_VADDR + offset, RefKind.WRITE)
    dirty = sum(
        1 for block in cpu.l1_caches[0].store.present_blocks() if block.dirty
    )
    print(f"   dirty V-cache blocks: {dirty}, memory still stale")

    print("2) device DMA-reads the buffer (physical addresses)")
    versions = dma.read(buffer_paddr, BUFFER_BYTES)
    flushes = cpu.stats.counters["l1_coherence_flushes"]
    print(f"   device saw versions {versions[:3]}... "
          f"({flushes} V-cache flushes via v-pointers)")
    print(f"   memory now current: "
          f"{bus.memory.peek(buffer_paddr >> 4) == versions[0]}")

    print("3) device DMA-writes new data into the buffer")
    dma.write(buffer_paddr, BUFFER_BYTES, version=999_999)
    invalidations = cpu.stats.counters["l1_coherence_invalidations"]
    print(f"   stale V-cache copies invalidated: {invalidations}")

    print("4) CPU reads the buffer back")
    result = cpu.access(1, BUFFER_VADDR, RefKind.READ)
    print(f"   CPU observes the device's data: "
          f"{result.version == 999_999} (outcome: {result.outcome.value})")

    print("\nNo reverse-translation hardware at level 1, no software "
          "flushes —\nthe physically-addressed second level handled the "
          "entire exchange.")


if __name__ == "__main__":
    main()
