#!/usr/bin/env python3
"""Study how context-switch frequency erodes a virtual cache's edge.

Sweeps the context-switch rate of a synthetic workload, measuring the
level-1 hit ratio of the V-R hierarchy (flushed at every switch) and
the R-R hierarchy (unaffected), then applies the paper's timing model
to find the translation slow-down at which V-R wins anyway — the
crossover of Figures 4-6.

Also demonstrates the swapped-valid bit: the lazy write-backs it
spreads out versus the burst an eager flush would pay.

Run:  python examples/context_switch_study.py
"""

from dataclasses import replace

from repro import HierarchyConfig, HierarchyKind, Multiprocessor
from repro.perf.model import HitRatios, TimingParams, crossover_slowdown
from repro.perf.tables import render
from repro.trace.synthetic import SyntheticWorkload
from repro.trace.workloads import get_spec


def run(kind: HierarchyKind, switches: int):
    spec = replace(get_spec("abaqus", 0.02), context_switches=switches)
    workload = SyntheticWorkload(spec)
    config = HierarchyConfig.sized("16K", "256K", kind=kind)
    machine = Multiprocessor(workload.layout, spec.n_cpus, config)
    return machine.run(workload)


def main() -> None:
    timing = TimingParams(t1=1.0, t2=4.0, tm=12.0)
    rows = []
    for switches in (0, 5, 20, 80, 320):
        vr = run(HierarchyKind.VR, switches)
        rr = run(HierarchyKind.RR_INCLUSION, switches)
        crossover = crossover_slowdown(
            HitRatios(vr.h1, vr.h2), HitRatios(rr.h1, rr.h2), timing
        )
        totals = vr.aggregate()
        rows.append(
            [
                switches,
                f"{vr.h1:.3f}",
                f"{rr.h1:.3f}",
                f"{rr.h1 - vr.h1:+.3f}",
                f"{crossover * 100:+.1f}%",
                totals.counters["swapped_writebacks"],
                totals.counters["writeback_stalls"],
            ]
        )
    print(
        render(
            [
                "switches",
                "h1 V-R",
                "h1 R-R",
                "R-R edge",
                "crossover slow-down",
                "swapped write-backs",
                "buffer stalls",
            ],
            rows,
            title="Context-switch sweep (abaqus surrogate, 16K/256K)",
        )
    )
    print(
        "\nReading the table: with rare switches V-R matches R-R and any\n"
        "translation penalty favours V-R (negative crossover).  As switches\n"
        "become frequent, R-R gains a level-1 edge and V-R needs a positive\n"
        "translation slow-down to win — the paper puts the realistic value\n"
        "at 6 % or more, so V-R still comes out ahead.  Swapped write-backs\n"
        "grow with the switch rate, yet buffer stalls stay near zero: the\n"
        "swapped-valid bit spreads them out (paper Table 3)."
    )


if __name__ == "__main__":
    main()
