#!/usr/bin/env python3
"""Quickstart: simulate a V-R two-level cache hierarchy.

Builds the `pops` surrogate workload (4 CPUs on a shared bus), runs it
through the paper's virtual-real hierarchy (16K V-cache + 256K
R-cache per CPU), and prints the headline statistics.

Run:  python examples/quickstart.py
"""

from repro import (
    HierarchyConfig,
    HierarchyKind,
    Multiprocessor,
    TimingParams,
    access_time,
    make_workload,
)
from repro.perf.model import HitRatios


def main() -> None:
    # A scaled-down pops trace: ~66k references, 4 CPUs.
    workload = make_workload("pops", scale=0.02)
    spec = workload.spec
    print(f"workload: {spec.name}, {spec.n_cpus} cpus, "
          f"{spec.total_refs} references")

    config = HierarchyConfig.sized("16K", "256K", kind=HierarchyKind.VR)
    print(f"hierarchy: {config.describe()}")

    machine = Multiprocessor(workload.layout, spec.n_cpus, config)
    result = machine.run(workload)

    print(f"\nlevel-1 hit ratio (h1): {result.h1:.3f}")
    print(f"level-2 local hit ratio (h2): {result.h2:.3f}")

    totals = result.aggregate()
    synonyms = (
        totals.counters["synonym_sameset"] + totals.counters["synonym_moves"]
    )
    print(f"synonyms resolved by the R-cache: {synonyms}")
    print(f"swapped-valid restores after switches: "
          f"{totals.counters['swapped_restores']}")
    print(f"coherence messages reaching any V-cache: "
          f"{sum(s.coherence_to_l1() for s in result.per_cpu)}")
    print(f"bus transactions: {result.bus_transactions}")

    # The paper's timing model turns hit ratios into an average access
    # time (t2 = 4*t1, memory at 12*t1).
    timing = TimingParams(t1=1.0, t2=4.0, tm=12.0)
    t_acc = access_time(HitRatios(result.h1, result.h2), timing)
    print(f"\naverage access time (t1 units): {t_acc:.3f}")


if __name__ == "__main__":
    main()
