#!/usr/bin/env python3
"""Characterise a workload's locality and predict cache behaviour.

Uses the reuse-distance profiler to compute the miss-ratio curve of
the pops surrogate's data stream, compares the prediction against an
actual simulation, and turns measured statistics into a cycle
breakdown with the paper's timing parameters.

Run:  python examples/workload_analysis.py
"""

from repro import HierarchyConfig, Multiprocessor, TimingParams, make_workload
from repro.perf.cycles import account_cycles
from repro.perf.tables import render
from repro.trace import profile_reuse_distances


def main() -> None:
    workload = make_workload("pops", scale=0.01)
    records = workload.records()

    # 1. Reuse-distance profile of CPU 0's data stream.
    profile = profile_reuse_distances(records, block_size=16, cpu=0)
    print(
        f"data references profiled: {profile.total} "
        f"({profile.cold} cold, mean stack distance "
        f"{profile.mean_distance():.0f} blocks)"
    )

    rows = []
    for size_kib in (0.5, 1, 2, 4, 8, 16):
        blocks = int(size_kib * 1024) // 16
        rows.append(
            [f"{size_kib:g}K", blocks, f"{profile.miss_ratio(blocks):.3f}"]
        )
    print(render(
        ["cache size", "blocks", "predicted LRU miss ratio"],
        rows,
        title="\nMiss-ratio curve (fully-associative LRU, data stream)",
    ))

    # 2. Simulate and account cycles with the paper's timing model.
    machine = Multiprocessor(
        workload.layout, workload.spec.n_cpus,
        HierarchyConfig.sized("16K", "256K"),
    )
    result = machine.run(records)
    timing = TimingParams(t1=1.0, t2=4.0, tm=12.0)
    breakdown = account_cycles(result.aggregate(), timing)
    print("\nCycle breakdown of the V-R simulation (t2=4, tm=12):")
    print(f"  level-1 hits:   {breakdown.l1_hit_cycles:12.0f} cycles")
    print(f"  level-2 hits:   {breakdown.l2_hit_cycles:12.0f} cycles")
    print(f"  memory:         {breakdown.memory_cycles:12.0f} cycles")
    print(f"  buffer stalls:  {breakdown.stall_cycles:12.0f} cycles")
    print(f"  cycles/ref:     {breakdown.cpi:12.3f}")


if __name__ == "__main__":
    main()
