#!/usr/bin/env python3
"""Dump a synthetic trace to disk, reload it, and replay it.

Shows the trace file format (din-style text with CPU/PID columns) and
that a replayed trace drives the simulator identically to the live
generator — useful for feeding externally produced traces into the
hierarchy.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import HierarchyConfig, Multiprocessor, make_workload
from repro.trace import dump, load, summarize


def main() -> None:
    workload = make_workload("abaqus", scale=0.005)
    records = workload.records()

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "abaqus.trace"
        written = dump(records, path)
        size_kib = path.stat().st_size // 1024
        print(f"dumped {written} trace events to {path.name} ({size_kib} KiB)")
        print("first five lines:")
        for line in path.read_text().splitlines()[:5]:
            print(f"  {line}")

        reloaded = list(load(path))
        assert reloaded == records, "round trip must be lossless"
        summary = summarize(reloaded, "abaqus")
        print(
            f"\nreloaded: {summary.total_refs} refs on {summary.n_cpus} cpus, "
            f"{summary.context_switches} context switches"
        )

        config = HierarchyConfig.sized("8K", "128K")
        live = Multiprocessor(workload.layout, summary.n_cpus, config)
        h1_live = live.run(records).h1
        replayed = Multiprocessor(workload.layout, summary.n_cpus, config)
        h1_replayed = replayed.run(reloaded).h1
        print(f"h1 from live generator: {h1_live:.4f}")
        print(f"h1 from replayed file:  {h1_replayed:.4f}")
        assert h1_live == h1_replayed


if __name__ == "__main__":
    main()
