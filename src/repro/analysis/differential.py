"""``repro-diff``: the object-vs-SoA engine differential harness.

Replays the same workload through both replay engines and asserts the
strongest equivalence the repository can express:

* every per-CPU hierarchy counter is equal,
* bus transaction counts, main-memory counts and TLB counters are equal,
* the unified metrics snapshots are **byte**-identical (serialised with
  sorted keys, exactly how the observability layer persists them),
* the full exported machine states (tag stores, subentry bits, write
  buffers, TLBs, version stamps) have identical canonical digests.

Any divergence is a bug in one of the engines; the report names the
first differing counter to make the protocol discrepancy obvious.

Examples::

    repro-diff                         # tier-1 workloads, default config
    repro-diff --workload abaqus --scale 0.05
    repro-diff --kind rr-incl --json-out diff.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pickle
import sys
from collections.abc import Sequence
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

from ..hierarchy.config import HierarchyConfig, HierarchyKind
from ..system.multiprocessor import Multiprocessor
from ..trace.workloads import get_spec, make_workload, workload_names

#: Engines the harness compares, reference engine first.
ENGINES = ("object", "soa")

#: Default trace scale: large enough to exercise synonyms, context
#: switches and write-buffer pressure on every tier-1 workload, small
#: enough that both engines replay all three in seconds.
DEFAULT_SCALE = 0.02


def canonical_digest(state: Any) -> str:
    """A serialisation-order-independent digest of an exported state.

    Dictionaries are rewritten in sorted key order before pickling so
    that two semantically equal states hash equally even when their
    dicts were populated in different orders (the engines mint some
    counters in different sequences).
    """

    def canon(obj: Any) -> Any:
        if isinstance(obj, dict):
            return {key: canon(obj[key]) for key in sorted(obj, key=repr)}
        if isinstance(obj, (list, tuple)):
            return type(obj)(canon(item) for item in obj)
        return obj

    payload = pickle.dumps(canon(state), protocol=4)
    return hashlib.sha256(payload).hexdigest()


@dataclass
class EngineRun:
    """One engine's observable output on one workload."""

    engine: str
    refs: int
    seconds: float
    counters: list[dict[Any, int]]
    bus: dict[str, int]
    memory: dict[str, int]
    tlb: list[dict[str, int]]
    metrics_bytes: bytes
    state_digest: str


@dataclass
class WorkloadDiff:
    """The comparison verdict for one workload."""

    workload: str
    scale: float
    refs: int
    equal: bool
    mismatches: list[str] = field(default_factory=list)
    seconds: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "scale": self.scale,
            "refs": self.refs,
            "equal": self.equal,
            "mismatches": self.mismatches,
            "seconds": self.seconds,
        }


def _run_engine(
    engine: str,
    name: str,
    scale: float,
    config: HierarchyConfig,
    streamed: bool = False,
) -> EngineRun:
    from ..faults.checkpoint import export_machine

    spec = get_spec(name, scale)
    if streamed:
        from ..trace.stream import SyntheticTraceStream

        trace: Any = SyntheticTraceStream(spec)
        layout = trace.layout
    else:
        workload = make_workload(name, scale)
        trace = workload
        layout = workload.layout
    machine = Multiprocessor(layout, spec.n_cpus, config, engine=engine)
    started = perf_counter()
    result = machine.run(trace)
    seconds = perf_counter() - started
    metrics = result.metrics().snapshot()
    metrics_bytes = json.dumps(metrics, sort_keys=True).encode()
    state = export_machine(machine, result.refs_processed, result.refs_processed)
    return EngineRun(
        engine=engine,
        refs=result.refs_processed,
        seconds=seconds,
        counters=[dict(s.counters.as_dict()) for s in result.per_cpu],
        bus=result.bus_transactions,
        memory=machine.bus.memory.stats.as_dict(),
        tlb=result.tlb_per_cpu,
        metrics_bytes=metrics_bytes,
        state_digest=canonical_digest(state),
    )


def _first_counter_diff(
    label: str,
    a: dict[Any, int],
    b: dict[Any, int],
    a_name: str = "object",
    b_name: str = "soa",
) -> list[str]:
    out = []
    for key in sorted(set(a) | set(b), key=repr):
        if a.get(key, 0) != b.get(key, 0):
            out.append(
                f"{label}[{key!r}]: {a_name}={a.get(key, 0)} "
                f"{b_name}={b.get(key, 0)}"
            )
    return out


def _compare_runs(
    ref: EngineRun, other: EngineRun, label: str
) -> list[str]:
    """Every observable of *other* checked against the reference run."""
    ref_name = ref.engine
    mismatches: list[str] = []
    if ref.refs != other.refs:
        mismatches.append(
            f"refs: {ref_name}={ref.refs} {label}={other.refs}"
        )
    for cpu, (a, b) in enumerate(zip(ref.counters, other.counters)):
        mismatches += _first_counter_diff(f"cpu{cpu}", a, b, ref_name, label)
    for cpu, (a, b) in enumerate(zip(ref.tlb, other.tlb)):
        mismatches += _first_counter_diff(f"tlb{cpu}", a, b, ref_name, label)
    mismatches += _first_counter_diff("bus", ref.bus, other.bus, ref_name, label)
    mismatches += _first_counter_diff(
        "memory", ref.memory, other.memory, ref_name, label
    )
    if ref.metrics_bytes != other.metrics_bytes:
        mismatches.append(f"{label}: metrics snapshots differ byte-wise")
    if ref.state_digest != other.state_digest:
        mismatches.append(
            f"state digests differ: {ref_name}={ref.state_digest[:16]}… "
            f"{label}={other.state_digest[:16]}…"
        )
    return mismatches


def diff_workload(
    name: str,
    scale: float = DEFAULT_SCALE,
    config: HierarchyConfig | None = None,
    streamed: bool = False,
) -> WorkloadDiff:
    """Replay *name* on both engines and compare every observable.

    With *streamed*, both engines additionally replay the workload
    through the bounded-chunk stream layer, and all four runs must
    agree — the streaming-equivalence acceptance check.
    """
    if config is None:
        config = HierarchyConfig.sized("4K", "64K")
    runs: dict[str, EngineRun] = {
        engine: _run_engine(engine, name, scale, config)
        for engine in ENGINES
    }
    if streamed:
        for engine in ENGINES:
            runs[f"{engine}+stream"] = _run_engine(
                engine, name, scale, config, streamed=True
            )
    ref = runs["object"]
    mismatches: list[str] = []
    for label, run in runs.items():
        if label == "object":
            continue
        mismatches += _compare_runs(ref, run, label)
    return WorkloadDiff(
        workload=name,
        scale=scale,
        refs=ref.refs,
        equal=not mismatches,
        mismatches=mismatches,
        seconds={label: run.seconds for label, run in runs.items()},
    )


def diff_all(
    scale: float = DEFAULT_SCALE,
    config: HierarchyConfig | None = None,
    workloads: Sequence[str] | None = None,
    streamed: bool = False,
) -> list[WorkloadDiff]:
    """Differential comparison over the tier-1 workload set."""
    names = list(workloads) if workloads else workload_names()
    return [diff_workload(name, scale, config, streamed) for name in names]


_KINDS = {
    "vr": HierarchyKind.VR,
    "rr-incl": HierarchyKind.RR_INCLUSION,
    "rr-noincl": HierarchyKind.RR_NO_INCLUSION,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-diff",
        description="Replay tier-1 workloads on both replay engines and "
        "assert bit-identical counters, metrics and machine states.",
    )
    parser.add_argument(
        "--workload",
        action="append",
        default=None,
        choices=workload_names(),
        help="compare one workload (repeatable; default: all tier-1)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=DEFAULT_SCALE,
        help=f"trace scale (default {DEFAULT_SCALE})",
    )
    parser.add_argument("--l1", default="4K", help="level-1 size (default 4K)")
    parser.add_argument("--l2", default="64K", help="level-2 size (default 64K)")
    parser.add_argument(
        "--kind",
        choices=sorted(_KINDS),
        default="vr",
        help="hierarchy organisation (default vr)",
    )
    parser.add_argument(
        "--streamed",
        action="store_true",
        help="also replay each engine through the bounded-chunk stream "
        "layer and require all four runs to agree",
    )
    parser.add_argument(
        "--json-out", metavar="PATH", help="write the verdicts as JSON"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = HierarchyConfig.sized(args.l1, args.l2, kind=_KINDS[args.kind])
    diffs = diff_all(args.scale, config, args.workload, args.streamed)
    for diff in diffs:
        status = "ok " if diff.equal else "FAIL"
        timing = " ".join(
            f"{engine}={seconds:.2f}s"
            for engine, seconds in diff.seconds.items()
        )
        print(
            f"{status} {diff.workload:8s} refs={diff.refs:<8d} "
            f"scale={diff.scale} {timing}"
        )
        for line in diff.mismatches[:20]:
            print(f"     {line}")
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(
                [diff.to_dict() for diff in diffs],
                handle,
                indent=2,
                sort_keys=True,
            )
        print(f"differential report written to {args.json_out}")
    return 0 if all(diff.equal for diff in diffs) else 1


if __name__ == "__main__":
    raise SystemExit(main())
