"""``repro-lint``: a stdlib-``ast`` lint pack with repo-specific rules.

The generic linters cannot know this repo's conventions, so four
rules encode them directly:

* **RPL001** — every dotted metric-name string literal passed to a
  :class:`~repro.obs.metrics.MetricsRegistry` method (``inc``,
  ``value``, ``counter``, ``histogram``, ``timer``, ``total``) must
  exist in the canonical dotted namespace (the values of
  ``HIERARCHY_METRIC_NAMES`` / ``TLB_METRIC_NAMES`` plus the
  dynamically generated ``bus.*`` / ``misc.*`` families).  A typo in
  a metric name otherwise reads as a silent zero.
* **RPL002** — tracer emit sites must go through a pre-resolved
  category slot: the receiver must be an attribute or name starting
  with ``_tr`` (bound once at construction, ``None`` when the
  category is disabled) and the category argument must be a string
  literal from :data:`repro.obs.tracing.CATEGORIES`.
* **RPL003** — classes in modules reachable from the
  ``Multiprocessor._run_fast`` replay loop must declare
  ``__slots__`` (or be ``@dataclass(slots=True)``); a stray
  ``__dict__`` on a per-block object multiplies the simulator's
  footprint by the block count.
* **RPL004** — no dict display, dict/set comprehension or f-string
  inside the designated hot replay functions; these allocate per
  reference and belong outside the loop.
* **RPL005** — the SoA chunk loop (``repro.core.soa._walk_chunk``)
  must stay object-free per reference: **no attribute lookups at
  all** (every array, counter and bound method is hoisted into a
  local before the loop — an attribute read inside would re-introduce
  the per-reference ``CacheBlock``-style indirection the SoA core
  exists to remove) and no dict/list/set construction, comprehension
  or f-string.

Rules are scoped: RPL001/RPL002 skip ``tests/`` (tests construct
synthetic registries and tracers on purpose) and the defining modules
themselves; RPL003/RPL004 apply only to the hot-module allowlist;
RPL005 only to the chunk-loop function map.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

#: Rule id -> one-line summary (``repro-lint --list-rules``).
RULES: dict[str, str] = {
    "RPL001": "dotted metric-name literals must exist in the "
    "MetricsRegistry namespace",
    "RPL002": "tracer emit sites must use a pre-resolved _tr* category "
    "slot and a literal category",
    "RPL003": "classes in hot modules must declare __slots__",
    "RPL004": "no dict/set/f-string allocation inside hot replay "
    "functions",
    "RPL005": "no attribute lookups or container construction inside "
    "the SoA chunk loop",
    "RPL000": "file must parse",
}

#: Registry methods whose string arguments are dotted metric names.
_METRIC_METHODS = frozenset(
    {"inc", "value", "counter", "histogram", "timer", "total"}
)

#: Metric families minted at runtime (``registry_from_result``).
_DYNAMIC_METRIC_PREFIXES = ("bus.", "misc.")

#: Modules whose classes sit on the ``_run_fast`` replay path.  Keys
#: are repo paths from the package root (see :func:`_module_key`).
HOT_MODULES = frozenset(
    {
        "repro/cache/block.py",
        "repro/cache/replacement.py",
        "repro/cache/tagstore.py",
        "repro/cache/write_buffer.py",
        "repro/coherence/bus.py",
        "repro/coherence/messages.py",
        "repro/common/stats.py",
        "repro/core/soa.py",
        "repro/hierarchy/l1.py",
        "repro/hierarchy/rcache.py",
        "repro/hierarchy/stats.py",
        "repro/hierarchy/twolevel.py",
        "repro/mmu/tlb.py",
        "repro/system/multiprocessor.py",
    }
)

#: Per-reference functions where allocation is banned (RPL004).
HOT_FUNCTIONS: dict[str, frozenset[str]] = {
    "repro/cache/tagstore.py": frozenset({"access", "find"}),
    "repro/hierarchy/twolevel.py": frozenset({"access"}),
    "repro/mmu/tlb.py": frozenset({"translate"}),
    "repro/system/multiprocessor.py": frozenset({"_run_fast"}),
}

#: SoA chunk-loop functions held to the stricter RPL005 standard:
#: everything is pre-bound to locals, so *any* attribute lookup (let
#: alone a ``CacheBlock`` one) or container construction inside is a
#: per-reference allocation regression.
CHUNK_LOOP_FUNCTIONS: dict[str, frozenset[str]] = {
    "repro/core/soa.py": frozenset({"_walk_chunk"}),
}

#: Base classes that exempt a class from RPL003: their machinery is
#: incompatible with slots (enums, exceptions) or the class is an
#: interface declaration (Protocol, ABC).
_SLOTLESS_BASES = frozenset(
    {"ABC", "Enum", "Exception", "Flag", "IntEnum", "Protocol", "StrEnum"}
)


@dataclass(frozen=True)
class Finding:
    """One lint violation."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def known_metric_names() -> frozenset[str]:
    """The canonical dotted metric namespace (RPL001's universe)."""
    from ..obs.metrics import (
        COHERENCE_TO_L1_METRICS,
        HIERARCHY_METRIC_NAMES,
        RUNNER_METRIC_NAMES,
        SANITIZE_METRIC_NAMES,
        SERVE_METRIC_NAMES,
        TLB_METRIC_NAMES,
    )

    return (
        frozenset(HIERARCHY_METRIC_NAMES.values())
        | frozenset(TLB_METRIC_NAMES.values())
        | frozenset(COHERENCE_TO_L1_METRICS)
        | frozenset(RUNNER_METRIC_NAMES)
        | frozenset(SERVE_METRIC_NAMES)
        | frozenset(SANITIZE_METRIC_NAMES)
        | frozenset({"sim.refs", "wb.interval"})
    )


def tracer_categories() -> frozenset[str]:
    from ..obs.tracing import CATEGORIES

    return frozenset(CATEGORIES)


def _module_key(path: str) -> str:
    """Path from the package root: ``src/repro/mmu/tlb.py`` ->
    ``repro/mmu/tlb.py``.  Paths outside the package keep their
    as-given form."""
    parts = Path(path).parts
    if "repro" in parts:
        return "/".join(parts[parts.index("repro") :])
    return "/".join(parts)


def _in_tests(path: str) -> bool:
    return "tests" in Path(path).parts


def _literal_str(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


# ---------------------------------------------------------------- RPL001


def _check_metric_names(
    tree: ast.AST, path: str, known: frozenset[str]
) -> Iterator[Finding]:
    key = _module_key(path)
    if _in_tests(path) or key == "repro/obs/metrics.py":
        return
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _METRIC_METHODS
        ):
            continue
        for arg in node.args:
            name = _literal_str(arg)
            if name is None or "." not in name:
                continue
            if name in known or name.startswith(_DYNAMIC_METRIC_PREFIXES):
                continue
            yield Finding(
                "RPL001",
                path,
                arg.lineno,
                arg.col_offset,
                f'unknown metric name "{name}" (not in the '
                "MetricsRegistry dotted namespace)",
            )
        for kw in node.keywords:
            if kw.arg != "prefix":
                continue
            prefix = _literal_str(kw.value)
            if prefix is None:
                continue
            if prefix.startswith(_DYNAMIC_METRIC_PREFIXES) or any(
                name.startswith(prefix) for name in known
            ):
                continue
            yield Finding(
                "RPL001",
                path,
                kw.value.lineno,
                kw.value.col_offset,
                f'metric prefix "{prefix}" matches no known metric name',
            )


# ---------------------------------------------------------------- RPL002


def _check_tracer_sites(
    tree: ast.AST, path: str, categories: frozenset[str]
) -> Iterator[Finding]:
    key = _module_key(path)
    if (
        _in_tests(path)
        or not key.startswith("repro/")
        or key == "repro/obs/tracing.py"
    ):
        return
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
        ):
            continue
        receiver = node.func.value
        if isinstance(receiver, ast.Attribute):
            slot = receiver.attr
        elif isinstance(receiver, ast.Name):
            slot = receiver.id
        else:
            slot = None
        if slot is None or not slot.startswith("_tr"):
            yield Finding(
                "RPL002",
                path,
                node.lineno,
                node.col_offset,
                "emit receiver must be a pre-resolved tracer slot "
                '(attribute named "_tr*"), not '
                f'"{slot or ast.unparse(receiver)}"',
            )
        category = _literal_str(node.args[0]) if node.args else None
        if category is None:
            yield Finding(
                "RPL002",
                path,
                node.lineno,
                node.col_offset,
                "emit category must be a string literal",
            )
        elif category not in categories:
            yield Finding(
                "RPL002",
                path,
                node.args[0].lineno,
                node.args[0].col_offset,
                f'unknown trace category "{category}" (known: '
                f"{', '.join(sorted(categories))})",
            )


# ---------------------------------------------------------------- RPL003


def _base_name(base: ast.expr) -> str | None:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    if isinstance(base, ast.Subscript):  # Protocol[T], Generic[T]
        return _base_name(base.value)
    return None


def _slots_exempt(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = _base_name(base)
        if name is None:
            continue
        if name in _SLOTLESS_BASES or name.endswith(("Error", "Exception")):
            return True
    return False


def _dataclass_slots(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if not (
            isinstance(decorator, ast.Call)
            and isinstance(decorator.func, (ast.Name, ast.Attribute))
        ):
            continue
        func = decorator.func
        name = func.id if isinstance(func, ast.Name) else func.attr
        if name != "dataclass":
            continue
        for kw in decorator.keywords:
            if (
                kw.arg == "slots"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return True
    return False


def _declares_slots(node: ast.ClassDef) -> bool:
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(statement, ast.AnnAssign):
            target = statement.target
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def _check_hot_slots(tree: ast.AST, path: str) -> Iterator[Finding]:
    if _module_key(path) not in HOT_MODULES:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if _slots_exempt(node) or _dataclass_slots(node):
            continue
        if _declares_slots(node):
            continue
        yield Finding(
            "RPL003",
            path,
            node.lineno,
            node.col_offset,
            f'hot-module class "{node.name}" must declare __slots__ '
            "(or be @dataclass(slots=True))",
        )


# ---------------------------------------------------------------- RPL004

_ALLOC_NODES = (ast.Dict, ast.DictComp, ast.SetComp, ast.JoinedStr)
_ALLOC_LABEL = {
    "Dict": "dict display",
    "DictComp": "dict comprehension",
    "SetComp": "set comprehension",
    "JoinedStr": "f-string",
}


def _alloc_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Outermost allocation nodes under *root* (an f-string's format
    spec is itself a JoinedStr — reporting it separately would double
    count)."""
    for child in ast.iter_child_nodes(root):
        if isinstance(child, _ALLOC_NODES):
            yield child
        else:
            yield from _alloc_nodes(child)


def _check_hot_allocations(tree: ast.AST, path: str) -> Iterator[Finding]:
    hot = HOT_FUNCTIONS.get(_module_key(path))
    if not hot:
        return
    for node in ast.walk(tree):
        if not (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name in hot
        ):
            continue
        for inner in _alloc_nodes(node):
            label = _ALLOC_LABEL[type(inner).__name__]
            yield Finding(
                "RPL004",
                path,
                inner.lineno,
                inner.col_offset,
                f"{label} allocates inside hot function "
                f'"{node.name}" — hoist it out of the replay loop',
            )


# ---------------------------------------------------------------- RPL005

_CHUNK_ALLOC_NODES = (
    ast.Dict,
    ast.DictComp,
    ast.Set,
    ast.SetComp,
    ast.List,
    ast.ListComp,
    ast.GeneratorExp,
    ast.JoinedStr,
)
_CHUNK_ALLOC_LABEL = {
    "Dict": "dict display",
    "DictComp": "dict comprehension",
    "Set": "set display",
    "SetComp": "set comprehension",
    "List": "list display",
    "ListComp": "list comprehension",
    "GeneratorExp": "generator expression",
    "JoinedStr": "f-string",
}


def _check_chunk_loop(tree: ast.AST, path: str) -> Iterator[Finding]:
    chunk = CHUNK_LOOP_FUNCTIONS.get(_module_key(path))
    if not chunk:
        return
    for node in ast.walk(tree):
        if not (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name in chunk
        ):
            continue
        for inner in ast.walk(node):
            if isinstance(inner, ast.Attribute):
                yield Finding(
                    "RPL005",
                    path,
                    inner.lineno,
                    inner.col_offset,
                    f'attribute lookup ".{inner.attr}" inside the SoA '
                    f'chunk loop "{node.name}" — bind it to a local '
                    "before the loop (per-reference attribute access "
                    "re-introduces the object-model indirection)",
                )
            elif isinstance(inner, _CHUNK_ALLOC_NODES):
                label = _CHUNK_ALLOC_LABEL[type(inner).__name__]
                yield Finding(
                    "RPL005",
                    path,
                    inner.lineno,
                    inner.col_offset,
                    f'{label} inside the SoA chunk loop "{node.name}" '
                    "— allocates per reference; hoist it out",
                )


# ------------------------------------------------------------------ API


def lint_source(source: str, path: str) -> list[Finding]:
    """Lint one file's source under its repo-relative ``path``.

    The path drives rule scoping (hot-module membership, tests
    exclusion), so tests can exercise any rule by supplying a crafted
    path alongside a deliberately violating sample.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                "RPL000",
                path,
                exc.lineno or 1,
                (exc.offset or 1) - 1,
                f"syntax error: {exc.msg}",
            )
        ]
    findings = [
        *_check_metric_names(tree, path, known_metric_names()),
        *_check_tracer_sites(tree, path, tracer_categories()),
        *_check_hot_slots(tree, path),
        *_check_hot_allocations(tree, path),
        *_check_chunk_loop(tree, path),
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _iter_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def lint_paths(paths: Iterable[str | Path]) -> list[Finding]:
    """Lint every ``*.py`` file under the given files/directories."""
    findings: list[Finding] = []
    for path in _iter_files(paths):
        findings.extend(lint_source(path.read_text(encoding="utf-8"), str(path)))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Repo-specific AST lint rules (RPL001-RPL005).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default %(default)s)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule, summary in sorted(RULES.items()):
            print(f"{rule}  {summary}")
        return 0
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    findings = lint_paths(args.paths)
    if args.format == "json":
        json.dump(
            {
                "ok": not findings,
                "findings": [f.to_dict() for f in findings],
            },
            sys.stdout,
            indent=2,
            sort_keys=True,
        )
        print()
    else:
        for finding in findings:
            print(finding.render())
        n_files = sum(1 for _ in _iter_files(args.paths))
        print(
            f"{len(findings)} finding(s) in {n_files} file(s)"
            if findings
            else f"clean: {n_files} file(s), 0 findings"
        )
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
