"""The concrete two-processor world the model checker drives.

The checker does not re-transcribe the protocol by hand — it executes
the real implementation (``hierarchy/twolevel.py`` + ``coherence/``)
on a machine small enough that every protocol-relevant configuration
of one tracked physical block is reachable within a few hundred
abstract states, and extracts the transition table from what the code
actually does.  The abstraction maps a concrete machine onto:

    (cpu0 view, cpu1 view, memory-fresh?)

where each CPU view is the tracked block's level-1 copies (virtual
name, valid/swapped, dirty, fresh), its R-cache subentry bits
(inclusion, buffer, share state, vdirty, rdirty, fresh) and its
write-buffer entry (swapped, fresh).  "Fresh" compares a copy's
version stamp against the globally last written version — the value
oracle folded into the state.

Geometry (chosen so every protocol path is exercisable):

* page size 32 B — small enough that the level-1 index bits (4-5)
  reach past the page offset (5 bits), which is the precondition for
  synonyms landing in *different* level-1 sets (the paper's *move*
  resolution; with larger pages only *sameset* is reachable).
* level 1: 64 B, 16 B blocks, direct-mapped (4 sets).
* level 2: 128 B, 32 B blocks, direct-mapped (4 sets, 2 subentries).
* one shared page mapped at (pid 1, 0x100), (pid 1, 0x120) — an
  intra-process synonym pair for CPU 0 — and (pid 2, 0x100) for
  CPU 1; it owns frame 0, so the tracked sub-block is pblock 0
  (level-1 sets 0 and 2 virtually, level-2 set 0).
* two private 9-page arenas provide conflict addresses that evict
  the tracked block from level 1 (same level-1 set, different level-2
  set) and from level 2 (same level-2 set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..cache.write_buffer import WriteBufferEntry
from ..coherence.bus import Bus, MainMemory
from ..coherence.messages import BusOp, BusTransaction
from ..coherence.protocol import ShareState, WritePolicy
from ..common.errors import InclusionError, ProtocolError
from ..faults.checkpoint import export_hierarchy, restore_hierarchy
from ..hierarchy.checker import check_coherence, scan_hierarchy
from ..hierarchy.config import HierarchyConfig, HierarchyKind, Protocol
from ..hierarchy.twolevel import TwoLevelHierarchy
from ..mmu.address_space import MemoryLayout
from ..system.multiprocessor import VersionCounter
from ..trace.record import RefKind

#: Bytes per page — must keep the level-1 index above the page offset.
PAGE_SIZE = 32
#: CPU 0 runs process 1, CPU 1 runs process 2.
PIDS = (1, 2)
#: Primary virtual name of the tracked shared page (both processes).
VADDR_A = 0x100
#: CPU 0's synonym name for the same page (different level-1 set).
VADDR_SYN = 0x120
#: Physical sub-block number under observation (frame 0, offset 0).
TRACKED_PBLOCK = 0

#: Conflict-read addresses: (event name, cpu, vaddr).  Chosen per the
#: module docstring so that between them, the tracked block can be
#: evicted from either of its possible level-1 sets (virtual or
#: physical indexing) and from its level-2 set.
_CONFLICTS = (
    ("x0", 0, 0x200),   # frame 1:  L1 set 0 (virtual), L2 set 1
    ("x0s", 0, 0x220),  # frame 2:  L1 set 2 (virtual) / 0 (physical), L2 set 2
    ("y0", 0, 0x260),   # frame 4:  L2 set 0 — forces a level-2 eviction
    ("x1", 1, 0x200),   # frame 10: L1 set 0 (both indexings), L2 set 2
    ("y1", 1, 0x240),   # frame 12: L2 set 0 — forces a level-2 eviction
)


@dataclass(frozen=True)
class Scenario:
    """One (organisation, protocol, write policy) configuration."""

    name: str
    kind: HierarchyKind
    protocol: Protocol
    write_policy: WritePolicy

    def describe(self) -> dict[str, str]:
        """JSON-friendly identification."""
        return {
            "name": self.name,
            "kind": self.kind.value,
            "protocol": self.protocol.value,
            "write_policy": self.write_policy.value,
        }


def _scenarios() -> tuple[Scenario, ...]:
    out = []
    for kind in HierarchyKind:
        for protocol in Protocol:
            out.append(
                Scenario(
                    f"{kind.value}-{protocol.value}-wb",
                    kind,
                    protocol,
                    WritePolicy.WRITE_BACK,
                )
            )
    for protocol in Protocol:
        out.append(
            Scenario(
                f"vr-{protocol.value}-wt",
                HierarchyKind.VR,
                protocol,
                WritePolicy.WRITE_THROUGH,
            )
        )
    return tuple(out)


#: The full scenario matrix ``repro-verify --exhaustive`` explores:
#: all three organisations under both protocols with a write-back
#: level 1, plus V-R under both protocols with a write-through level 1.
SCENARIOS: tuple[Scenario, ...] = _scenarios()


def scenario_named(name: str) -> Scenario:
    """Look up a scenario by its report name."""
    for scenario in SCENARIOS:
        if scenario.name == name:
            return scenario
    known = ", ".join(s.name for s in SCENARIOS)
    raise KeyError(f"unknown scenario {name!r}; choose from: {known}")


class ProtocolModel:
    """A concrete machine plus the abstraction the explorer quotients by.

    *engine* selects the concrete machine's hierarchy class: "object"
    builds the reference :class:`TwoLevelHierarchy`, "soa" builds the
    array-backed :class:`repro.core.SoAHierarchy`.  Both expose the
    same scalar protocol methods, so the explorer drives either
    unchanged — running the BFS against "soa" pins the SoA core's
    state machine to the reference one's.
    """

    def __init__(self, scenario: Scenario, engine: str = "object") -> None:
        if engine not in ("object", "soa"):
            raise ValueError(f"unknown engine {engine!r} (use 'object' or 'soa')")
        self.scenario = scenario
        self.engine = engine
        layout = MemoryLayout(page_size=PAGE_SIZE)
        layout.add_shared_segment(
            "shm",
            [(PIDS[0], VADDR_A), (PIDS[0], VADDR_SYN), (PIDS[1], VADDR_A)],
            n_pages=1,
        )
        layout.add_private_segment(PIDS[0], "arena0", 0x200, n_pages=9)
        layout.add_private_segment(PIDS[1], "arena1", 0x200, n_pages=9)
        self.layout = layout
        config = HierarchyConfig.sized(
            "64",
            "128",
            block_size=16,
            l2_block_size=32,
            kind=scenario.kind,
            page_size=PAGE_SIZE,
            l1_write_policy=scenario.write_policy,
            protocol=scenario.protocol,
        )
        self.bus = Bus(MainMemory())
        self.version_counter = VersionCounter()
        # A drain period beyond any reachable path length makes write
        # buffer draining an *explicit* event (d0/d1) instead of hidden
        # modulo-counter state the abstraction cannot see.
        if engine == "soa":
            from ..core.soa import SoAHierarchy as hierarchy_cls
        else:
            hierarchy_cls = TwoLevelHierarchy
        self.hierarchies = [
            hierarchy_cls(
                config,
                layout,
                self.bus,
                next_version=self.version_counter,
                drain_period=1 << 30,
                seed=cpu * 97,
            )
            for cpu in range(2)
        ]
        # Version stamp of the last write to the tracked block — the
        # value oracle every read event and freshness bit compares to.
        self._expected = 0
        self._events = self._build_events()

    # -- event vocabulary ---------------------------------------------------

    def _build_events(self) -> tuple[tuple[str, int, str, int | None], ...]:
        vr = self.scenario.kind.virtual_l1
        events: list[tuple[str, int, str, int | None]] = [
            ("r0", 0, "read", VADDR_A),
            ("w0", 0, "write", VADDR_A),
            ("r1", 1, "read", VADDR_A),
            ("w1", 1, "write", VADDR_A),
        ]
        if vr:
            # Synonym accesses and context switches only change state
            # for a virtually-addressed level 1.
            events += [
                ("r0s", 0, "read", VADDR_SYN),
                ("w0s", 0, "write", VADDR_SYN),
                ("cs0", 0, "cswitch", None),
                ("cs1", 1, "cswitch", None),
            ]
        events += [
            (name, cpu, "read", vaddr) for name, cpu, vaddr in _CONFLICTS
        ]
        events += [("d0", 0, "drain", None), ("d1", 1, "drain", None)]
        return tuple(events)

    def events(self) -> tuple[str, ...]:
        """The event names, in deterministic exploration order."""
        return tuple(name for name, _, _, _ in self._events)

    def apply(self, event: str) -> tuple[bool, list[str]]:
        """Apply one event to the concrete machine.

        Returns ``(applied, violations)`` — *applied* is False when
        the event is inapplicable in the current state (draining an
        empty buffer).  *violations* carries read-oracle failures.
        Protocol exceptions raised by the implementation propagate to
        the explorer, which records them as error transitions.
        """
        for name, cpu, action, vaddr in self._events:
            if name == event:
                break
        else:
            raise KeyError(f"unknown event {event!r}")
        hier = self.hierarchies[cpu]
        if action == "drain":
            if not len(hier.write_buffer):
                return False, []
            # Sanctioned private access: draining one entry is the
            # bus-timing event; the public drain empties the buffer.
            hier._drain_one()
            return True, []
        if action == "cswitch":
            hier.context_switch(PIDS[cpu])
            return True, []
        kind = RefKind.WRITE if action == "write" else RefKind.READ
        assert vaddr is not None
        result = hier.access(PIDS[cpu], vaddr, kind)
        violations: list[str] = []
        tracked = (
            self.layout.translate(PIDS[cpu], vaddr) >> 4 == TRACKED_PBLOCK
        )
        if tracked:
            if kind is RefKind.WRITE:
                self._expected = result.version
            elif result.version != self._expected:
                violations.append(
                    f"read oracle: cpu{cpu} observed version "
                    f"{result.version}, expected {self._expected} "
                    f"(outcome {result.outcome.value})"
                )
        return True, violations

    # -- abstraction --------------------------------------------------------

    def abstract(self) -> tuple:
        """The abstract state of the current concrete machine."""
        mem_fresh = self.bus.memory.peek(TRACKED_PBLOCK) == self._expected
        return (
            self._abstract_cpu(0),
            self._abstract_cpu(1),
            mem_fresh,
        )

    def _abstract_cpu(self, cpu: int) -> tuple:
        hier = self.hierarchies[cpu]
        if self.scenario.kind.virtual_l1:
            keys = (("a", VADDR_A), ("s", VADDR_SYN))
        else:
            keys = (("p", TRACKED_PBLOCK << 4),)
        copies = []
        for label, key in keys:
            block = hier.l1_caches[0].store.find(key, include_swapped=True)
            if block is not None:
                status = "S" if block.swapped_valid else "V"
                if block.dirty:
                    status += "D"
                copies.append(
                    (label, status, block.version == self._expected)
                )
        found = hier.rcache.lookup_sub_block(TRACKED_PBLOCK)
        sub_state: tuple | None = None
        if found is not None:
            sub = found[1]
            sub_state = (
                sub.inclusion,
                sub.buffer,
                sub.state.value,
                sub.vdirty,
                sub.rdirty,
                sub.version == self._expected,
            )
        entry = self.hierarchies[cpu].write_buffer.find(TRACKED_PBLOCK)
        wb_state: tuple | None = None
        if entry is not None:
            wb_state = (entry.swapped, entry.version == self._expected)
        return (tuple(copies), sub_state, wb_state)

    @staticmethod
    def describe_state(state: tuple) -> dict[str, Any]:
        """Render an abstract state tuple as a JSON-friendly dict."""
        def cpu_view(view: tuple) -> dict[str, Any]:
            copies, sub, wb = view
            out: dict[str, Any] = {
                "l1": [
                    {"name": name, "status": status, "fresh": fresh}
                    for name, status, fresh in copies
                ]
            }
            if sub is not None:
                out["sub"] = {
                    "inclusion": sub[0],
                    "buffer": sub[1],
                    "share": sub[2],
                    "vdirty": sub[3],
                    "rdirty": sub[4],
                    "fresh": sub[5],
                }
            if wb is not None:
                out["write_buffer"] = {"swapped": wb[0], "fresh": wb[1]}
            return out

        return {
            "cpu0": cpu_view(state[0]),
            "cpu1": cpu_view(state[1]),
            "memory_fresh": state[2],
        }

    # -- invariants ---------------------------------------------------------

    def check_invariants(self) -> list[str]:
        """Every DESIGN.md §5 invariant, on the current concrete state."""
        out: list[str] = []
        for hier in self.hierarchies:
            for violation in scan_hierarchy(hier):
                out.append(f"cpu{hier.cpu}: {violation.message}")
        try:
            check_coherence(self.hierarchies)
        except ProtocolError as exc:
            out.append(f"coherence: {exc}")
        out.extend(self._check_tracked())
        return out

    def _tracked_evidence(self, cpu: int) -> dict[str, Any]:
        """Everything one hierarchy holds of the tracked block."""
        hier = self.hierarchies[cpu]
        found = hier.rcache.lookup_sub_block(TRACKED_PBLOCK)
        sub = found[1] if found is not None else None
        blocks = []
        if self.scenario.kind.virtual_l1:
            for key in (VADDR_A, VADDR_SYN):
                block = hier.l1_caches[0].store.find(key, include_swapped=True)
                if block is not None:
                    blocks.append(block)
        else:
            block = hier.l1_caches[0].store.find(
                TRACKED_PBLOCK << 4, include_swapped=True
            )
            if block is not None:
                blocks.append(block)
        entry = hier.write_buffer.find(TRACKED_PBLOCK)
        write_through = (
            self.scenario.write_policy is WritePolicy.WRITE_THROUGH
        )
        # Data newer than memory may live in a dirty level-1 copy, in
        # either subentry dirty bit, or in flight in the write buffer
        # (buffer bit) — write-through or not.
        dirty = (
            any(b.dirty for b in blocks)
            or (sub is not None and sub.dirty_anywhere)
            or entry is not None
        )
        # Exclusive ownership is narrower: pending *write-through* data
        # is not ownership (an update broadcast can merge it while the
        # block stays SHARED), so it does not demand PRIVATE state.
        exclusive_dirty = (
            any(b.dirty for b in blocks)
            or (sub is not None and (sub.vdirty or sub.rdirty))
            or (sub is not None and sub.buffer and not write_through)
            or (entry is not None and not write_through)
        )
        has_copy = bool(blocks) or sub is not None or entry is not None
        versions = [b.version for b in blocks]
        if sub is not None:
            versions.append(sub.version)
        if entry is not None:
            versions.append(entry.version)
        return {
            "sub": sub,
            "blocks": blocks,
            "entry": entry,
            "dirty": dirty,
            "exclusive_dirty": exclusive_dirty,
            "has_copy": has_copy,
            "versions": versions,
        }

    def _check_tracked(self) -> list[str]:
        out: list[str] = []
        evidence = [self._tracked_evidence(cpu) for cpu in range(2)]
        for cpu, mine in enumerate(evidence):
            peer = evidence[1 - cpu]
            sub = mine["sub"]
            if sub is None:
                continue
            # Exclusivity: PRIVATE means no other cache holds any copy.
            if sub.state is ShareState.PRIVATE and peer["has_copy"]:
                out.append(
                    f"exclusivity: cpu{cpu} holds the tracked block "
                    "PRIVATE while the peer still has a copy"
                )
            # Dirty data must be held exclusively (the update protocol
            # keeps shared copies clean by broadcasting).
            if sub.state is ShareState.SHARED and mine["exclusive_dirty"]:
                out.append(
                    f"dirty-shared: cpu{cpu} holds the tracked block "
                    "dirty while marked SHARED"
                )
        # No lost update: the latest written version must survive in
        # memory or in at least one cached/buffered copy.
        held = {self.bus.memory.peek(TRACKED_PBLOCK)}
        for mine in evidence:
            held.update(mine["versions"])
        if self._expected not in held:
            out.append(
                f"lost update: version {self._expected} is held nowhere "
                f"(held: {sorted(held)})"
            )
        # Memory freshness: with no dirty copy anywhere, memory must
        # already hold the latest version.
        if not any(mine["dirty"] for mine in evidence):
            mem = self.bus.memory.peek(TRACKED_PBLOCK)
            if mem != self._expected:
                out.append(
                    f"stale memory: no cache holds the tracked block "
                    f"dirty but memory has version {mem}, "
                    f"expected {self._expected}"
                )
        return out

    # -- snapshot / restore -------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Capture the complete mutable machine state."""
        return {
            "hierarchies": [export_hierarchy(h) for h in self.hierarchies],
            "memory": self.bus.memory.export_state(),
            "bus_stats": self.bus.stats.export_state(),
            "next_version": self.version_counter.next_value,
            "expected": self._expected,
        }

    def restore(self, state: dict[str, Any]) -> None:
        """Return the machine to a :meth:`snapshot` state."""
        for hier, hier_state in zip(self.hierarchies, state["hierarchies"]):
            restore_hierarchy(hier, hier_state)
        self.bus.memory.restore_state(state["memory"])
        self.bus.stats.restore_state(state["bus_stats"])
        self.version_counter.next_value = state["next_version"]
        self._expected = state["expected"]


# -- the static subentry x bus-event cross product ----------------------------

#: Coherence operations a subentry can be confronted with by a peer.
_SNOOP_OPS = (
    BusOp.READ_MISS,
    BusOp.READ_MODIFIED_WRITE,
    BusOp.INVALIDATE,
    BusOp.WRITE_UPDATE,
)


def _sub_combo_name(
    inclusion: bool, buffer: bool, share: ShareState, vdirty: bool, rdirty: bool
) -> str:
    flags = "".join(
        ch
        for ch, on in (
            ("I", inclusion),
            ("B", buffer),
            ("v", vdirty),
            ("r", rdirty),
        )
        if on
    )
    return f"{share.value}:{flags or '-'}"


def all_sub_combos() -> list[tuple[bool, bool, ShareState, bool, bool]]:
    """Every (inclusion, buffer, share, vdirty, rdirty) combination."""
    out = []
    for inclusion in (False, True):
        for buffer in (False, True):
            for share in (ShareState.PRIVATE, ShareState.SHARED):
                for vdirty in (False, True):
                    for rdirty in (False, True):
                        out.append((inclusion, buffer, share, vdirty, rdirty))
    return out


def snoop_table(
    scenario: Scenario, engine: str = "object"
) -> list[dict[str, Any]]:
    """The full subentry-state x bus-event reaction table.

    For every one of the 32 subentry bit combinations, a fresh machine
    is forced into that configuration (with structurally consistent
    surroundings: a linked level-1 child when the inclusion bit is
    set, a write-buffer entry when the buffer bit is set) and each
    coherence transaction is delivered to the snoop handler.  The
    outcome — the new subentry state, or the defensive exception the
    implementation raises — is recorded verbatim.

    Rows where the implementation raises are exactly the "missing
    transitions" of the protocol table; :func:`repro.analysis.explore`
    cross-references them against the dynamically reachable combos to
    prove each one unreachable (or surface it as a genuine gap).
    """
    rows: list[dict[str, Any]] = []
    for inclusion, buffer, share, vdirty, rdirty in all_sub_combos():
        for op in _SNOOP_OPS:
            model = ProtocolModel(scenario, engine=engine)
            hier = model.hierarchies[0]
            rblock = hier.rcache.store.ways(0)[0]
            rblock.tag = 0
            sub = rblock.subentries[0]
            sub.valid = True
            sub.inclusion = inclusion
            sub.buffer = buffer
            sub.state = share
            sub.vdirty = vdirty
            sub.rdirty = rdirty
            sub.version = 3
            rblock.refresh_valid()
            if inclusion:
                # The child's key is virtual for V-R, physical for R-R
                # (the unshielded probe searches by physical address).
                key = VADDR_A if scenario.kind.virtual_l1 else 0
                child = hier.l1_caches[0].store.ways(0)[0]
                child.fill(hier.l1_caches[0].config.tag(key), (0, 0, 0), 4)
                child.dirty = vdirty
                sub.v_pointer = (0, 0, 0)
            if buffer:
                hier.write_buffer.push(
                    WriteBufferEntry(TRACKED_PBLOCK, 5, swapped=False)
                )
            version = 6 if op is BusOp.WRITE_UPDATE else None
            txn = BusTransaction(op, 1, TRACKED_PBLOCK, version)
            row: dict[str, Any] = {
                "sub": _sub_combo_name(inclusion, buffer, share, vdirty, rdirty),
                "op": op.value,
            }
            try:
                reply = hier.snoop(txn)
            except (ProtocolError, InclusionError) as exc:
                row["outcome"] = "raise"
                row["error"] = f"{type(exc).__name__}: {exc}"
            else:
                row["outcome"] = "ok"
                row["has_copy"] = reply.has_copy
                row["supplied"] = reply.supplied_version is not None
                after = (
                    _sub_combo_name(
                        sub.inclusion,
                        sub.buffer,
                        sub.state,
                        sub.vdirty,
                        sub.rdirty,
                    )
                    if sub.valid
                    else "invalid"
                )
                row["after"] = after
            rows.append(row)
    return rows
