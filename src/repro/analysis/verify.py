"""``repro-verify``: the protocol model checker's command line.

Examples::

    repro-verify                       # headline scenarios, quick
    repro-verify --exhaustive          # the full scenario matrix
    repro-verify --scenario vr-update-wt --json-out space.json

Exit status: 0 when every explored scenario verifies clean, 1 when
any reachable state violates an invariant or an event raises (a
minimal counterexample trace is printed), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from collections.abc import Sequence

from .explore import ExplorationLimitError, ScenarioReport, explore
from .model import SCENARIOS, scenario_named

#: Scenarios a plain ``repro-verify`` runs: the paper's organisation
#: under its default protocol, plus the unshielded organisation whose
#: snoop path is entirely different.
HEADLINE = ("vr-invalidate-wb", "rr-noincl-invalidate-wb")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="Exhaustively verify the coherence protocol's "
        "reachable state space against the DESIGN.md §5 invariants.",
    )
    parser.add_argument(
        "--exhaustive",
        action="store_true",
        help="explore the full scenario matrix (all organisations, "
        "protocols and write policies)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="explore one named scenario (repeatable; overrides the "
        "default selection)",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print the scenario matrix and exit",
    )
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        help="write the reachable-state-space report as JSON",
    )
    parser.add_argument(
        "--max-states",
        type=int,
        default=20000,
        help="abort if the abstract state space exceeds this bound "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--no-snoop-table",
        action="store_true",
        help="skip the static subentry x bus-event cross-product table",
    )
    parser.add_argument(
        "--engine",
        choices=["object", "soa"],
        default="object",
        help="concrete machine under exploration: the reference object "
        "hierarchy or the struct-of-arrays core (default: object)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="summary lines only"
    )
    return parser


def _print_report(report: ScenarioReport, quiet: bool) -> None:
    status = "ok" if report.ok else "FAIL"
    print(
        f"{report.scenario.name:26s} {status:4s} "
        f"states={report.n_states:<5d} transitions={report.n_transitions:<6d} "
        f"unreachable-sub-combos={len(report.unreachable_sub_combos())}"
    )
    if not quiet and report.snoop_rows:
        verdicts = Counter(
            row["verdict"] for row in report.missing_transitions()
        )
        if verdicts:
            rendered = ", ".join(
                f"{verdict}={count}" for verdict, count in sorted(verdicts.items())
            )
            print(f"{'':26s} defensive raises: {rendered}")
    for counterexample in report.counterexamples[:1]:
        print(f"  counterexample ({len(counterexample.events)} events):")
        print(f"    trace: {' '.join(counterexample.events)}")
        for message in counterexample.messages:
            print(f"    {message}")


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_scenarios:
        for scenario in SCENARIOS:
            print(scenario.name)
        return 0
    if args.scenario:
        try:
            scenarios = [scenario_named(name) for name in args.scenario]
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    elif args.exhaustive:
        scenarios = list(SCENARIOS)
    else:
        scenarios = [scenario_named(name) for name in HEADLINE]

    reports = []
    for scenario in scenarios:
        try:
            report = explore(
                scenario,
                max_states=args.max_states,
                with_snoop_table=not args.no_snoop_table,
                engine=args.engine,
            )
        except ExplorationLimitError as exc:
            print(f"{scenario.name}: {exc}", file=sys.stderr)
            return 2
        reports.append(report)
        _print_report(report, args.quiet)

    gaps = [
        row
        for report in reports
        for row in report.missing_transitions()
        if row["verdict"] == "gap"
    ]
    ok = all(report.ok for report in reports) and not gaps
    if args.json_out:
        artifact = {
            "ok": ok,
            "scenarios": [report.to_dict() for report in reports],
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
        print(f"state-space report written to {args.json_out}")
    total_states = sum(report.n_states for report in reports)
    total_cex = sum(len(report.counterexamples) for report in reports)
    print(
        f"{len(reports)} scenario(s), {total_states} reachable states, "
        f"{total_cex} counterexample(s), {len(gaps)} protocol gap(s)"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
