"""Static verification tooling: model checker, lint pack, sanitizer.

Three tools live here, all with console entry points:

* ``repro-verify`` (:mod:`repro.analysis.verify`) — an explicit-state
  model checker that drives a tiny two-processor machine through every
  protocol-relevant event, enumerates the reachable quotient of
  (V-cache state x R-subentry state x peer state x write-buffer
  state) for one tracked physical block, and checks the DESIGN.md §5
  invariants on every reachable state.
* ``repro-lint`` (:mod:`repro.analysis.lint`) — a stdlib-``ast`` lint
  pack with repo-specific rules (metric-name validity, tracer slot
  discipline, ``__slots__`` on hot classes, no allocation in hot
  loops).
* ``repro-sanitize`` (:mod:`repro.analysis.sanitize`) — a whole-repo
  dataflow analyzer: determinism taint (nondeterminism sources
  reaching cache keys, journal records, simulation state) and asyncio
  hazards in the serve layer.  Its runtime companions —
  :class:`~repro.analysis.runtime.DeterminismGuard` and
  :class:`~repro.analysis.runtime.LoopStallWatchdog` — live in
  :mod:`repro.analysis.runtime` and back the ``--sanitize`` flags on
  ``repro-experiment`` and ``repro-serve``.
"""

from .explore import ExplorationLimitError, ScenarioReport, Transition, explore
from .lint import Finding, lint_paths, lint_source
from .model import SCENARIOS, ProtocolModel, Scenario, snoop_table
from .runtime import DeterminismGuard, DeterminismViolation, LoopStallWatchdog
from .sanitize import analyze_paths, analyze_sources
from .sanitize import Finding as SanitizeFinding

__all__ = [
    "DeterminismGuard",
    "DeterminismViolation",
    "ExplorationLimitError",
    "Finding",
    "LoopStallWatchdog",
    "ProtocolModel",
    "SCENARIOS",
    "SanitizeFinding",
    "Scenario",
    "ScenarioReport",
    "Transition",
    "analyze_paths",
    "analyze_sources",
    "explore",
    "lint_paths",
    "lint_source",
    "snoop_table",
]
