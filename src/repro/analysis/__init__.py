"""Static verification tooling: protocol model checker and lint pack.

Two tools live here, both with console entry points:

* ``repro-verify`` (:mod:`repro.analysis.verify`) — an explicit-state
  model checker that drives a tiny two-processor machine through every
  protocol-relevant event, enumerates the reachable quotient of
  (V-cache state x R-subentry state x peer state x write-buffer
  state) for one tracked physical block, and checks the DESIGN.md §5
  invariants on every reachable state.
* ``repro-lint`` (:mod:`repro.analysis.lint`) — a stdlib-``ast`` lint
  pack with repo-specific rules (metric-name validity, tracer slot
  discipline, ``__slots__`` on hot classes, no allocation in hot
  loops).
"""

from .explore import ExplorationLimitError, ScenarioReport, Transition, explore
from .lint import Finding, lint_paths, lint_source
from .model import SCENARIOS, ProtocolModel, Scenario, snoop_table

__all__ = [
    "ExplorationLimitError",
    "Finding",
    "ProtocolModel",
    "SCENARIOS",
    "Scenario",
    "ScenarioReport",
    "Transition",
    "explore",
    "lint_paths",
    "lint_source",
    "snoop_table",
]
