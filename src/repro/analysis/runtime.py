"""Runtime sanitizer hooks: what static analysis cannot prove.

Two companions to ``repro-sanitize`` (:mod:`repro.analysis.sanitize`):

* :class:`LoopStallWatchdog` — a daemon thread that heartbeats the
  asyncio event loop.  If the loop stops responding for longer than
  the threshold (a blocking call slipped past RPS201, a pathological
  handler), it dumps the loop thread's current stack to the log and
  bumps the ``serve.loop_stall`` counter, so stalls are attributable
  instead of showing up only as mysterious tail latency.
  ``repro-serve --sanitize`` installs one for the server's lifetime.
* :class:`DeterminismGuard` — a context manager that patches the
  nondeterminism sources (wall clock, the process-global ``random``
  functions, ``uuid``, ``os.urandom``) to **raise**
  :class:`DeterminismViolation` when called from repo code outside
  the allowlisted timing/provenance paths.  Static taint analysis
  follows the call graph it can see; the guard catches what it
  cannot (dynamic dispatch, monkeypatching, new code).  Tier-1 runs
  wrap simulation under it, turning "a clock snuck into a keyed
  path" from a silent cache-poisoning bug into a loud test failure.

Both are dependency-free and safe to import anywhere; nothing here
touches the hot replay path.
"""

from __future__ import annotations

import functools
import os
import random
import sys
import threading
import time
import traceback
import uuid
from time import monotonic
from typing import Any, Callable

from ..obs import get_logger

logger = get_logger("analysis.runtime")


class DeterminismViolation(RuntimeError):
    """A nondeterminism source was read from a guarded code path."""


#: Module paths (suffix fragments) allowed to read guarded sources:
#: provenance stamps and wall-clock timing metadata.  Mirrors the
#: static analyzer's CLOCK_ALLOWED table.
DEFAULT_ALLOWED: tuple[str, ...] = (
    "repro/obs/manifest.py",
    "repro/experiments/cli.py",
    "repro/runner/pool.py",
    "repro/serve/admission.py",
    "repro/serve/breaker.py",
    "repro/analysis/runtime.py",
)

#: (module object, attribute) pairs the guard patches.  Deliberately
#: excludes ``time.monotonic``/``perf_counter``: those are the
#: *allowed* timing clocks (asyncio itself reads ``time.monotonic``
#: every loop iteration) and the hot paths bind them at import time
#: anyway.
_PATCH_TARGETS: tuple[tuple[Any, str], ...] = (
    (time, "time"),
    (time, "time_ns"),
    (random, "random"),
    (random, "randint"),
    (random, "randrange"),
    (random, "getrandbits"),
    (random, "choice"),
    (random, "shuffle"),
    (random, "sample"),
    (random, "uniform"),
    (uuid, "uuid1"),
    (uuid, "uuid4"),
    (os, "urandom"),
)


class DeterminismGuard:
    """Patch nondeterminism sources to raise (or count) in repo code.

    Args:
        mode: ``"raise"`` (default) raises
            :class:`DeterminismViolation` at the offending call;
            ``"count"`` records it and calls through — useful for
            surveying a long run without aborting it.
        allowed: module-path fragments permitted to call the sources
            (default :data:`DEFAULT_ALLOWED`).  Callers outside the
            ``repro`` package (stdlib ``logging``, ``asyncio``,
            ``multiprocessing`` handshakes, test files) always pass
            through: the guard polices this repo, not the world.
        registry: optional :class:`~repro.obs.MetricsRegistry`;
            violations bump ``sanitize.determinism_violation``.

    Usage::

        with DeterminismGuard():
            result = simulate("paper-mix", scale=0.01)
    """

    def __init__(
        self,
        mode: str = "raise",
        allowed: tuple[str, ...] = DEFAULT_ALLOWED,
        registry: Any = None,
    ) -> None:
        if mode not in ("raise", "count"):
            raise ValueError(f'mode must be "raise" or "count", got {mode!r}')
        self.mode = mode
        self.allowed = allowed
        self.registry = registry
        self.violations: list[tuple[str, str, int]] = []
        self._originals: list[tuple[Any, str, Any]] = []

    # -- caller classification -----------------------------------------

    def _guarded_caller(self) -> tuple[str, int] | None:
        """The first non-runtime frame, when it is unallowlisted repo
        code; None when the call came from outside the repo or from
        an allowlisted module."""
        frame = sys._getframe(2)
        filename = frame.f_code.co_filename.replace("\\", "/")
        if "/repro/" not in filename and not filename.endswith("repro"):
            return None
        if any(filename.endswith(suffix) for suffix in self.allowed):
            return None
        return filename, frame.f_lineno

    def _wrap(self, source: str, original: Callable[..., Any]) -> Callable[..., Any]:
        @functools.wraps(original)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            caller = self._guarded_caller()
            if caller is None:
                return original(*args, **kwargs)
            filename, lineno = caller
            self.violations.append((source, filename, lineno))
            if self.registry is not None:
                self.registry.inc("sanitize.determinism_violation")
            if self.mode == "raise":
                raise DeterminismViolation(
                    f"{source} called from {filename}:{lineno} inside a "
                    "determinism-guarded run — seed it, route it through "
                    "an allowlisted timing path, or fix the leak"
                )
            return original(*args, **kwargs)

        return wrapper

    # -- context manager -----------------------------------------------

    def __enter__(self) -> "DeterminismGuard":
        if self._originals:
            raise RuntimeError("DeterminismGuard is not reentrant")
        for module, attr in _PATCH_TARGETS:
            original = getattr(module, attr)
            self._originals.append((module, attr, original))
            source = f"{module.__name__}.{attr}"
            setattr(module, attr, self._wrap(source, original))
        return self

    def __exit__(self, *exc_info: Any) -> None:
        for module, attr, original in self._originals:
            setattr(module, attr, original)
        self._originals.clear()


class LoopStallWatchdog:
    """Detect and attribute asyncio event-loop stalls.

    A daemon thread posts a heartbeat onto the loop every *poll_s*
    seconds (``call_soon_threadsafe``) and measures how stale the
    last executed heartbeat is.  A gap beyond *threshold_s* means the
    loop thread is stuck in a callback; the watchdog logs that
    thread's current stack once per stall episode and increments
    *metric* on *registry* (``serve.loop_stall`` by default), then
    re-arms when the loop recovers.

    The watchdog never touches loop internals and adds one trivial
    callback per poll interval; it is safe to leave on in production.
    """

    def __init__(
        self,
        loop: Any,
        threshold_s: float = 0.5,
        poll_s: float = 0.05,
        registry: Any = None,
        metric: str = "serve.loop_stall",
    ) -> None:
        if threshold_s <= 0 or poll_s <= 0:
            raise ValueError("threshold_s and poll_s must be > 0")
        self._loop = loop
        self._threshold = threshold_s
        self._poll = poll_s
        self._registry = registry
        self._metric = metric
        self._last_beat = monotonic()
        self._loop_thread: int | None = None
        self._stalled = False
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._watch, name="repro-loop-watchdog", daemon=True
        )
        #: Stall episodes observed (monotonically growing).
        self.stalls = 0

    def _beat(self) -> None:
        self._loop_thread = threading.get_ident()
        self._last_beat = monotonic()

    def _dump_loop_stack(self) -> str:
        frame = sys._current_frames().get(self._loop_thread or -1)
        if frame is None:
            return "<loop thread stack unavailable>"
        return "".join(traceback.format_stack(frame))

    def _watch(self) -> None:
        while not self._stop.wait(self._poll):
            try:
                self._loop.call_soon_threadsafe(self._beat)
            except RuntimeError:
                return  # loop closed under us; nothing left to watch
            gap = monotonic() - self._last_beat
            if gap > self._threshold:
                if not self._stalled:
                    self._stalled = True
                    self.stalls += 1
                    if self._registry is not None:
                        self._registry.inc(self._metric)
                    logger.warning(
                        "event loop stalled for %.3fs; loop thread stack:\n%s",
                        gap,
                        self._dump_loop_stack(),
                    )
            else:
                self._stalled = False

    def start(self) -> "LoopStallWatchdog":
        self._last_beat = monotonic()
        try:
            self._loop.call_soon_threadsafe(self._beat)
        except RuntimeError:
            pass
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=2.0)
