"""``repro-sanitize``: whole-repo determinism-taint and async-hazard
analysis.

The repo's headline guarantee — bit-identical results across
``--jobs`` settings, engines, checkpoint resume and cache replay —
is only as strong as the code that computes keys, evolves simulation
state and writes journals.  ``repro-lint`` (:mod:`repro.analysis.lint`)
checks single-node AST patterns; this module checks *dataflow*: it
builds a module-level call graph over ``src/repro`` and tracks how
nondeterminism sources and blocking calls flow through it.

Two rule families:

**Determinism taint** (RPS1xx)
    * **RPS101** — directory listings (``iterdir``/``glob``/``rglob``/
      ``scandir``/``os.listdir``/``os.walk``) must be wrapped in
      ``sorted()`` or consumed by an order-insensitive reducer
      (``sum``/``len``/``set``/``min``/``max``/``any``/``all``).
      Filesystem order is arbitrary; iterating it unsorted makes
      replay output, sweep order and digests depend on the inode
      layout of the machine that ran the job.
    * **RPS102** — wall-clock reads (``time.time``/``monotonic``/
      ``perf_counter``/``datetime.now`` …) must not *reach a
      determinism-critical sink* through the call graph.  Sinks are
      the functions that define result identity and payloads:
      simulation state evolution, result-cache key computation,
      journal records and metrics snapshots
      (:data:`DETERMINISM_SINKS`).  The manifest/timing paths that
      legitimately read clocks are allowlisted
      (:data:`CLOCK_ALLOWED`) and act as propagation barriers.
    * **RPS103** — unseeded randomness (module-level ``random.*``
      functions, ``uuid.uuid1``/``uuid4``, ``os.urandom``,
      ``secrets.*``) is forbidden anywhere in the package; every RNG
      in this repo must be a seeded ``random.Random(seed)``.
    * **RPS104** — iterating a set (display, comprehension,
      ``set()``/``frozenset()`` call, or a local assigned from one)
      leaks ``PYTHONHASHSEED``-dependent order; wrap the iterable in
      ``sorted()``.
    * **RPS105** — the builtin ``hash()`` is salted per process for
      ``str``/``bytes``; anything content-keyed must use
      :mod:`hashlib` instead.

**Async hazards** (RPS2xx)
    * **RPS201** — blocking calls (``open``, ``time.sleep``,
      ``subprocess.*``, ``Path.read_text``/``write_text`` …, or any
      repo function whose call-graph closure blocks — the disk
      cache, the supervised pool) inside ``async def`` must be
      wrapped in ``asyncio.to_thread``/``run_in_executor``; a direct
      call stalls every task on the loop.
    * **RPS202** — ``asyncio.create_task``/``ensure_future`` results
      must be kept *and* observed (``add_done_callback`` or a later
      ``await``); a dropped task dies silently and may be collected
      mid-flight.
    * **RPS203** — ``except TimeoutError`` in a coroutine without the
      ``asyncio.TimeoutError`` alias misses ``wait_for`` expiry on
      Python 3.10, where the two are still distinct types.
    * **RPS204** — ``await`` inside a synchronous ``with`` on a
      lock-like object parks the coroutine while the lock stays
      held, blocking the loop's other tasks (and inviting deadlock).

Findings can be silenced per line with ``# rps: ignore[RPS101]`` (or
a bare ``# rps: ignore``), or accepted wholesale through a committed
baseline file (``--baseline`` / ``--write-baseline``): entries are
fingerprinted by rule, module and normalised source text so they
survive line drift.  ``--strict`` additionally fails on stale
baseline entries, keeping the baseline honest.

The runtime companions (:mod:`repro.analysis.runtime`) cover what
static analysis cannot: an event-loop stall watchdog for the serving
layer and a :class:`~repro.analysis.runtime.DeterminismGuard` that
patches the nondeterminism sources to raise during tier-1 runs.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

#: Rule id -> one-line summary (``repro-sanitize --list-rules``).
RULES: dict[str, str] = {
    "RPS000": "file must parse",
    "RPS101": "directory listings must be sorted or consumed "
    "order-insensitively",
    "RPS102": "wall-clock reads must not reach determinism-critical sinks",
    "RPS103": "unseeded randomness is forbidden in package code",
    "RPS104": "set iteration order must not escape; wrap in sorted()",
    "RPS105": "builtin hash() is PYTHONHASHSEED-salted; use hashlib",
    "RPS201": "blocking call inside async def; wrap in asyncio.to_thread",
    "RPS202": "create_task result dropped or never observed",
    "RPS203": "except TimeoutError needs the asyncio.TimeoutError alias",
    "RPS204": "await while holding a synchronous lock",
}

# ---------------------------------------------------------------- catalogues

#: Wall-clock sources (RPS102 taint roots).
WALL_CLOCK_SOURCES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: Unseeded randomness sources (RPS103): the module-level ``random``
#: functions draw from the hidden process-global ``Random`` instance.
RANDOM_SOURCES = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.randbytes",
        "random.getrandbits",
        "random.choice",
        "random.choices",
        "random.shuffle",
        "random.sample",
        "random.uniform",
        "random.gauss",
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
        "secrets.choice",
    }
)

#: Directory-listing calls whose order is filesystem-dependent.
FS_ORDER_EXT = frozenset({"os.listdir", "os.scandir", "os.walk"})
FS_ORDER_ATTRS = frozenset({"iterdir", "glob", "rglob", "scandir"})

#: Wrapping any of these around a listing makes its order irrelevant.
ORDER_ACCEPTORS = frozenset(
    {"sorted", "set", "frozenset", "len", "sum", "min", "max", "any", "all"}
)

#: Blocking calls that must not run on the event loop (RPS201).
BLOCKING_EXT = frozenset(
    {
        "open",
        "input",
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.system",
        "shutil.rmtree",
        "shutil.copyfile",
        "socket.create_connection",
        "urllib.request.urlopen",
    }
)

#: Blocking method names on arbitrary receivers (``Path`` I/O mostly).
BLOCKING_ATTRS = frozenset(
    {
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
    }
)

#: Determinism-critical sinks (RPS102): module key -> qualnames whose
#: call-graph closure must be wall-clock-free.  These functions define
#: what a result *is*: the simulation state machine, the cache keys
#: naming results on disk, the journal records ``--resume`` trusts,
#: and the metrics snapshots asserted byte-identical across runners.
DETERMINISM_SINKS: dict[str, frozenset[str]] = {
    "repro/experiments/base.py": frozenset({"simulation_key", "disk_key"}),
    "repro/runner/disk_cache.py": frozenset({"key_digest", "schema_hash"}),
    "repro/runner/planner.py": frozenset({"SimJob.key"}),
    "repro/runner/supervisor.py": frozenset({"Supervisor._journal_entry"}),
    "repro/system/multiprocessor.py": frozenset(
        {"Multiprocessor.run", "Multiprocessor._run_fast"}
    ),
    "repro/hierarchy/twolevel.py": frozenset({"TwoLevelHierarchy.access"}),
    "repro/obs/metrics.py": frozenset({"MetricsRegistry.snapshot"}),
}

#: Functions allowed to read clocks (RPS102 barriers): provenance and
#: timing metadata *about* a run, never part of a result's identity.
#: ``"*"`` allows a whole module.
CLOCK_ALLOWED: dict[str, frozenset[str] | str] = {
    "repro/obs/manifest.py": "*",  # created_at provenance stamps
    "repro/experiments/cli.py": "*",  # per-experiment wall timings
    "repro/runner/pool.py": "*",  # RunReport.elapsed_s
    "repro/serve/admission.py": "*",  # token-bucket clock
    "repro/serve/breaker.py": "*",  # sliding-window clock
    "repro/analysis/runtime.py": "*",  # the watchdog measures stalls
}

#: ``# rps: ignore`` / ``# rps: ignore[RPS101,RPS203]`` pragmas.
_PRAGMA_RE = re.compile(r"#\s*rps:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One sanitizer violation."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    chain: tuple[str, ...] = ()

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.chain:
            text += f" [via {' -> '.join(self.chain)}]"
        return text

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "chain": list(self.chain),
        }


# ------------------------------------------------------------- module model


def _module_key(path: str) -> str:
    """Path from the package root (``src/repro/mmu/tlb.py`` ->
    ``repro/mmu/tlb.py``); paths outside keep their as-given form."""
    parts = Path(path).parts
    if "repro" in parts:
        return "/".join(parts[parts.index("repro") :])
    return "/".join(parts)


def _dotted_name(key: str) -> str:
    """Module key -> dotted module name (``repro/obs/__init__.py`` ->
    ``repro.obs``)."""
    parts = list(Path(key).parts)
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1].removesuffix(".py")
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method in the call graph."""

    module: "ModuleInfo"
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_async: bool
    #: Resolved call sites: ``("int", "repro/x.py::f", line, col)``,
    #: ``("ext", "time.time", line, col)`` or ``("attr", name, ...)``.
    calls: list[tuple[str, str, int, int]] = field(default_factory=list)

    @property
    def ref(self) -> str:
        return f"{self.module.key}::{self.qualname}"


@dataclass
class ModuleInfo:
    """One parsed module plus its symbol tables."""

    key: str
    path: str
    dotted: str
    tree: ast.Module
    lines: list[str]
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, set[str]] = field(default_factory=dict)


def _collect_imports(module: ModuleInfo) -> None:
    package = module.dotted
    if not module.key.endswith("__init__.py"):
        package = package.rpartition(".")[0]
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else alias.name.partition(".")[0]
                module.imports[name] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                parts = package.split(".") if package else []
                if node.level > 1:
                    parts = parts[: len(parts) - (node.level - 1)]
                base = ".".join(parts)
            else:
                base = ""
            source = node.module or ""
            prefix = ".".join(p for p in (base, source) if p)
            for alias in node.names:
                if alias.name == "*":
                    continue
                name = alias.asname or alias.name
                module.imports[name] = (
                    f"{prefix}.{alias.name}" if prefix else alias.name
                )


def _collect_functions(module: ModuleInfo) -> None:
    """Register every def with its qualified name (one class level)."""

    def visit(node: ast.AST, class_name: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{class_name}.{child.name}" if class_name else child.name
                module.functions[qual] = FunctionInfo(
                    module,
                    qual,
                    child,
                    isinstance(child, ast.AsyncFunctionDef),
                )
                if class_name:
                    module.classes.setdefault(class_name, set()).add(child.name)
            elif isinstance(child, ast.ClassDef) and class_name is None:
                module.classes.setdefault(child.name, set())
                visit(child, child.name)


    visit(module.tree, None)


def _attr_chain(node: ast.expr) -> list[str] | None:
    """``datetime.datetime.now`` -> ["datetime", "datetime", "now"];
    None when the chain does not bottom out at a plain name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


class Repo:
    """All analysed modules, with cross-module symbol resolution."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self._by_dotted: dict[str, ModuleInfo] = {}

    def add(self, module: ModuleInfo) -> None:
        self.modules[module.key] = module
        self._by_dotted[module.dotted] = module

    def lookup(self, dotted: str, depth: int = 0) -> FunctionInfo | None:
        """Resolve a dotted name to a repo function, following one
        re-export hop per recursion step (``repro.obs.RunManifest``
        via ``repro/obs/__init__.py``'s ``from .manifest import ...``)."""
        if depth > 4:
            return None
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = self._by_dotted.get(".".join(parts[:cut]))
            if module is None:
                continue
            rest = ".".join(parts[cut:])
            found = module.functions.get(rest)
            if found is not None:
                return found
            head = parts[cut]
            if head in module.classes:
                init = module.functions.get(f"{head}.__init__")
                if len(parts) - cut == 1:
                    return init
                method = module.functions.get(rest)
                return method
            if head in module.imports:
                tail = ".".join(parts[cut + 1 :])
                target = module.imports[head]
                return self.lookup(
                    f"{target}.{tail}" if tail else target, depth + 1
                )
            return None
        return None

    def resolve_call(
        self, module: ModuleInfo, class_ctx: str | None, func: ast.expr
    ) -> tuple[str, str] | None:
        """Classify one call target as ``("int", ref)``, ``("ext",
        dotted)`` or ``("attr", name)``."""
        if isinstance(func, ast.Name):
            name = func.id
            if name in module.functions:
                return ("int", f"{module.key}::{name}")
            if name in module.classes:
                init = module.functions.get(f"{name}.__init__")
                if init is not None:
                    return ("int", f"{module.key}::{name}.__init__")
                return None
            if name in module.imports:
                dotted = module.imports[name]
                found = self.lookup(dotted)
                if found is not None:
                    return ("int", found.ref)
                return ("ext", dotted)
            return ("ext", name)  # builtins: open, hash, sorted, ...
        chain = _attr_chain(func)
        if chain is None:
            # A call on a computed expression; only the method name is
            # knowable.
            if isinstance(func, ast.Attribute):
                return ("attr", func.attr)
            return None
        root = chain[0]
        if root == "self" and class_ctx is not None and len(chain) == 2:
            if chain[1] in module.classes.get(class_ctx, set()):
                return ("int", f"{module.key}::{class_ctx}.{chain[1]}")
            return ("attr", chain[-1])
        if root in module.imports:
            dotted = ".".join([module.imports[root], *chain[1:]])
            found = self.lookup(dotted)
            if found is not None:
                return ("int", found.ref)
            return ("ext", dotted)
        return ("attr", chain[-1])

    def function(self, ref: str) -> FunctionInfo | None:
        key, _, qual = ref.partition("::")
        module = self.modules.get(key)
        return module.functions.get(qual) if module else None


def _collect_calls(repo: Repo, module: ModuleInfo) -> None:
    """Attribute every call site to its innermost registered function.

    Nested defs (closures) are not in the one-level symbol table;
    their bodies are analysed under the enclosing function, so a
    closure's blocking or clock calls still count against the
    function that owns (and presumably invokes) it.
    """

    def walk(node: ast.AST, class_ctx: str | None, func: FunctionInfo | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                walk(child, child.name if class_ctx is None else class_ctx, func)
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{class_ctx}.{child.name}" if class_ctx else child.name
                inner = module.functions.get(qual)
                if inner is not None and inner.node is child:
                    walk(child, class_ctx, inner)
                else:
                    walk(child, class_ctx, func)
                continue
            if isinstance(child, ast.Call) and func is not None:
                resolved = repo.resolve_call(module, class_ctx, child.func)
                if resolved is not None:
                    kind, ident = resolved
                    func.calls.append(
                        (kind, ident, child.lineno, child.col_offset)
                    )
            walk(child, class_ctx, func)

    walk(module.tree, None, None)


# ----------------------------------------------------------------- taint


def _allowed_clock(ref: str) -> bool:
    key, _, qual = ref.partition("::")
    allowed = CLOCK_ALLOWED.get(key)
    if allowed is None:
        return False
    return allowed == "*" or qual in allowed


def _wall_clock_findings(repo: Repo) -> Iterator[Finding]:
    """RPS102: DFS from each sink over internal edges; report every
    wall-clock call site reachable without crossing an allowlisted
    barrier function."""
    for key, quals in DETERMINISM_SINKS.items():
        module = repo.modules.get(key)
        if module is None:
            continue
        for qual in sorted(quals):
            sink = module.functions.get(qual)
            if sink is None:
                continue
            yield from _taint_dfs(repo, sink, (sink.ref,), set())


def _taint_dfs(
    repo: Repo,
    func: FunctionInfo,
    chain: tuple[str, ...],
    visited: set[str],
) -> Iterator[Finding]:
    if func.ref in visited:
        return
    visited.add(func.ref)
    for kind, ident, line, col in func.calls:
        if kind == "ext" and ident in WALL_CLOCK_SOURCES:
            yield Finding(
                "RPS102",
                func.module.path,
                line,
                col,
                f'wall-clock read "{ident}" reaches determinism-critical '
                f'sink "{chain[0]}"',
                chain=chain[1:],
            )
        elif kind == "int":
            callee = repo.function(ident)
            if callee is None or _allowed_clock(ident):
                continue
            yield from _taint_dfs(repo, callee, chain + (ident,), visited)


# ------------------------------------------------------------ async hazards


def _blocking_closure(repo: Repo, func: FunctionInfo, visited: set[str]) -> bool:
    """Does calling this *sync* function (transitively) block?"""
    if func.ref in visited:
        return False
    visited.add(func.ref)
    for kind, ident, _line, _col in func.calls:
        if kind == "ext" and ident in BLOCKING_EXT:
            return True
        if kind == "attr" and ident in BLOCKING_ATTRS:
            return True
        if kind == "int":
            callee = repo.function(ident)
            if callee is not None and not callee.is_async and _blocking_closure(
                repo, callee, visited
            ):
                return True
    return False


def _async_blocking_findings(repo: Repo) -> Iterator[Finding]:
    """RPS201: blocking call sites inside ``async def`` bodies."""
    for module in repo.modules.values():
        for func in module.functions.values():
            if not func.is_async:
                continue
            for kind, ident, line, col in func.calls:
                if kind == "ext" and ident in BLOCKING_EXT:
                    yield Finding(
                        "RPS201",
                        module.path,
                        line,
                        col,
                        f'blocking call "{ident}" inside async '
                        f'"{func.qualname}" — wrap it in '
                        "asyncio.to_thread(...)",
                    )
                elif kind == "attr" and ident in BLOCKING_ATTRS:
                    yield Finding(
                        "RPS201",
                        module.path,
                        line,
                        col,
                        f'blocking I/O method ".{ident}(...)" inside async '
                        f'"{func.qualname}" — wrap it in '
                        "asyncio.to_thread(...)",
                    )
                elif kind == "int":
                    callee = repo.function(ident)
                    if (
                        callee is not None
                        and not callee.is_async
                        and _blocking_closure(repo, callee, set())
                    ):
                        yield Finding(
                            "RPS201",
                            module.path,
                            line,
                            col,
                            f'"{callee.qualname}" does blocking I/O in its '
                            f'call-graph closure; called from async '
                            f'"{func.qualname}" — wrap it in '
                            "asyncio.to_thread(...)",
                            chain=(callee.ref,),
                        )


def _is_task_spawn(node: ast.Call, module: ModuleInfo) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in ("create_task", "ensure_future")
    if isinstance(func, ast.Name):
        dotted = module.imports.get(func.id, "")
        return dotted.endswith((".create_task", ".ensure_future"))
    return False


def _observes_task(scope: ast.AST, target: ast.expr) -> bool:
    """Is the assigned task ever awaited or given a done-callback
    inside *scope*?  *target* is the ``Name`` or ``self.attr`` the
    task was bound to."""
    if isinstance(target, ast.Name):
        wanted: tuple[str, ...] = (target.id,)
    elif isinstance(target, ast.Attribute) and isinstance(
        target.value, ast.Name
    ):
        wanted = (target.value.id, target.attr)
    else:
        return True  # an exotic binding; give it the benefit of the doubt

    def matches(expr: ast.expr) -> bool:
        if len(wanted) == 1:
            return isinstance(expr, ast.Name) and expr.id == wanted[0]
        return (
            isinstance(expr, ast.Attribute)
            and expr.attr == wanted[1]
            and isinstance(expr.value, ast.Name)
            and expr.value.id == wanted[0]
        )

    for node in ast.walk(scope):
        if isinstance(node, ast.Await) and matches(node.value):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "add_done_callback"
                and matches(func.value)
            ):
                return True
            # await asyncio.gather(..., task, ...) / wait([task])
            for arg in node.args:
                if matches(arg):
                    return True
    return False


def _task_findings(module: ModuleInfo) -> Iterator[Finding]:
    """RPS202: dropped or unobserved ``create_task`` results."""

    class_nodes = {
        node.name: node
        for node in module.tree.body
        if isinstance(node, ast.ClassDef)
    }
    for qual, func in module.functions.items():
        for stmt in ast.walk(func.node):
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                if _is_task_spawn(stmt.value, module):
                    yield Finding(
                        "RPS202",
                        module.path,
                        stmt.lineno,
                        stmt.col_offset,
                        "create_task result dropped — the task can be "
                        "garbage-collected mid-flight and its exception "
                        "is lost; keep a reference and add a done-callback",
                    )
            elif isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.Call
            ):
                if not _is_task_spawn(stmt.value, module):
                    continue
                target = stmt.targets[0]
                scope: ast.AST = func.node
                if isinstance(target, ast.Attribute):
                    class_name = qual.partition(".")[0]
                    scope = class_nodes.get(class_name, func.node)
                if not _observes_task(scope, target):
                    yield Finding(
                        "RPS202",
                        module.path,
                        stmt.lineno,
                        stmt.col_offset,
                        "create_task result is never awaited and has no "
                        "done-callback — failures in the task vanish "
                        "silently",
                    )


def _timeout_findings(module: ModuleInfo) -> Iterator[Finding]:
    """RPS203: ``except TimeoutError`` near ``await`` without the
    ``asyncio.TimeoutError`` 3.10 alias."""
    for func in module.functions.values():
        has_await = any(
            isinstance(node, ast.Await) for node in ast.walk(func.node)
        )
        if not has_await:
            continue
        for node in ast.walk(func.node):
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue
            names: list[str] = []
            has_builtin = False
            has_alias = False
            exprs = (
                node.type.elts
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for expr in exprs:
                chain = _attr_chain(expr)
                if chain is None:
                    continue
                names.append(".".join(chain))
                if chain == ["TimeoutError"]:
                    has_builtin = True
                if chain[-1] == "TimeoutError" and len(chain) > 1:
                    has_alias = True
            if has_builtin and not has_alias:
                yield Finding(
                    "RPS203",
                    module.path,
                    node.lineno,
                    node.col_offset,
                    "except TimeoutError in a coroutine misses "
                    "asyncio.TimeoutError on Python 3.10 — catch "
                    "(TimeoutError, asyncio.TimeoutError)",
                )


_LOCKISH_RE = re.compile(r"lock|mutex|sem", re.IGNORECASE)


def _lock_findings(module: ModuleInfo) -> Iterator[Finding]:
    """RPS204: ``await`` inside a synchronous ``with <lock>``."""
    for func in module.functions.values():
        if not func.is_async:
            continue
        for node in ast.walk(func.node):
            if not isinstance(node, ast.With):
                continue
            lockish = False
            for item in node.items:
                for part in ast.walk(item.context_expr):
                    if isinstance(part, ast.Name) and _LOCKISH_RE.search(
                        part.id
                    ):
                        lockish = True
                    elif isinstance(part, ast.Attribute) and _LOCKISH_RE.search(
                        part.attr
                    ):
                        lockish = True
            if not lockish:
                continue
            for inner in node.body:
                for sub in ast.walk(inner):
                    if isinstance(sub, ast.Await):
                        yield Finding(
                            "RPS204",
                            module.path,
                            sub.lineno,
                            sub.col_offset,
                            "await while holding a synchronous lock "
                            "blocks every other task on the loop — use "
                            "asyncio.Lock, or release before awaiting",
                        )
                        break


# --------------------------------------------------------- syntactic rules


def _parents(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _order_accepted(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> bool:
    """Is this listing wrapped (however deep, within its statement) in
    an order-insensitive consumer such as ``sorted(...)``?"""
    current = parents.get(node)
    while current is not None and isinstance(current, ast.expr):
        if isinstance(current, ast.Call):
            func = current.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if name in ORDER_ACCEPTORS:
                return True
        current = parents.get(current)
    # comprehension nodes are not ast.expr; step over them.
    if isinstance(current, ast.comprehension):
        return _order_accepted(current, parents)
    return False


def _fs_order_findings(repo: Repo, module: ModuleInfo) -> Iterator[Finding]:
    """RPS101: unsorted directory listings."""
    parents = _parents(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = repo.resolve_call(module, None, node.func)
        listing: str | None = None
        if resolved is not None:
            kind, ident = resolved
            if kind == "ext" and ident in FS_ORDER_EXT:
                listing = ident
            elif kind == "attr" and ident in FS_ORDER_ATTRS:
                listing = f".{ident}()"
        if listing is None and isinstance(node.func, ast.Attribute) and (
            node.func.attr in FS_ORDER_ATTRS
        ):
            # ``Path(x).glob(...)``: the chain bottoms out at a call,
            # so resolve_call cannot classify it, but the method name
            # alone identifies the listing.
            listing = f".{node.func.attr}()"
        if listing is None or _order_accepted(node, parents):
            continue
        yield Finding(
            "RPS101",
            module.path,
            node.lineno,
            node.col_offset,
            f'directory listing "{listing}" iterated in filesystem order '
            "— wrap it in sorted() (or consume it order-insensitively)",
        )


def _random_findings(repo: Repo, module: ModuleInfo) -> Iterator[Finding]:
    """RPS103: unseeded randomness call sites."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = repo.resolve_call(module, None, node.func)
        if resolved is None:
            continue
        kind, ident = resolved
        if kind == "ext" and ident in RANDOM_SOURCES:
            yield Finding(
                "RPS103",
                module.path,
                node.lineno,
                node.col_offset,
                f'unseeded randomness "{ident}" — construct a seeded '
                "random.Random(seed) instead",
            )


def _setish(expr: ast.expr, local_sets: set[str]) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in ("set", "frozenset")
    return isinstance(expr, ast.Name) and expr.id in local_sets


def _set_iteration_findings(module: ModuleInfo) -> Iterator[Finding]:
    """RPS104: iteration over hash-ordered sets."""
    for func in module.functions.values():
        local_sets = {
            target.id
            for stmt in ast.walk(func.node)
            if isinstance(stmt, ast.Assign)
            for target in stmt.targets
            if isinstance(target, ast.Name) and _setish(stmt.value, set())
        }
        seen: set[int] = set()
        for node in ast.walk(func.node):
            iters: list[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if id(it) in seen or not _setish(it, local_sets):
                    continue
                seen.add(id(it))
                yield Finding(
                    "RPS104",
                    module.path,
                    it.lineno,
                    it.col_offset,
                    "iteration over a set leaks PYTHONHASHSEED-dependent "
                    "order — iterate sorted(...) instead",
                )


def _hash_findings(module: ModuleInfo) -> Iterator[Finding]:
    """RPS105: builtin ``hash()`` calls."""
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "hash"
        ):
            yield Finding(
                "RPS105",
                module.path,
                node.lineno,
                node.col_offset,
                "builtin hash() is salted per process for str/bytes "
                "(PYTHONHASHSEED) — use hashlib for anything keyed or "
                "persisted",
            )


# ------------------------------------------------------------------ driver


def _suppressed(finding: Finding, repo: Repo) -> bool:
    module = repo.modules.get(_module_key(finding.path))
    if module is None or not 1 <= finding.line <= len(module.lines):
        return False
    match = _PRAGMA_RE.search(module.lines[finding.line - 1])
    if match is None:
        return False
    if match.group(1) is None:
        return True
    rules = {part.strip() for part in match.group(1).split(",")}
    return finding.rule in rules


def build_repo(files: dict[str, str]) -> tuple[Repo, list[Finding]]:
    """Parse *files* (path -> source) into a :class:`Repo`.

    Only modules under the ``repro`` package participate; anything
    else (tests, benchmarks) is ignored.  Unparseable files surface
    as RPS000 findings.
    """
    repo = Repo()
    broken: list[Finding] = []
    for path, source in sorted(files.items()):
        key = _module_key(path)
        if not key.startswith("repro/") or not key.endswith(".py"):
            continue
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            broken.append(
                Finding(
                    "RPS000",
                    path,
                    exc.lineno or 1,
                    (exc.offset or 1) - 1,
                    f"syntax error: {exc.msg}",
                )
            )
            continue
        module = ModuleInfo(
            key, path, _dotted_name(key), tree, source.splitlines()
        )
        _collect_imports(module)
        _collect_functions(module)
        repo.add(module)
    for module in repo.modules.values():
        _collect_calls(repo, module)
    return repo, broken


def analyze_sources(files: dict[str, str]) -> list[Finding]:
    """Analyse in-memory sources; the workhorse behind
    :func:`analyze_paths` and the fixture tests."""
    repo, findings = build_repo(files)
    findings.extend(_wall_clock_findings(repo))
    findings.extend(_async_blocking_findings(repo))
    for module in repo.modules.values():
        findings.extend(_fs_order_findings(repo, module))
        findings.extend(_random_findings(repo, module))
        findings.extend(_set_iteration_findings(module))
        findings.extend(_hash_findings(module))
        findings.extend(_task_findings(module))
        findings.extend(_timeout_findings(module))
        findings.extend(_lock_findings(module))
    findings = [f for f in findings if not _suppressed(f, repo)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _iter_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def analyze_paths(paths: Iterable[str | Path]) -> list[Finding]:
    """Analyse every ``*.py`` file under the given files/directories."""
    files = {
        str(path): path.read_text(encoding="utf-8")
        for path in _iter_files(paths)
    }
    return analyze_sources(files)


# ---------------------------------------------------------------- baseline


def fingerprint(finding: Finding, files: dict[str, str]) -> str:
    """Line-drift-tolerant identity: rule, module and normalised
    source text of the flagged line."""
    source = files.get(finding.path, "")
    lines = source.splitlines()
    text = ""
    if 1 <= finding.line <= len(lines):
        text = " ".join(lines[finding.line - 1].split())
    return f"{finding.rule}|{_module_key(finding.path)}|{text}"


def load_baseline(path: str | Path) -> dict[str, int]:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = data.get("entries", [])
    counts: dict[str, int] = {}
    for entry in entries:
        counts[entry] = counts.get(entry, 0) + 1
    return counts


def write_baseline(
    path: str | Path, findings: Sequence[Finding], files: dict[str, str]
) -> None:
    entries = sorted(fingerprint(f, files) for f in findings)
    Path(path).write_text(
        json.dumps(
            {"format": "repro-sanitize-baseline", "version": 1, "entries": entries},
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )


def apply_baseline(
    findings: Sequence[Finding],
    baseline: dict[str, int],
    files: dict[str, str],
) -> tuple[list[Finding], list[str]]:
    """Subtract baselined findings; returns (fresh, stale-entries)."""
    remaining = dict(baseline)
    fresh: list[Finding] = []
    for finding in findings:
        key = fingerprint(finding, files)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            fresh.append(finding)
    stale = sorted(k for k, n in remaining.items() if n > 0)
    return fresh, stale


# -------------------------------------------------------------------- CLI


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sanitize",
        description=(
            "Whole-repo determinism-taint and async-hazard analysis "
            "(rules RPS101-RPS105, RPS201-RPS204)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default %(default)s)",
    )
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        default=None,
        help="also write the JSON report here (CI artifact)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="accepted-findings file (default: ./.repro-sanitize-baseline.json "
        "when present)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on stale baseline entries",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule, summary in sorted(RULES.items()):
            print(f"{rule}  {summary}")
        return 0
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    files = {
        str(path): path.read_text(encoding="utf-8")
        for path in _iter_files(args.paths)
    }
    findings = analyze_sources(files)

    if args.write_baseline is not None:
        write_baseline(args.write_baseline, findings, files)
        print(
            f"baseline written: {len(findings)} finding(s) -> "
            f"{args.write_baseline}"
        )
        return 0

    baseline_path = args.baseline
    if baseline_path is None and Path(".repro-sanitize-baseline.json").is_file():
        baseline_path = ".repro-sanitize-baseline.json"
    stale: list[str] = []
    if baseline_path is not None:
        findings, stale = apply_baseline(
            findings, load_baseline(baseline_path), files
        )

    report = {
        "ok": not findings and not (args.strict and stale),
        "findings": [f.to_dict() for f in findings],
        "stale_baseline_entries": stale,
    }
    if args.json_out is not None:
        Path(args.json_out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.format == "json":
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        for finding in findings:
            print(finding.render())
        for entry in stale:
            print(f"stale baseline entry (fix or regenerate): {entry}")
        n_files = len(files)
        if findings:
            print(f"{len(findings)} finding(s) in {n_files} file(s)")
        else:
            tail = f", {len(stale)} stale baseline entry(ies)" if stale else ""
            print(f"clean: {n_files} file(s), 0 findings{tail}")
    if findings:
        return 1
    if stale and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
