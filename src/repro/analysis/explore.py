"""Breadth-first exploration of the protocol's reachable state space.

One :class:`ProtocolModel` is driven from reset through every event in
every reachable abstract state.  The search keeps one representative
concrete machine snapshot per abstract state, so each (state, event)
pair is expanded exactly once and counterexamples read straight off
the BFS parent pointers — breadth-first order makes them minimal in
event count.

Soundness: every state the explorer reports *is* reachable (it was
produced by executing the real implementation from reset), and every
invariant violation comes with a concrete replayable event sequence.
Completeness is relative to the abstraction: two concrete machines
that agree on the tracked block's abstract view are merged, so
behaviour that depends on state outside the abstraction (other
blocks' versions, replacement order of untracked sets) is sampled
through one representative.  The abstraction was chosen so that every
field the protocol branches on for the tracked block is visible.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..common.errors import InclusionError, ProtocolError
from .model import ProtocolModel, Scenario, all_sub_combos, snoop_table

#: Transition verdicts.
OK = "ok"
VIOLATION = "violation"
ERROR = "error"
INAPPLICABLE = "inapplicable"


class ExplorationLimitError(RuntimeError):
    """The abstract state space exceeded the configured bound."""


@dataclass(frozen=True)
class Transition:
    """One explored (state, event) expansion.

    Attributes:
        source: abstract state id the event was applied in.
        event: event name.
        target: resulting abstract state id (None for error or
            inapplicable expansions).
        verdict: "ok", "violation", "error" or "inapplicable".
        messages: invariant-violation or exception messages.
    """

    source: int
    event: str
    target: int | None
    verdict: str
    messages: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "source": self.source,
            "event": self.event,
            "target": self.target,
            "verdict": self.verdict,
        }
        if self.messages:
            out["messages"] = list(self.messages)
        return out


@dataclass
class Counterexample:
    """A minimal event sequence leading to a violating expansion."""

    events: list[str]
    state: int
    messages: list[str]

    def to_dict(self) -> dict[str, Any]:
        return {
            "events": self.events,
            "state": self.state,
            "messages": self.messages,
        }


@dataclass
class ScenarioReport:
    """Everything one scenario's exploration produced."""

    scenario: Scenario
    states: list[tuple]
    transitions: list[Transition]
    counterexamples: list[Counterexample]
    events: tuple[str, ...]
    snoop_rows: list[dict[str, Any]] = field(default_factory=list)

    @property
    def n_states(self) -> int:
        return len(self.states)

    @property
    def n_transitions(self) -> int:
        return len(self.transitions)

    @property
    def ok(self) -> bool:
        """True when no reachable state violated any invariant."""
        return not self.counterexamples

    def reached_sub_combos(self) -> set[str]:
        """Subentry bit combinations observed in any reachable state."""
        out: set[str] = set()
        for state in self.states:
            for view in state[:2]:
                sub = view[1]
                if sub is None:
                    continue
                inclusion, buffer, share, vdirty, rdirty, _ = sub
                flags = "".join(
                    ch
                    for ch, on in (
                        ("I", inclusion),
                        ("B", buffer),
                        ("v", vdirty),
                        ("r", rdirty),
                    )
                    if on
                )
                out.add(f"{share}:{flags or '-'}")
        return out

    def unreachable_sub_combos(self) -> list[str]:
        """Subentry bit combinations no reachable state exhibits.

        Together with :func:`repro.analysis.model.snoop_table` these
        turn every defensive ``raise`` in the snoop handlers into an
        explicit verdict: either the raising configuration appears
        here (proven unreachable) or exploration found it and the
        raise is a genuine protocol gap.
        """
        full = set()
        for inclusion, buffer, share, vdirty, rdirty in all_sub_combos():
            flags = "".join(
                ch
                for ch, on in (
                    ("I", inclusion),
                    ("B", buffer),
                    ("v", vdirty),
                    ("r", rdirty),
                )
                if on
            )
            full.add(f"{share.value}:{flags or '-'}")
        return sorted(full - self.reached_sub_combos())

    def dead_states(self) -> list[int]:
        """States with no outgoing transition to a different state."""
        live: set[int] = set()
        for transition in self.transitions:
            if (
                transition.verdict == OK
                and transition.target is not None
                and transition.target != transition.source
            ):
                live.add(transition.source)
        return [i for i in range(len(self.states)) if i not in live]

    def missing_transitions(self) -> list[dict[str, Any]]:
        """Snoop-table rows where the implementation raises, each with
        an explicit verdict so no defensive ``raise`` is left
        unclassified:

        * ``"gap"`` — exploration actually triggered this raise from
          reset: an unhandled (subentry state x bus event) pair, a
          genuine protocol-table hole.
        * ``"delivery-unreachable"`` — the subentry state occurs in
          reachable states, but no reachable event sequence ever
          delivers this bus operation to it (the protocol's issue
          rules forbid it — e.g. no peer invalidates a block someone
          holds dirty, because a writer would have used
          read-modified-write).
        * ``"state-unreachable"`` — the subentry bit combination
          itself never occurs in any reachable state.
        """
        reached = self.reached_sub_combos()
        dynamic_errors = [
            message
            for transition in self.transitions
            if transition.verdict == ERROR
            for message in transition.messages
        ]
        out = []
        for row in self.snoop_rows:
            if row["outcome"] != "raise":
                continue
            core = row["error"].split(" [")[0]
            if any(core in message for message in dynamic_errors):
                verdict = "gap"
            elif row["sub"] in reached:
                verdict = "delivery-unreachable"
            else:
                verdict = "state-unreachable"
            out.append({**row, "verdict": verdict})
        return out

    def to_dict(self) -> dict[str, Any]:
        """The JSON artifact for one scenario."""
        return {
            "scenario": self.scenario.describe(),
            "n_states": self.n_states,
            "n_transitions": self.n_transitions,
            "ok": self.ok,
            "events": list(self.events),
            "states": [
                ProtocolModel.describe_state(state) for state in self.states
            ],
            "transitions": [t.to_dict() for t in self.transitions],
            "counterexamples": [c.to_dict() for c in self.counterexamples],
            "reached_sub_combos": sorted(self.reached_sub_combos()),
            "unreachable_sub_combos": self.unreachable_sub_combos(),
            "dead_states": self.dead_states(),
            "missing_transitions": self.missing_transitions(),
            "snoop_table": self.snoop_rows,
        }


def explore(
    scenario: Scenario,
    max_states: int = 20000,
    with_snoop_table: bool = True,
    engine: str = "object",
) -> ScenarioReport:
    """Exhaustively explore one scenario's reachable state space.

    *engine* picks the concrete machine under exploration ("object" or
    "soa"); the abstraction and the report format are identical, so a
    diff of the two engines' reports is the model-checking half of the
    engine-equivalence argument.
    """
    model = ProtocolModel(scenario, engine=engine)
    initial = model.abstract()
    ids: dict[tuple, int] = {initial: 0}
    states: list[tuple] = [initial]
    snapshots: dict[int, dict[str, Any]] = {0: model.snapshot()}
    parents: dict[int, tuple[int, str] | None] = {0: None}
    frontier: deque[int] = deque([0])
    transitions: list[Transition] = []
    counterexamples: list[Counterexample] = []

    def path_to(state_id: int) -> list[str]:
        events: list[str] = []
        cursor = parents[state_id]
        while cursor is not None:
            parent, event = cursor
            events.append(event)
            cursor = parents[parent]
        events.reverse()
        return events

    while frontier:
        source = frontier.popleft()
        for event in model.events():
            model.restore(snapshots[source])
            try:
                applied, messages = model.apply(event)
            except (ProtocolError, InclusionError) as exc:
                messages = [f"unhandled {type(exc).__name__}: {exc}"]
                transitions.append(
                    Transition(source, event, None, ERROR, tuple(messages))
                )
                counterexamples.append(
                    Counterexample(path_to(source) + [event], source, messages)
                )
                continue
            if not applied:
                transitions.append(
                    Transition(source, event, None, INAPPLICABLE)
                )
                continue
            messages = messages + model.check_invariants()
            abstract = model.abstract()
            target = ids.get(abstract)
            if target is None:
                target = len(states)
                ids[abstract] = target
                states.append(abstract)
                snapshots[target] = model.snapshot()
                parents[target] = (source, event)
                frontier.append(target)
                if len(states) > max_states:
                    raise ExplorationLimitError(
                        f"{scenario.name}: more than {max_states} abstract "
                        "states; the abstraction has lost its finiteness"
                    )
            verdict = VIOLATION if messages else OK
            transitions.append(
                Transition(source, event, target, verdict, tuple(messages))
            )
            if messages:
                counterexamples.append(
                    Counterexample(path_to(source) + [event], target, messages)
                )
    rows = snoop_table(scenario, engine=engine) if with_snoop_table else []
    return ScenarioReport(
        scenario=scenario,
        states=states,
        transitions=transitions,
        counterexamples=counterexamples,
        events=model.events(),
        snoop_rows=rows,
    )


def replay(
    scenario: Scenario, events: list[str], engine: str = "object"
) -> list[str]:
    """Re-run a counterexample trace; returns accumulated violations.

    Used by tests and by ``repro-verify --replay`` to confirm that a
    reported trace reproduces outside the explorer.
    """
    model = ProtocolModel(scenario, engine=engine)
    collected: list[str] = []
    for event in events:
        try:
            applied, messages = model.apply(event)
        except (ProtocolError, InclusionError) as exc:
            collected.append(f"unhandled {type(exc).__name__}: {exc}")
            return collected
        if applied:
            collected.extend(messages)
            collected.extend(model.check_invariants())
    return collected
