"""Closed-form performance model and report rendering."""

from .cycles import CycleBreakdown, account_cycles, compare_organisations
from .model import (
    HitRatios,
    SlowdownSeries,
    TimingParams,
    access_time,
    crossover_slowdown,
    relative_advantage,
    slowdown_sweep,
)
from .plot import ascii_chart
from .tables import render, render_ratio

__all__ = [
    "CycleBreakdown",
    "HitRatios",
    "SlowdownSeries",
    "TimingParams",
    "access_time",
    "account_cycles",
    "ascii_chart",
    "compare_organisations",
    "crossover_slowdown",
    "relative_advantage",
    "render",
    "render_ratio",
    "slowdown_sweep",
]
