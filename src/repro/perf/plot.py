"""ASCII line charts for the figure experiments.

Dependency-free rendering of the Figures 4-6 curves so the benchmark
artefacts carry a visual of the crossover, not just the numbers.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..common.errors import ConfigurationError


def ascii_chart(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Plot one or more series against shared x values.

    Each series gets the first letter of its name as its mark; where
    two series overlap, ``*`` is drawn.  The y-axis is scaled to the
    combined data range.
    """
    if not series:
        raise ConfigurationError("nothing to plot")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ConfigurationError(
                f"series {name!r} has {len(values)} points for "
                f"{len(x_values)} x values"
            )
    if width < 10 or height < 4:
        raise ConfigurationError("chart too small to draw")

    all_values = [v for values in series.values() for v in values]
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0
    x_lo, x_hi = min(x_values), max(x_values)
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for name, values in series.items():
        mark = name[0]
        for x, y in zip(x_values, values):
            col = round((x - x_lo) / x_span * (width - 1))
            row = (height - 1) - round((y - lo) / (hi - lo) * (height - 1))
            grid[row][col] = "*" if grid[row][col] not in (" ", mark) else mark

    lines = []
    if y_label:
        lines.append(y_label)
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{hi:8.3f} |"
        elif i == height - 1:
            label = f"{lo:8.3f} |"
        else:
            label = "         |"
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    x_axis = f"{x_lo:<10.3g}{x_hi:>{width}.3g}"
    lines.append("          " + x_axis.strip().ljust(width))
    if x_label:
        lines.append(" " * 10 + x_label)
    legend = "  ".join(f"{name[0]} = {name}" for name in series)
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
