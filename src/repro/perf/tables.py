"""Plain-text table rendering shared by experiments and examples.

Kept dependency-free: experiment runners return structured rows and
call :func:`render` to produce the same table shapes the paper prints.
"""

from __future__ import annotations

from collections.abc import Sequence

Cell = object  # str, int or float


def _format_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def render(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    >>> print(render(["a", "b"], [[1, 2.5]], title="demo"))
    demo
    a | b
    --+------
    1 | 2.500
    """
    text_rows = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(
            " | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def render_ratio(value: float) -> str:
    """The paper's hit-ratio spelling: '.925' (no leading zero)."""
    text = f"{value:.3f}"
    return text[1:] if text.startswith("0.") else text
