"""The paper's closed-form timing model (section 4).

The generic access-time equation of a two-level hierarchy::

    T_acc = h1*t1 + (1 - h1)*h2*t2 + (1 - h1)*(1 - h2)*tm

Hit ratios come from simulation; times are parameters (the paper uses
t2 = 4*t1 and plots T_acc against the percentage slow-down that
address translation adds to the level-1 access of the *physical*
hierarchy).  Synonym handling costs the same as a level-1 miss that
hits at level 2, which is exactly how the simulator accounts it, so
no extra term is needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ConfigurationError


@dataclass(frozen=True)
class TimingParams:
    """Access times in units of the baseline level-1 hit time.

    Attributes:
        t1: level-1 hit time.
        t2: level-2 access time (paper: 4 * t1).
        tm: memory access time including bus overhead.
    """

    t1: float = 1.0
    t2: float = 4.0
    tm: float = 12.0

    def __post_init__(self) -> None:
        if not 0 < self.t1 <= self.t2 <= self.tm:
            raise ConfigurationError(
                f"need 0 < t1 <= t2 <= tm, got {self.t1}, {self.t2}, {self.tm}"
            )


@dataclass(frozen=True)
class HitRatios:
    """(h1, h2) of one hierarchy, as measured by simulation."""

    h1: float
    h2: float

    def __post_init__(self) -> None:
        for name, value in (("h1", self.h1), ("h2", self.h2)):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")


def access_time(
    ratios: HitRatios, timing: TimingParams, l1_slowdown: float = 0.0
) -> float:
    """Average access time, with level-1 slowed by *l1_slowdown*.

    *l1_slowdown* is fractional (0.06 = 6 %); it models the address
    translation overhead a physically-addressed level-1 cache pays.

    >>> access_time(HitRatios(0.9, 0.5), TimingParams(1, 4, 12))
    1.7
    """
    if l1_slowdown < 0:
        raise ConfigurationError(f"slow-down must be >= 0, got {l1_slowdown}")
    t1 = timing.t1 * (1.0 + l1_slowdown)
    h1, h2 = ratios.h1, ratios.h2
    miss1 = 1.0 - h1
    return h1 * t1 + miss1 * h2 * timing.t2 + miss1 * (1.0 - h2) * timing.tm


@dataclass(frozen=True)
class SlowdownSeries:
    """One curve of the paper's Figures 4-6.

    ``times[i]`` is the average access time at ``slowdowns[i]``
    (fractions).  The V-R curve is flat (no translation before level
    1); the R-R curve rises with the slow-down.
    """

    slowdowns: tuple[float, ...]
    vr_times: tuple[float, ...]
    rr_times: tuple[float, ...]


def slowdown_sweep(
    vr: HitRatios,
    rr: HitRatios,
    timing: TimingParams = TimingParams(),
    max_slowdown: float = 0.10,
    steps: int = 11,
) -> SlowdownSeries:
    """Sweep the level-1 translation slow-down from 0 to *max_slowdown*."""
    if steps < 2:
        raise ConfigurationError("need at least two sweep points")
    slowdowns = tuple(max_slowdown * i / (steps - 1) for i in range(steps))
    vr_time = access_time(vr, timing)
    return SlowdownSeries(
        slowdowns=slowdowns,
        vr_times=tuple(vr_time for _ in slowdowns),
        rr_times=tuple(access_time(rr, timing, s) for s in slowdowns),
    )


def crossover_slowdown(
    vr: HitRatios, rr: HitRatios, timing: TimingParams = TimingParams()
) -> float:
    """The slow-down at which the R-R hierarchy becomes slower than V-R.

    Solves ``T_rr(s) = T_vr`` for s.  Negative values mean the V-R
    hierarchy is already faster with no translation penalty at all;
    the paper reports ~6 % for the frequent-switch trace.
    """
    vr_time = access_time(vr, timing)
    rr_base = access_time(rr, timing)
    # T_rr(s) = rr_base + h1_rr * t1 * s  (only the level-1 term scales)
    slope = rr.h1 * timing.t1
    if slope == 0.0:
        raise ConfigurationError("R-R level-1 hit ratio is zero; no crossover")
    return (vr_time - rr_base) / slope


def relative_advantage(
    vr: HitRatios,
    rr: HitRatios,
    timing: TimingParams = TimingParams(),
    l1_slowdown: float = 0.0,
) -> float:
    """(T_rr - T_vr) / T_rr at the given slow-down: >0 means V-R wins."""
    vr_time = access_time(vr, timing)
    rr_time = access_time(rr, timing, l1_slowdown)
    return (rr_time - vr_time) / rr_time
