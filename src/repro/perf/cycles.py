"""Cycle accounting over simulated statistics.

The paper evaluates with the closed-form equation of `perf.model`;
this module provides the bridge from *measured* hierarchy statistics
to total cycles, adding the second-order terms the closed form folds
away: write-buffer stalls and the per-organisation translation
penalty.  It lets Figures 4-6 be recomputed from raw counters instead
of hit ratios, and exposes a CPI-style summary for examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ConfigurationError
from ..hierarchy.stats import HierarchyStats
from .model import TimingParams


@dataclass(frozen=True)
class CycleBreakdown:
    """Total cycles of one hierarchy's reference stream, itemised.

    All values are in units of the baseline level-1 hit time.
    """

    l1_hit_cycles: float
    l2_hit_cycles: float
    memory_cycles: float
    stall_cycles: float
    refs: int

    @property
    def total(self) -> float:
        """Total cycles across all components."""
        return (
            self.l1_hit_cycles
            + self.l2_hit_cycles
            + self.memory_cycles
            + self.stall_cycles
        )

    @property
    def cpi(self) -> float:
        """Average cycles per memory reference."""
        return self.total / self.refs if self.refs else 0.0


def account_cycles(
    stats: HierarchyStats,
    timing: TimingParams = TimingParams(),
    l1_slowdown: float = 0.0,
    stall_penalty: float | None = None,
) -> CycleBreakdown:
    """Convert hierarchy counters into a cycle breakdown.

    *l1_slowdown* models the translation overhead of a physically
    addressed level 1 (0 for the V-R hierarchy).  Each write-buffer
    stall costs *stall_penalty* cycles (default: one level-2 access,
    the time to force-drain an entry).

    Level-1 misses that hit at level 2 cost ``t2`` — this includes
    synonym resolutions, matching the paper's assumption that a
    synonym costs as much as a level-1 miss / level-2 hit.
    """
    if l1_slowdown < 0:
        raise ConfigurationError("slow-down must be >= 0")
    if stall_penalty is None:
        stall_penalty = timing.t2
    t1 = timing.t1 * (1.0 + l1_slowdown)

    refs = stats.l1_refs()
    l1_hits = refs - (stats.counters["l2_hits"] + stats.counters["l2_misses"])
    l2_hits = stats.counters["l2_hits"]
    l2_misses = stats.counters["l2_misses"]
    stalls = stats.counters["writeback_stalls"]

    return CycleBreakdown(
        # Every reference pays the level-1 lookup; misses pay the next
        # level on top, which is folded into the terms below.
        l1_hit_cycles=l1_hits * t1,
        l2_hit_cycles=l2_hits * timing.t2,
        memory_cycles=l2_misses * timing.tm,
        stall_cycles=stalls * stall_penalty,
        refs=refs,
    )


def compare_organisations(
    vr_stats: HierarchyStats,
    rr_stats: HierarchyStats,
    timing: TimingParams = TimingParams(),
    l1_slowdown: float = 0.06,
) -> dict[str, float]:
    """Head-to-head CPI of measured V-R vs R-R statistics.

    The R-R hierarchy pays *l1_slowdown* on its level-1 accesses (the
    paper's conservative TLB figure is 6 %); V-R pays none.  Returns
    the two CPIs and the relative V-R advantage.
    """
    vr = account_cycles(vr_stats, timing, l1_slowdown=0.0)
    rr = account_cycles(rr_stats, timing, l1_slowdown=l1_slowdown)
    return {
        "vr_cpi": vr.cpi,
        "rr_cpi": rr.cpi,
        "vr_advantage": (rr.cpi - vr.cpi) / rr.cpi if rr.cpi else 0.0,
    }
