"""Struct-of-arrays replay core (the ``--engine soa`` backend).

The object engine spends most of its time chasing ``CacheBlock``
instances through Python attribute access.  This module keeps the
*protocol* code — every miss, synonym move, coherence event and
context switch still runs the unmodified ``TwoLevelHierarchy``
methods — but stores all hot metadata in flat numpy vectors indexed
by ``set * assoc + way``:

* level-1 tags / flag bits / version stamps / r-pointers,
* R-cache tags plus per-subentry flag bits and v-pointers,
* TLB entries (pid, vpage, frame, LRU timestamp, valid),
* write-buffer slots (pblock, version, swapped).

The bridge between the two worlds is a set of *view* classes
(:class:`SoABlock`, :class:`SoASub`, :class:`SoARBlock`,
:class:`SoAWriteBufferEntry`): each is a real subclass of the object
model's class whose field accessors are properties over the shared
arrays.  The scalar protocol code reads and writes views exactly as it
would plain blocks, so SoA and object runs are bit-identical by
construction; checkpoints, the invariant checker and the BFS model
checker all work unchanged.

:func:`run_soa` is the fast replay loop.  It consumes the trace in
bounded chunks, classifies every reference of a chunk with vectorized
array ops (L1 tag match + dirty bit, TLB probe for physically-indexed
level 1), and then walks the chunk in :func:`_walk_chunk`, committing
pure level-1 hits with a handful of integer operations and escaping to
``TwoLevelHierarchy.access`` for everything else.  Chunk-boundary
semantics (how a scalar escape invalidates earlier classifications)
are documented in DESIGN.md §13.  ``_walk_chunk`` is the
RPL005-audited function: it performs no attribute lookups and no
container allocation per reference.
"""

from __future__ import annotations

from array import array
from itertools import islice
from typing import Any

import numpy as np

from ..cache.block import CacheBlock
from ..cache.config import CacheConfig
from ..cache.tagstore import TagStore
from ..cache.write_buffer import WriteBuffer, WriteBufferEntry
from ..coherence.protocol import ShareState
from ..common.errors import InclusionError, ProtocolError
from ..hierarchy.l1 import L1Cache
from ..hierarchy.rcache import RCache, RCacheBlock, SubEntry
from ..hierarchy.stats import _L1_KEYS
from ..hierarchy.twolevel import TwoLevelHierarchy
from ..mmu.tlb import TLB
from ..trace.record import RefKind

# Block flag bits (level-1 blocks and R-cache tag entries).
_F_VALID = 1
_F_SWAPPED = 2
_F_DIRTY = 4

# Subentry flag bits.
_S_VALID = 1
_S_INCL = 2
_S_BUF = 4
_S_VDIRTY = 8
_S_RDIRTY = 16
_S_SHARED = 32

_SHARED = ShareState.SHARED
_PRIVATE = ShareState.PRIVATE

#: TLB keys pack (pid, vpage) into one int; pids are far below 2**16.
_PID_SHIFT = 48
_VPAGE_MASK = (1 << _PID_SHIFT) - 1

# Numeric reference-kind codes used by the vectorized classifier:
# INSTR=0, READ=1, WRITE=2, CSWITCH=3, CALL=4 (assigned inline in the
# batch-conversion loop).  Memory kinds come first so ``kind_code < 3``
# selects them, and the INSTR/READ/WRITE codes double as indices into
# the per-CPU hit accumulators (matching l1_hits_i/_r/_w).
_KIND_OBJS = (RefKind.INSTR, RefKind.READ, RefKind.WRITE)

# The exact key objects the object engine mints (the f-strings in
# ``_L1_KEYS`` are not interned, and state digests compare pickles —
# which memoize strings by identity — so both engines must count into
# the *same* string objects, not merely equal ones).
_HIT_KEYS = tuple(_L1_KEYS[kind, True] for kind in _KIND_OBJS)
_MISS_KEYS = tuple(_L1_KEYS[kind, False] for kind in _KIND_OBJS)

#: References per classification chunk and records per conversion batch.
_CHUNK = 8192
_BATCH = 1 << 16


# -- view classes --------------------------------------------------------------


class SoABlock(CacheBlock):
    """A level-1 tag entry viewed over the cache's flat arrays.

    Every getter casts to plain ``int``/``bool`` so values escaping
    into object-engine structures (replacement orders, checkpoints,
    digests) never carry numpy scalar types.  Setters that change
    classification inputs (tag and any flag bit) append the block's
    flat index to the owning cache's dirty log, which the SoA replay
    loop folds into its per-chunk taint sets.
    """

    __slots__ = ("_tg", "_fl", "_vr", "_ps", "_pw", "_pb", "_dl", "_g")

    def __init__(
        self,
        set_index: int,
        way: int,
        tags: Any,
        flags: Any,
        versions: Any,
        rp_set: Any,
        rp_way: Any,
        rp_sub: Any,
        dirty_log: list,
        g: int,
    ) -> None:
        self.set_index = set_index
        self.way = way
        self._tg = tags
        self._fl = flags
        self._vr = versions
        self._ps = rp_set
        self._pw = rp_way
        self._pb = rp_sub
        self._dl = dirty_log
        self._g = g

    @property
    def valid(self) -> bool:
        return bool(self._fl[self._g] & _F_VALID)

    @valid.setter
    def valid(self, value: bool) -> None:
        g = self._g
        if value:
            self._fl[g] |= _F_VALID
        else:
            self._fl[g] &= 0xFF ^ _F_VALID
        self._dl.append(g)

    @property
    def swapped_valid(self) -> bool:
        return bool(self._fl[self._g] & _F_SWAPPED)

    @swapped_valid.setter
    def swapped_valid(self, value: bool) -> None:
        g = self._g
        if value:
            self._fl[g] |= _F_SWAPPED
        else:
            self._fl[g] &= 0xFF ^ _F_SWAPPED
        self._dl.append(g)

    @property
    def dirty(self) -> bool:
        return bool(self._fl[self._g] & _F_DIRTY)

    @dirty.setter
    def dirty(self, value: bool) -> None:
        g = self._g
        if value:
            self._fl[g] |= _F_DIRTY
        else:
            self._fl[g] &= 0xFF ^ _F_DIRTY
        self._dl.append(g)

    @property
    def tag(self) -> int:
        return self._tg[self._g]

    @tag.setter
    def tag(self, value: int) -> None:
        g = self._g
        self._tg[g] = value
        self._dl.append(g)

    @property
    def version(self) -> int:
        return self._vr[self._g]

    @version.setter
    def version(self, value: int) -> None:
        self._vr[self._g] = value

    @property
    def r_pointer(self):
        g = self._g
        s = self._ps[g]
        if s < 0:
            # The power-on placeholder, matching CacheBlock.__init__.
            return 0
        return (s, self._pw[g], self._pb[g])

    @r_pointer.setter
    def r_pointer(self, value) -> None:
        g = self._g
        if isinstance(value, (tuple, list)):
            self._ps[g] = value[0]
            self._pw[g] = value[1]
            self._pb[g] = value[2]
        else:
            self._ps[g] = -1


class SoASub(SubEntry):
    """One R-cache subentry viewed over the R-cache's flat arrays."""

    __slots__ = ("_fl", "_vr", "_pc", "_ps", "_pw", "_g")

    def __init__(
        self,
        sub_flags: Any,
        sub_versions: Any,
        vp_ci: Any,
        vp_set: Any,
        vp_way: Any,
        g: int,
    ) -> None:
        self._fl = sub_flags
        self._vr = sub_versions
        self._pc = vp_ci
        self._ps = vp_set
        self._pw = vp_way
        self._g = g

    @property
    def valid(self) -> bool:
        return bool(self._fl[self._g] & _S_VALID)

    @valid.setter
    def valid(self, value: bool) -> None:
        g = self._g
        if value:
            self._fl[g] |= _S_VALID
        else:
            self._fl[g] &= 0xFF ^ _S_VALID

    @property
    def inclusion(self) -> bool:
        return bool(self._fl[self._g] & _S_INCL)

    @inclusion.setter
    def inclusion(self, value: bool) -> None:
        g = self._g
        if value:
            self._fl[g] |= _S_INCL
        else:
            self._fl[g] &= 0xFF ^ _S_INCL

    @property
    def buffer(self) -> bool:
        return bool(self._fl[self._g] & _S_BUF)

    @buffer.setter
    def buffer(self, value: bool) -> None:
        g = self._g
        if value:
            self._fl[g] |= _S_BUF
        else:
            self._fl[g] &= 0xFF ^ _S_BUF

    @property
    def vdirty(self) -> bool:
        return bool(self._fl[self._g] & _S_VDIRTY)

    @vdirty.setter
    def vdirty(self, value: bool) -> None:
        g = self._g
        if value:
            self._fl[g] |= _S_VDIRTY
        else:
            self._fl[g] &= 0xFF ^ _S_VDIRTY

    @property
    def rdirty(self) -> bool:
        return bool(self._fl[self._g] & _S_RDIRTY)

    @rdirty.setter
    def rdirty(self, value: bool) -> None:
        g = self._g
        if value:
            self._fl[g] |= _S_RDIRTY
        else:
            self._fl[g] &= 0xFF ^ _S_RDIRTY

    @property
    def state(self) -> ShareState:
        if self._fl[self._g] & _S_SHARED:
            return _SHARED
        return _PRIVATE

    @state.setter
    def state(self, value: ShareState) -> None:
        g = self._g
        if value is _SHARED:
            self._fl[g] |= _S_SHARED
        else:
            self._fl[g] &= 0xFF ^ _S_SHARED

    @property
    def version(self) -> int:
        return self._vr[self._g]

    @version.setter
    def version(self, value: int) -> None:
        self._vr[self._g] = value

    @property
    def v_pointer(self):
        g = self._g
        ci = self._pc[g]
        if ci < 0:
            return None
        return (ci, self._ps[g], self._pw[g])

    @v_pointer.setter
    def v_pointer(self, value) -> None:
        g = self._g
        if value is None:
            self._pc[g] = -1
        else:
            self._pc[g] = value[0]
            self._ps[g] = value[1]
            self._pw[g] = value[2]


class SoARBlock(RCacheBlock):
    """An R-cache tag entry viewed over the R-cache's flat arrays.

    R-cache state is never read by the vectorized classifier, so no
    dirty log is kept here.  ``r_pointer`` stays a plain inherited
    slot (R-cache entries never use it, but checkpoints export it).
    """

    __slots__ = ("_tg", "_fl", "_vr", "_g")

    def __init__(
        self,
        set_index: int,
        way: int,
        tags: Any,
        flags: Any,
        versions: Any,
        g: int,
        subentries: list,
    ) -> None:
        self.set_index = set_index
        self.way = way
        self.r_pointer = 0
        self._tg = tags
        self._fl = flags
        self._vr = versions
        self._g = g
        self.subentries = subentries

    @property
    def valid(self) -> bool:
        return bool(self._fl[self._g] & _F_VALID)

    @valid.setter
    def valid(self, value: bool) -> None:
        g = self._g
        if value:
            self._fl[g] |= _F_VALID
        else:
            self._fl[g] &= 0xFF ^ _F_VALID

    @property
    def swapped_valid(self) -> bool:
        return bool(self._fl[self._g] & _F_SWAPPED)

    @swapped_valid.setter
    def swapped_valid(self, value: bool) -> None:
        g = self._g
        if value:
            self._fl[g] |= _F_SWAPPED
        else:
            self._fl[g] &= 0xFF ^ _F_SWAPPED

    @property
    def dirty(self) -> bool:
        return bool(self._fl[self._g] & _F_DIRTY)

    @dirty.setter
    def dirty(self, value: bool) -> None:
        g = self._g
        if value:
            self._fl[g] |= _F_DIRTY
        else:
            self._fl[g] &= 0xFF ^ _F_DIRTY

    @property
    def tag(self) -> int:
        return self._tg[self._g]

    @tag.setter
    def tag(self, value: int) -> None:
        self._tg[self._g] = value

    @property
    def version(self) -> int:
        return self._vr[self._g]

    @version.setter
    def version(self, value: int) -> None:
        self._vr[self._g] = value


class SoAWriteBufferEntry(WriteBufferEntry):
    """A write-buffer slot viewed over the buffer's flat arrays.

    Instances are created once per slot and live as long as the
    buffer; pushing re-points the slot's data, so code holding a view
    across a ``remove``/``pop_oldest`` of *another* entry stays
    correct (the object engine's dataclass entries behave the same
    way).  ``remove``/``pop_oldest`` return detached plain entries for
    exactly that reason — see :class:`SoAWriteBuffer`.
    """

    __slots__ = ("_pb", "_vr", "_sw", "_i")

    def __init__(self, pblocks: Any, versions: Any, swapped: Any, i: int) -> None:
        self._pb = pblocks
        self._vr = versions
        self._sw = swapped
        self._i = i

    @property
    def pblock(self) -> int:
        return self._pb[self._i]

    @pblock.setter
    def pblock(self, value: int) -> None:
        self._pb[self._i] = value

    @property
    def version(self) -> int:
        return self._vr[self._i]

    @version.setter
    def version(self, value: int) -> None:
        self._vr[self._i] = value

    @property
    def swapped(self) -> bool:
        return bool(self._sw[self._i])

    @swapped.setter
    def swapped(self, value: bool) -> None:
        self._sw[self._i] = 1 if value else 0

    def __eq__(self, other: object) -> bool:
        # The dataclass __eq__ requires an exact class match; entries
        # must compare by value against plain WriteBufferEntry too.
        if isinstance(other, WriteBufferEntry):
            return (
                self.pblock == other.pblock
                and self.version == other.version
                and self.swapped == other.swapped
            )
        return NotImplemented

    __hash__ = None  # match the eq-without-hash dataclass behaviour


# -- array-backed components ---------------------------------------------------


class SoAL1Cache(L1Cache):
    """A level-1 cache whose tag store is backed by flat arrays."""

    __slots__ = (
        "tags",
        "flags",
        "versions",
        "rp_set",
        "rp_way",
        "rp_sub",
        "dirty_log",
    )

    def __init__(
        self,
        config: CacheConfig,
        index: int = 0,
        name: str = "L1",
        replacement: str = "lru",
        seed: int = 0,
    ) -> None:
        n = config.n_sets * config.associativity
        self.config = config
        self.index = index
        self.name = name
        self.tags = array("q", bytes(8 * n))
        self.flags = bytearray(n)
        self.versions = array("q", bytes(8 * n))
        self.rp_set = array("q", [-1]) * n
        self.rp_way = array("q", bytes(8 * n))
        self.rp_sub = array("q", bytes(8 * n))
        self.dirty_log: list[int] = []
        assoc = config.associativity
        tags = self.tags
        flags = self.flags
        versions = self.versions
        rp_s = self.rp_set
        rp_w = self.rp_way
        rp_b = self.rp_sub
        log = self.dirty_log

        def factory(s: int, w: int) -> SoABlock:
            return SoABlock(
                s, w, tags, flags, versions, rp_s, rp_w, rp_b, log, s * assoc + w
            )

        self.store = TagStore(
            config, block_factory=factory, replacement=replacement, seed=seed
        )
        self.access = self.store.access


class SoARCache(RCache):
    """An R-cache whose tag entries and subentries live in flat arrays."""

    __slots__ = (
        "tags",
        "flags",
        "versions",
        "sub_flags",
        "sub_versions",
        "vp_ci",
        "vp_set",
        "vp_way",
    )

    def __init__(
        self,
        config: CacheConfig,
        n_subentries: int,
        replacement: str = "lru",
        seed: int = 0,
    ) -> None:
        n = config.n_sets * config.associativity
        m = n * n_subentries
        self.config = config
        self.n_subentries = n_subentries
        self.tags = array("q", bytes(8 * n))
        self.flags = bytearray(n)
        self.versions = array("q", bytes(8 * n))
        self.sub_flags = bytearray(m)
        self.sub_versions = array("q", bytes(8 * m))
        self.vp_ci = array("q", [-1]) * m
        self.vp_set = array("q", bytes(8 * m))
        self.vp_way = array("q", bytes(8 * m))
        assoc = config.associativity
        tags = self.tags
        flags = self.flags
        versions = self.versions
        sub_flags = self.sub_flags
        sub_versions = self.sub_versions
        vp_ci = self.vp_ci
        vp_set = self.vp_set
        vp_way = self.vp_way

        def factory(s: int, w: int) -> SoARBlock:
            g = s * assoc + w
            base = g * n_subentries
            subs = [
                SoASub(sub_flags, sub_versions, vp_ci, vp_set, vp_way, base + j)
                for j in range(n_subentries)
            ]
            return SoARBlock(s, w, tags, flags, versions, g, subs)

        self.store = TagStore(
            config, block_factory=factory, replacement=replacement, seed=seed
        )
        self.sub_block_size = config.block_size // n_subentries
        self._sub_bits = self.sub_block_size.bit_length() - 1


class SoATLB(TLB):
    """Array-backed TLB with timestamp LRU.

    Replacement is exactly equivalent to the object TLB's per-set
    ``OrderedDict``: a hit refreshes the entry's timestamp, a miss
    that finds the set full evicts the entry with the smallest
    timestamp (least recently used or inserted).  Resident entries
    never move between slots, which is what lets the replay loop cache
    a (key → slot) classification across a chunk; evictions are
    appended to :attr:`evict_log` so the loop can tell when that
    classification may have gone stale.
    """

    __slots__ = (
        "pids",
        "vpages",
        "frames",
        "ts",
        "valid",
        "evict_log",
        "_tick",
        "_map",
        "_frames_py",
    )

    def __init__(
        self,
        layout: Any,
        n_entries: int = 64,
        associativity: int = 4,
    ) -> None:
        super().__init__(layout, n_entries, associativity)
        self.pids = array("q", bytes(8 * n_entries))
        self.vpages = array("q", bytes(8 * n_entries))
        self.frames = array("q", bytes(8 * n_entries))
        self.ts = array("q", bytes(8 * n_entries))
        self.valid = bytearray(n_entries)
        self.evict_log: list[int] = []
        self._tick = 0
        self._map: dict[int, int] = {}
        # Frames as plain ints for scalar reads (promotions, export).
        self._frames_py: list[int] = [0] * n_entries

    def translate(self, pid: int, vaddr: int) -> int:
        page_size = self.layout.page_size
        shift = self._page_shift
        if shift is not None:
            vpage = vaddr >> shift
            offset = vaddr & self._page_mask
        else:
            vpage, offset = divmod(vaddr, page_size)
        key = (pid << _PID_SHIFT) | vpage
        slot = self._map.get(key, -1)
        if slot >= 0:
            self.ts[slot] = self._tick
            self._tick += 1
            self._counts["hits"] += 1
            frame = self._frames_py[slot]
        else:
            self._counts["misses"] += 1
            frame = self.layout.translate(pid, vpage * page_size) // page_size
            base = (vpage % self.n_sets) * self.associativity
            valid = self.valid
            ts = self.ts
            free = -1
            count = 0
            oldest = -1
            oldest_ts = 0
            for w in range(self.associativity):
                s = base + w
                if valid[s]:
                    count += 1
                    t = ts[s]
                    if oldest < 0 or t < oldest_ts:
                        oldest = s
                        oldest_ts = t
                elif free < 0:
                    free = s
            if count >= self.associativity:
                ev_key = (self.pids[oldest] << _PID_SHIFT) | self.vpages[oldest]
                del self._map[ev_key]
                valid[oldest] = 0
                self.evict_log.append(oldest)
                self._counts["evictions"] += 1
                free = oldest
            self.pids[free] = pid
            self.vpages[free] = vpage
            self.frames[free] = frame
            self._frames_py[free] = frame
            valid[free] = 1
            ts[free] = self._tick
            self._tick += 1
            self._map[key] = free
        if shift is not None:
            return (frame << shift) | offset
        return frame * page_size + offset

    def flush(self) -> None:
        # Mirror the object TLB exactly: one "flushed_entries" add per
        # set, including zero-valued adds for empty sets (those mint
        # the counter key, which state digests can see).
        per_set = [0] * self.n_sets
        for key, slot in self._map.items():
            per_set[(key & _VPAGE_MASK) % self.n_sets] += 1
            self.valid[slot] = 0
            self.evict_log.append(slot)
        self._map.clear()
        for count in per_set:
            self.stats.add("flushed_entries", count)
        self.stats.add("flushes")

    def flush_pid(self, pid: int) -> None:
        per_set: list[list[int]] = [[] for _ in range(self.n_sets)]
        for key, slot in self._map.items():
            if (key >> _PID_SHIFT) == pid:
                per_set[(key & _VPAGE_MASK) % self.n_sets].append(key)
        for bucket in per_set:
            for key in bucket:
                slot = self._map.pop(key)
                self.valid[slot] = 0
                self.evict_log.append(slot)
            self.stats.add("flushed_entries", len(bucket))
        self.stats.add("selective_flushes")

    def resident(self) -> list[tuple[int, int]]:
        return sorted(
            (key >> _PID_SHIFT, key & _VPAGE_MASK) for key in self._map
        )

    def entries(self) -> list[tuple[int, int, int]]:
        return sorted(
            (key >> _PID_SHIFT, key & _VPAGE_MASK, self._frames_py[slot])
            for key, slot in self._map.items()
        )

    def poison(self, pid: int, vpage: int, frame: int) -> bool:
        slot = self._map.get((pid << _PID_SHIFT) | vpage, -1)
        if slot < 0:
            return False
        self.frames[slot] = frame
        self._frames_py[slot] = frame
        return True

    def scrub(self, pid: int, vpage: int) -> bool:
        slot = self._map.pop((pid << _PID_SHIFT) | vpage, -1)
        if slot < 0:
            return False
        self.valid[slot] = 0
        self.evict_log.append(slot)
        self.stats.add("scrubbed_entries")
        return True

    def export_state(self) -> dict:
        # Same shape as the object TLB's snapshot: per set, entries in
        # LRU order (oldest first), as ((pid, vpage), frame) pairs.
        sets: list[list] = []
        for set_index in range(self.n_sets):
            items = [
                (int(self.ts[slot]), key, slot)
                for key, slot in self._map.items()
                if (key & _VPAGE_MASK) % self.n_sets == set_index
            ]
            items.sort()
            sets.append(
                [
                    ((key >> _PID_SHIFT, key & _VPAGE_MASK), self._frames_py[slot])
                    for _, key, slot in items
                ]
            )
        return {"sets": sets, "stats": self.stats.export_state()}

    def restore_state(self, state: dict) -> None:
        self._map.clear()
        # In-place wipes: numpy classification views share these buffers.
        self.valid[:] = bytes(len(self.valid))
        self.ts[:] = array("q", bytes(8 * len(self.ts)))
        self._tick = 0
        del self.evict_log[:]
        for set_index, entries in enumerate(state["sets"]):
            base = set_index * self.associativity
            for w, (key, frame) in enumerate(entries):
                pid, vpage = key
                slot = base + w
                self.pids[slot] = pid
                self.vpages[slot] = vpage
                self.frames[slot] = frame
                self._frames_py[slot] = int(frame)
                self.valid[slot] = 1
                self.ts[slot] = self._tick
                self._tick += 1
                self._map[(int(pid) << _PID_SHIFT) | int(vpage)] = slot
        self.stats.restore_state(state["stats"])


class SoAWriteBuffer(WriteBuffer):
    """Write buffer whose slots are flat arrays.

    The FIFO order still lives in the inherited ``_entries`` deque
    (the hierarchy aliases it directly), but the deque holds long-lived
    per-slot views.  ``pop_oldest``/``remove`` return *detached* plain
    entries: the protocol code reads fields from a removed entry after
    subsequent pushes may have recycled its slot.
    """

    __slots__ = ("pblocks", "versions", "swapped", "used", "_views")

    def __init__(self, capacity: int = 1) -> None:
        super().__init__(capacity)
        self.pblocks = array("q", bytes(8 * capacity))
        self.versions = array("q", bytes(8 * capacity))
        self.swapped = bytearray(capacity)
        self.used = bytearray(capacity)
        self._views = [
            SoAWriteBufferEntry(self.pblocks, self.versions, self.swapped, i)
            for i in range(capacity)
        ]

    def push(self, entry: WriteBufferEntry) -> None:
        if self.full:
            raise RuntimeError("write buffer overflow: drain before pushing")
        used = self.used
        i = 0
        while used[i]:
            i += 1
        self.pblocks[i] = entry.pblock
        self.versions[i] = entry.version
        self.swapped[i] = 1 if entry.swapped else 0
        used[i] = 1
        self._entries.append(self._views[i])
        self.stats.add("pushes")
        if entry.swapped:
            self.stats.add("swapped_pushes")

    def pop_oldest(self) -> WriteBufferEntry:
        view = self._entries.popleft()
        self.stats.add("retires")
        out = WriteBufferEntry(view.pblock, view.version, view.swapped)
        self.used[view._i] = 0
        return out

    def remove(self, pblock: int) -> WriteBufferEntry | None:
        for i, view in enumerate(self._entries):
            if view.pblock == pblock:
                del self._entries[i]
                self.stats.add("removals")
                out = WriteBufferEntry(view.pblock, view.version, view.swapped)
                self.used[view._i] = 0
                return out
        return None

    def restore_state(self, state: dict) -> None:
        self._entries.clear()
        self.used[:] = bytes(len(self.used))
        for i, (pblock, version, swapped) in enumerate(state["entries"]):
            self.pblocks[i] = pblock
            self.versions[i] = version
            self.swapped[i] = 1 if swapped else 0
            self.used[i] = 1
            self._entries.append(self._views[i])
        self.stats.restore_state(state["stats"])


# -- the hierarchy -------------------------------------------------------------


class SoAHierarchy(TwoLevelHierarchy):
    """A :class:`TwoLevelHierarchy` with array-backed components.

    The constructor runs the parent's setup (bus attachment, stats,
    hot-path aliases) and then swaps in the SoA TLB, level-1 caches,
    R-cache and write buffer.  Because the replacements subclass the
    originals and present identical interfaces, every scalar protocol
    method — and the checker, checkpointer and model checker with
    them — runs unchanged; only :func:`run_soa` exploits the arrays.
    """

    __slots__ = ()

    def __init__(
        self,
        config: Any,
        layout: Any,
        bus: Any,
        next_version: Any = None,
        tlb_entries: int = 64,
        tlb_associativity: int = 4,
        drain_period: int = 4,
        seed: int = 0,
    ) -> None:
        super().__init__(
            config,
            layout,
            bus,
            next_version=next_version,
            tlb_entries=tlb_entries,
            tlb_associativity=tlb_associativity,
            drain_period=drain_period,
            seed=seed,
        )
        self.tlb = SoATLB(layout, tlb_entries, tlb_associativity)
        if config.split_l1:
            half = config.l1_half()
            self._l1s = [
                SoAL1Cache(half, 0, "L1-I", config.l1_replacement, seed),
                SoAL1Cache(half, 1, "L1-D", config.l1_replacement, seed + 1),
            ]
        else:
            self._l1s = [
                SoAL1Cache(config.l1, 0, "L1", config.l1_replacement, seed)
            ]
        self.rcache = SoARCache(
            config.l2,
            config.subentries_per_l2_block,
            config.l2_replacement,
            seed + 2,
        )
        self.write_buffer = SoAWriteBuffer(config.write_buffer_capacity)
        self._wb_entries = self.write_buffer._entries
        self._split = len(self._l1s) == 2

    def clear_change_logs(self) -> None:
        """Drop accumulated dirty/eviction logs.

        The logs only carry information while :func:`run_soa` is
        consuming them; long object-path runs (guarded replay, model
        checking) would otherwise grow them without bound.
        """
        for l1 in self._l1s:
            del l1.dirty_log[:]
        del self.tlb.evict_log[:]


# -- the fast replay loop ------------------------------------------------------


def _walk_chunk(
    s,
    e,
    code_l,
    sb_l,
    tg_l,
    w_l,
    ts_l,
    tkey_l,
    off_l,
    cpu_l,
    kc_l,
    refs_l,
    cnt_l,
    acc,
    tacc,
    vn,
    ticks,
    tags_a,
    flags_a,
    vers_a,
    ts_a,
    pols,
    tsets,
    wbs,
    drains,
    fms,
    esc,
    cs,
    tmget,
    tfrs,
    evls,
    dp,
    assoc,
    multi,
    wt,
    rr,
    split,
    pshift,
    psize,
    bbits,
    sbits,
    smask,
):
    """Commit one classified chunk (trace indices ``s..e``).

    This is the per-reference hot loop: RPL005 requires that it
    perform no attribute lookups and allocate no containers.  All
    object work happens through the prebound closures ``esc`` (escape
    one reference to the scalar protocol path), ``cs`` (context
    switch), and ``drains[c]`` (drain one write-buffer entry).

    ``mut`` tracks whether any scalar handler has run since the chunk
    was classified.  While False, the vectorized verdicts are exact.
    Once True, pure-looking references are revalidated against the
    live arrays: a cheap taint-set membership test first (scalar
    handlers report every level-1 slot they touch), then a way scan
    only for references whose set was actually touched.  Physically
    indexed level-1 references additionally recheck TLB residency via
    the slot map once any eviction has been logged.
    """
    mut = False
    i = -1
    for j in range(s, e):
        i += 1
        code = code_l[i]
        if code >= 3:
            if code == 3:
                cs(j)
                mut = True
            continue
        c = cpu_l[j]
        k = kc_l[j]
        if split and k:
            cl = c + c + 1
        elif split:
            cl = c + c
        else:
            cl = c
        slot = -1
        if not mut:
            if not code:
                if fms is None or not fms[c](j, k):
                    esc(j)
                mut = True
                continue
            sb = sb_l[i]
            w = w_l[i]
            g = sb + w
            if rr:
                slot = ts_l[i]
        else:
            if wt and k == 2:
                esc(j)
                continue
            if rr:
                if evls[c]:
                    slot = tmget[c](tkey_l[i], -1)
                elif code:
                    slot = ts_l[i]
                else:
                    slot = ts_l[i]
                    if slot < 0:
                        slot = tmget[c](tkey_l[i], -1)
                if slot < 0:
                    if fms is None or not fms[c](j, k):
                        esc(j)
                    continue
                fr = tfrs[c][slot]
                if pshift >= 0:
                    pb = (fr << pshift) | off_l[i]
                else:
                    pb = fr * psize + off_l[i]
                bn = pb >> bbits
                tg = bn >> sbits
                sb = (bn & smask) * assoc
            else:
                sb = sb_l[i]
                tg = tg_l[i]
            if code and sb not in tsets[cl]:
                w = w_l[i]
                g = sb + w
            else:
                fa = flags_a[cl]
                ta = tags_a[cl]
                g = -1
                w = 0
                f = 0
                while w < assoc:
                    gi = sb + w
                    f = fa[gi]
                    if (f & 1) and ta[gi] == tg:
                        g = gi
                        break
                    w += 1
                if g < 0:
                    if fms is None or not fms[c](j, k):
                        esc(j)
                    continue
                if k == 2 and not (f & 4):
                    if fms is None or not fms[c](j, k):
                        esc(j)
                    continue
        refs_l[c] += 1
        cd = cnt_l[c] - 1
        if cd:
            cnt_l[c] = cd
        else:
            cnt_l[c] = dp
            if wbs[c]:
                drains[c]()
        if k == 2:
            v = vn[0]
            vn[0] = v + 1
            vers_a[cl][g] = v
            acc[c + c + c + 2] += 1
        else:
            acc[c + c + c + k] += 1
        if multi:
            pols[cl](sb // assoc, w)
        if rr:
            ts_a[c][slot] = ticks[c]
            ticks[c] += 1
            tacc[c] += 1


def run_soa(machine: Any, records: Any) -> int:
    """Replay *records* through a machine of :class:`SoAHierarchy`.

    Returns the number of memory references processed (CSWITCH/CALL
    records excluded), exactly like ``Multiprocessor._run_fast``.
    """
    hiers = machine.hierarchies
    n_cpus = len(hiers)
    for h in hiers:
        if not isinstance(h, SoAHierarchy):
            raise TypeError("run_soa requires SoAHierarchy instances")
    vc = machine.version_counter
    h0 = hiers[0]
    rr = not h0._virtual_l1
    pid_tags = h0._pid_tags
    wt = h0._write_through
    split = h0._split
    n_l1 = 2 if split else 1
    dp = h0.drain_period
    if any(h.drain_period != dp for h in hiers):
        raise ValueError("run_soa requires a uniform drain period")
    cfg = h0._l1s[0].config
    assoc = cfg.associativity
    multi = assoc > 1
    bbits = cfg.block_bits
    sbits = cfg.set_bits
    smask = cfg.set_mask
    tlb0 = h0.tlb
    psize = tlb0.layout.page_size
    pshift = tlb0._page_shift if tlb0._page_shift is not None else -1
    pmask = tlb0._page_mask
    tlb_assoc = tlb0.associativity
    tlb_sets = tlb0.n_sets

    # Flat views of every hierarchy's hot state, indexed by CPU (or by
    # cpu * n_l1 + level for the per-L1 groups).
    tags_a = []
    flags_a = []
    vers_a = []
    rps_a = []
    rpw_a = []
    rpb_a = []
    dls = []
    pols = []
    insts = []
    chs = []
    tsets: list[set[int]] = []
    for h in hiers:
        for l1 in h._l1s:
            tags_a.append(l1.tags)
            flags_a.append(l1.flags)
            vers_a.append(l1.versions)
            rps_a.append(l1.rp_set)
            rpw_a.append(l1.rp_way)
            rpb_a.append(l1.rp_sub)
            dls.append(l1.dirty_log)
            pols.append(l1.store.policy.on_access)
            insts.append(l1.store.policy.on_install)
            chs.append(l1.store.policy.choose)
            tsets.append(set())
    n_groups = len(tags_a)
    # Zero-copy numpy views over the scalar buffers, for the vectorized
    # classifier only (the walk reads/writes the buffers directly —
    # scalar indexing on bytearray/array is ~2x faster than on ndarray).
    tags_np = [np.frombuffer(a, dtype=np.int64) for a in tags_a]
    flags_np = [np.frombuffer(a, dtype=np.uint8) for a in flags_a]
    tlbs = [h.tlb for h in hiers]
    tpid_a = [np.frombuffer(t.pids, dtype=np.int64) for t in tlbs]
    tvpage_a = [np.frombuffer(t.vpages, dtype=np.int64) for t in tlbs]
    tframe_a = [np.frombuffer(t.frames, dtype=np.int64) for t in tlbs]
    tvalid_a = [np.frombuffer(t.valid, dtype=np.uint8) for t in tlbs]
    ts_a = [t.ts for t in tlbs]
    tfrs = [t._frames_py for t in tlbs]
    tmget = [t._map.get for t in tlbs]
    evls = [t.evict_log for t in tlbs]
    ticks = [t._tick for t in tlbs]
    wbs = [h._wb_entries for h in hiers]
    refs_l = [h._refs for h in hiers]
    cnt_l = [h._drain_countdown for h in hiers]
    vn = [vc.next_value]
    acc = [0] * (n_cpus * 3)
    tacc = [0] * n_cpus
    counts_l = [h._counts for h in hiers]
    tlb_counts = [t._counts for t in tlbs]
    refs0 = sum(refs_l)
    for log in dls:
        del log[:]
    for log in evls:
        del log[:]

    # Current batch of converted trace fields (rebound per batch; the
    # closures below see the rebinding through the shared cells).
    cpu_l: list[int] = []
    pid_l: list[int] = []
    kc_l: list[int] = []
    vad_l: list[int] = []
    cpu_np = pid_np = kind_np = vad_np = None

    def _merge_taint() -> None:
        for t in range(n_groups):
            log = dls[t]
            if log:
                tset = tsets[t]
                for g in log:
                    tset.add(g - g % assoc)
                del log[:]

    def esc(j: int) -> None:
        """Escape one reference to the scalar protocol path."""
        c = cpu_l[j]
        h = hiers[c]
        h._refs = refs_l[c]
        h._drain_countdown = cnt_l[c]
        tlbs[c]._tick = ticks[c]
        vc.next_value = vn[0]
        h.access(pid_l[j], vad_l[j], _KIND_OBJS[kc_l[j]])
        refs_l[c] = h._refs
        cnt_l[c] = h._drain_countdown
        ticks[c] = tlbs[c]._tick
        vn[0] = vc.next_value
        _merge_taint()

    def cs(j: int) -> None:
        c = cpu_l[j]
        h = hiers[c]
        h._refs = refs_l[c]
        h.context_switch(pid_l[j])
        _merge_taint()

    def _mk_drain(c: int, h: Any):
        def _drain() -> None:
            h._refs = refs_l[c]
            h._drain_one()

        return _drain

    drains = [_mk_drain(c, h) for c, h in enumerate(hiers)]

    # Native scalar miss handlers.  The object protocol path costs
    # tens of microseconds per escape (view properties, AccessResult
    # allocation, enum dispatch); the three dominant miss shapes — a
    # clean write hit on a private block, a level-2 hit filling level
    # 1, and a level-2 miss with no remote copies — are re-implemented
    # directly over the arrays.  A handler first *screens* the access
    # with zero side effects and returns False (caller escapes) for
    # anything rare or shared: synonyms (inclusion bit), write-buffer
    # interactions (buffer bit), shared-write invalidations, any peer
    # holding the missing level-2 block, and every configuration the
    # screen does not model (write-through, write-update, no
    # inclusion, bus observers, event tracers).  Once the screen
    # passes, the commit phase replicates ``TwoLevelHierarchy.access``
    # mutation-for-mutation and counter-for-counter.
    native = (
        h0._inclusion
        and not wt
        and not h0._update_protocol
        and machine.bus.observer is None
        and all(
            h._tr_syn is None
            and h._tr_incl is None
            and h._tr_wb is None
            and h._tr_coh is None
            for h in hiers
        )
    )

    def _mk_fmiss(c: int, h: Any):
        t = tlbs[c]
        tmg = tmget[c]
        tfr_py = tfrs[c]
        tsb = ts_a[c]
        ttr = t.translate
        lay_tr = t.layout.translate
        rc = h.rcache
        rtg = rc.tags
        rfl = rc.flags
        sfl = rc.sub_flags
        svr = rc.sub_versions
        vpc = rc.vp_ci
        vps = rc.vp_set
        vpw = rc.vp_way
        cfg2 = rc.config
        assoc2 = cfg2.associativity
        multi2 = assoc2 > 1
        bbits2 = cfg2.block_bits
        sbits2 = cfg2.set_bits
        smask2 = cfg2.set_mask
        n_sub = rc.n_subentries
        sub_bits = h._sub_bits
        nsub_mask = ~(n_sub - 1)
        rpol = rc.store.policy
        r_onacc = rpol.on_access
        r_onins = rpol.on_install
        r_choose = rpol.choose
        rng2 = range(assoc2)
        rng1 = range(assoc)
        base_g = c * n_l1
        gtg = tags_a[base_g : base_g + n_l1]
        gfl = flags_a[base_g : base_g + n_l1]
        gvr = vers_a[base_g : base_g + n_l1]
        grs = rps_a[base_g : base_g + n_l1]
        grw = rpw_a[base_g : base_g + n_l1]
        grb = rpb_a[base_g : base_g + n_l1]
        gacc = pols[base_g : base_g + n_l1]
        gins = insts[base_g : base_g + n_l1]
        gch = chs[base_g : base_g + n_l1]
        gts = tsets[base_g : base_g + n_l1]
        counts_c = counts_l[c]
        wb = h.write_buffer
        wpb = wb.pblocks
        wvr = wb.versions
        wsw = wb.swapped
        wused = wb.used
        wviews = wb._views
        wdeq = wbs[c]
        wcap = wb.capacity
        wb_counts = wb.stats._counts
        hist_rec = h.stats.writeback_intervals.record
        bus = h.bus
        bus_counts = bus.stats._counts
        mem = bus.memory
        mem_counts = mem.stats._counts
        mv = mem._versions
        mvget = mv.get
        peer_rs = [
            (p.rcache.tags, p.rcache.flags)
            for pi, p in enumerate(hiers)
            if pi != c
        ]
        nsm1 = n_sub - 1

        def drain_n() -> None:
            # ``TwoLevelHierarchy._drain_one`` over the arrays.  Only
            # reachable with inclusion held (the native gate), so the
            # no-parent case is the same protocol error it is there.
            vw = wdeq.popleft()
            ii = vw._i
            wb_counts["retires"] += 1
            pb = wpb[ii]
            ver = wvr[ii]
            wused[ii] = 0
            bn2 = (pb << sub_bits) >> bbits2
            rb = (bn2 & smask2) * assoc2
            tg2 = bn2 >> sbits2
            w2 = 0
            while w2 < assoc2:
                gi2 = rb + w2
                if (rfl[gi2] & 1) and rtg[gi2] == tg2:
                    sg2 = gi2 * n_sub + (pb & nsm1)
                    sf2 = sfl[sg2]
                    if sf2 & _S_VALID:
                        if ver >= svr[sg2]:
                            sfl[sg2] = (sf2 & ~_S_BUF) | _S_RDIRTY
                            svr[sg2] = ver
                        else:
                            sfl[sg2] = sf2 & ~_S_BUF
                        return
                    break
                w2 += 1
            raise ProtocolError(
                "write-buffer entry has no level-2 parent",
                access_index=refs_l[c],
                pblock=pb,
            )

        def fmiss(j: int, k: int) -> bool:
            pid = pid_l[j]
            vad = vad_l[j]
            lv = 1 if (split and k) else 0
            fl = gfl[lv]
            tgs = gtg[lv]
            # -- screen (no side effects until every bail is resolved) --
            if rr:
                # Peek the translation: resident slot map first, then
                # the (pure) layout walk.  The commit phase re-runs the
                # real translate for its counter/LRU/refill effects.
                if pshift >= 0:
                    vpage = vad >> pshift
                    off = vad & pmask
                else:
                    vpage = vad // psize
                    off = vad - vpage * psize
                sl = tmg((pid << _PID_SHIFT) | vpage, -1)
                if sl >= 0:
                    fr = tfr_py[sl]
                else:
                    fr = lay_tr(pid, vpage * psize) // psize
                if pshift >= 0:
                    paddr = (fr << pshift) | off
                else:
                    paddr = fr * psize + off
                key = paddr
            else:
                paddr = -1
                key = (vad | (pid << _PID_SHIFT)) if pid_tags else vad
            bn = key >> bbits
            sb = (bn & smask) * assoc
            tg = bn >> sbits
            g = -1
            f = 0
            w = 0
            while w < assoc:
                gi = sb + w
                f = fl[gi]
                if (f & 1) and tgs[gi] == tg:
                    g = gi
                    break
                w += 1
            if g >= 0:
                # Level-1 hit: only the clean-write shape is native
                # (reads that land here were bailed for other reasons).
                if k != 2 or (f & 4):
                    return False
                rs = grs[lv][g]
                if rs < 0:
                    return False
                sg = (rs * assoc2 + grw[lv][g]) * n_sub + grb[lv][g]
                if sfl[sg] & _S_SHARED:
                    return False
                # -- commit: clean write hit on a private block --
                refs_l[c] += 1
                cd = cnt_l[c] - 1
                if cd:
                    cnt_l[c] = cd
                else:
                    cnt_l[c] = dp
                    if wdeq:
                        drain_n()
                if rr:
                    if sl >= 0:
                        tsb[sl] = ticks[c]
                        ticks[c] += 1
                        tacc[c] += 1
                    else:
                        t._tick = ticks[c]
                        ttr(pid, vad)
                        ticks[c] = t._tick
                acc[c + c + c + 2] += 1
                if multi:
                    gacc[lv](sb // assoc, g - sb)
                v = vn[0]
                vn[0] = v + 1
                fl[g] = f | 4
                sfl[sg] |= _S_VDIRTY
                gvr[lv][g] = v
                gts[lv].add(sb)
                return True
            # Level-1 miss.
            if paddr < 0:
                if pshift >= 0:
                    vpage = vad >> pshift
                    off = vad & pmask
                else:
                    vpage = vad // psize
                    off = vad - vpage * psize
                sl = tmg((pid << _PID_SHIFT) | vpage, -1)
                if sl >= 0:
                    fr = tfr_py[sl]
                else:
                    fr = lay_tr(pid, vpage * psize) // psize
                if pshift >= 0:
                    paddr = (fr << pshift) | off
                else:
                    paddr = fr * psize + off
            bn2 = paddr >> bbits2
            st2 = bn2 & smask2
            tg2 = bn2 >> sbits2
            rb = st2 * assoc2
            si = (paddr >> sub_bits) & (n_sub - 1)
            rg = -1
            w2 = 0
            while w2 < assoc2:
                gi2 = rb + w2
                if (rfl[gi2] & 1) and rtg[gi2] == tg2:
                    rg = gi2
                    break
                w2 += 1
            l2_hit = False
            if rg >= 0:
                sf = sfl[rg * n_sub + si]
                if sf & _S_VALID:
                    if sf & (_S_INCL | _S_BUF):
                        return False
                    if k == 2 and (sf & _S_SHARED):
                        return False
                    l2_hit = True
            if not l2_hit:
                # A fill must arrive private and read from memory: any
                # peer holding the level-2 block (any valid subentry
                # replies has-copy to some sub-block's read) bails.
                for prtg, prfl in peer_rs:
                    pw = 0
                    while pw < assoc2:
                        pgi = rb + pw
                        if (prfl[pgi] & 1) and prtg[pgi] == tg2:
                            return False
                        pw += 1
            # -- commit --
            refs_l[c] += 1
            cd = cnt_l[c] - 1
            if cd:
                cnt_l[c] = cd
            else:
                cnt_l[c] = dp
                if wdeq:
                    drain_n()
            if sl >= 0:
                tsb[sl] = ticks[c]
                ticks[c] += 1
                tacc[c] += 1
            else:
                t._tick = ticks[c]
                ttr(pid, vad)
                ticks[c] = t._tick
            counts_c[_MISS_KEYS[k]] += 1
            if l2_hit:
                counts_c["l2_hits"] += 1
                if multi2:
                    r_onacc(st2, rg - rb)
                sg = rg * n_sub + si
            else:
                counts_c["l2_misses"] += 1
                rvg = -1
                w2 = 0
                while w2 < assoc2:
                    gi2 = rb + w2
                    if not (rfl[gi2] & 3):
                        rvg = gi2
                        break
                    w2 += 1
                if rvg < 0:
                    if not multi2:
                        rvg = rb
                    else:
                        cands = []
                        w2 = 0
                        while w2 < assoc2:
                            sbase2 = (rb + w2) * n_sub
                            i2 = 0
                            while i2 < n_sub:
                                if sfl[sbase2 + i2] & 6:  # _S_INCL | _S_BUF
                                    break
                                i2 += 1
                            else:
                                cands.append(w2)
                            w2 += 1
                        rvg = rb + r_choose(st2, cands if cands else rng2)
                rf = rfl[rvg]
                sbase2 = rvg * n_sub
                if rf & 3:
                    counts_c["l2_evictions"] += 1
                    vbase = (((rtg[rvg] << sbits2) | st2) << bbits2) >> sub_bits
                    i2 = 0
                    while i2 < n_sub:
                        sg2 = sbase2 + i2
                        sf2 = sfl[sg2]
                        if sf2 & _S_VALID:
                            pb2 = vbase + i2
                            if sf2 & _S_BUF:
                                entv = -1
                                di = 0
                                nd = len(wdeq)
                                while di < nd:
                                    ii = wdeq[di]._i
                                    if wpb[ii] == pb2:
                                        del wdeq[di]
                                        wb_counts["removals"] += 1
                                        entv = wvr[ii]
                                        wused[ii] = 0
                                        break
                                    di += 1
                                if entv < 0:
                                    raise ProtocolError(
                                        "buffer bit set but no write-buffer"
                                        " entry",
                                        access_index=refs_l[c],
                                        pblock=pb2,
                                    )
                                bus_counts["write_back"] += 1
                                mem_counts["writes"] += 1
                                mv[pb2] = entv
                            if sf2 & _S_INCL:
                                ci = vpc[sg2]
                                if ci < 0:
                                    raise InclusionError(
                                        "inclusion bit set without a"
                                        " v-pointer",
                                        access_index=refs_l[c],
                                        pblock=pb2,
                                    )
                                counts_c["l1_inclusion_invalidations"] += 1
                                cfl = gfl[ci]
                                cgi = vps[sg2] * assoc + vpw[sg2]
                                cf = cfl[cgi]
                                if cf & 4:
                                    bus_counts["write_back"] += 1
                                    mem_counts["writes"] += 1
                                    mv[pb2] = gvr[ci][cgi]
                                elif (sf2 & _S_RDIRTY) and not (sf2 & _S_BUF):
                                    bus_counts["write_back"] += 1
                                    mem_counts["writes"] += 1
                                    mv[pb2] = svr[sg2]
                                cfl[cgi] = cf & 0xF8
                                gts[ci].add(cgi - cgi % assoc)
                            elif (sf2 & _S_RDIRTY) and not (sf2 & _S_BUF):
                                bus_counts["write_back"] += 1
                                mem_counts["writes"] += 1
                                mv[pb2] = svr[sg2]
                        i2 += 1
                    rfl[rvg] = 0
                # Fill every subentry from memory (no peer copies).
                base_bn = (paddr >> sub_bits) & nsub_mask
                i2 = 0
                while i2 < n_sub:
                    pb2 = base_bn + i2
                    if k == 2 and i2 == si:
                        bus_counts["read_modified_write"] += 1
                    else:
                        bus_counts["read_miss"] += 1
                    mem_counts["reads"] += 1
                    sg2 = sbase2 + i2
                    sfl[sg2] = 1
                    vpc[sg2] = -1
                    svr[sg2] = mvget(pb2, 0)
                    i2 += 1
                rtg[rvg] = tg2
                rfl[rvg] = 1
                if multi2:
                    r_onins(st2, rvg - rb)
                rg = rvg
                sg = sbase2 + si
            # Place in level 1 (plain supply; synonym and buffer paths
            # were screened out, and a fresh fill arrives with both
            # inclusion and buffer bits clear).
            vg = -1
            w = 0
            while w < assoc:
                gi = sb + w
                if not (fl[gi] & 3):
                    vg = gi
                    break
                w += 1
            if vg < 0:
                if not multi:
                    vg = sb
                else:
                    vg = sb + gch[lv](sb // assoc, rng1)
            f = fl[vg]
            if f & 3:
                counts_c["l1_evictions"] += 1
                grs_l = grs[lv]
                grw_l = grw[lv]
                grb_l = grb[lv]
                vrs = grs_l[vg]
                vrg = vrs * assoc2 + grw_l[vg]
                vsg = vrg * n_sub + grb_l[vg]
                if f & 4:
                    vpb = (
                        (((rtg[vrg] << sbits2) | vrs) << bbits2) >> sub_bits
                    ) + grb_l[vg]
                    if len(wdeq) >= wcap:
                        counts_c["writeback_stalls"] += 1
                        drain_n()
                    ii = 0
                    while wused[ii]:
                        ii += 1
                    wpb[ii] = vpb
                    wvr[ii] = gvr[lv][vg]
                    swp = 1 if (f & 2) else 0
                    wsw[ii] = swp
                    wused[ii] = 1
                    wdeq.append(wviews[ii])
                    wb_counts["pushes"] += 1
                    counts_c["writebacks"] += 1
                    if swp:
                        wb_counts["swapped_pushes"] += 1
                        counts_c["swapped_writebacks"] += 1
                    lw = h._last_writeback_ref
                    r_now = refs_l[c]
                    if lw is not None:
                        iv = r_now - lw
                        if iv >= 1:
                            hist_rec(iv)
                    h._last_writeback_ref = r_now
                    x = sfl[vsg]
                    sfl[vsg] = (x | _S_BUF) & ~_S_VDIRTY
                sfl[vsg] &= ~_S_INCL
                vpc[vsg] = -1
                fl[vg] = 0
            tgs[vg] = tg
            gvr[lv][vg] = svr[sg]
            grs[lv][vg] = st2
            grw[lv][vg] = rg - rb
            grb[lv][vg] = si
            fl[vg] = 1
            sfl[sg] |= _S_INCL
            vpc[sg] = lv
            vps[sg] = sb // assoc
            vpw[sg] = vg - sb
            if multi:
                gins[lv](sb // assoc, vg - sb)
            if k == 2:
                v = vn[0]
                vn[0] = v + 1
                fl[vg] = 5
                sfl[sg] |= _S_VDIRTY
                gvr[lv][vg] = v
            gts[lv].add(sb)
            return True

        return fmiss, drain_n

    if native:
        fms = []
        for c, h in enumerate(hiers):
            fm, dn = _mk_fmiss(c, h)
            fms.append(fm)
            drains[c] = dn
    else:
        fms = None

    def _flush_counters() -> None:
        # Deferred hit counters; only nonzero deltas are applied so
        # the engines mint exactly the same counter keys.
        for c in range(n_cpus):
            counts = counts_l[c]
            base = c * 3
            for k in range(3):
                delta = acc[base + k]
                if delta:
                    counts[_HIT_KEYS[k]] += delta
                    acc[base + k] = 0
            delta = tacc[c]
            if delta:
                tlb_counts[c]["hits"] += delta
                tacc[c] = 0

    def _classify(s: int, e: int):
        """Vectorized verdicts for trace slice ``s..e`` of the batch."""
        ka = kind_np[s:e]
        ca = cpu_np[s:e]
        va = vad_np[s:e]
        pa = pid_np[s:e]
        m = e - s
        code = np.where(ka >= 3, ka, 0)
        sb = np.zeros(m, dtype=np.int64)
        tg = np.zeros(m, dtype=np.int64)
        wy = np.zeros(m, dtype=np.int64)
        if rr:
            tsl = np.full(m, -1, dtype=np.int64)
            tkey = np.zeros(m, dtype=np.int64)
            off = np.zeros(m, dtype=np.int64)
        mem = ka < 3
        for c in range(n_cpus):
            idx = np.nonzero(mem & (ca == c))[0]
            if idx.size == 0:
                continue
            v = va[idx]
            p = pa[idx]
            k = ka[idx]
            if rr:
                if pshift >= 0:
                    vpage = v >> pshift
                    o = v & pmask
                else:
                    vpage = v // psize
                    o = v - vpage * psize
                tbase = (vpage % tlb_sets) * tlb_assoc
                thit = np.zeros(idx.size, dtype=bool)
                tfr = np.zeros(idx.size, dtype=np.int64)
                tsl_c = np.full(idx.size, -1, dtype=np.int64)
                tp = tpid_a[c]
                tv = tvpage_a[c]
                tf = tframe_a[c]
                tva = tvalid_a[c]
                for w in range(tlb_assoc):
                    sl = tbase + w
                    hw = (tva[sl] != 0) & (tp[sl] == p) & (tv[sl] == vpage)
                    new = hw & ~thit
                    tfr = np.where(new, tf[sl], tfr)
                    tsl_c = np.where(new, sl, tsl_c)
                    thit |= hw
                if pshift >= 0:
                    key = (tfr << pshift) | o
                else:
                    key = tfr * psize + o
                tkey[idx] = (p << _PID_SHIFT) | vpage
                off[idx] = o
                tsl[idx] = tsl_c
            else:
                key = (v | (p << _PID_SHIFT)) if pid_tags else v
                thit = None
            bn = key >> bbits
            st = bn & smask
            t = bn >> sbits
            sbase = st * assoc
            sb[idx] = sbase
            tg[idx] = t
            for lv in range(n_l1):
                if split:
                    ls = np.nonzero((k != 0) == bool(lv))[0]
                    if ls.size == 0:
                        continue
                else:
                    ls = np.arange(idx.size)
                sb_g = sbase[ls]
                tg_g = t[ls]
                fa = flags_np[c * n_l1 + lv]
                ta = tags_np[c * n_l1 + lv]
                hit = np.zeros(ls.size, dtype=bool)
                dty = np.zeros(ls.size, dtype=bool)
                wv = np.zeros(ls.size, dtype=np.int64)
                for w in range(assoc):
                    gi = sb_g + w
                    f = fa[gi]
                    hw = ((f & 1) != 0) & (ta[gi] == tg_g)
                    new = hw & ~hit
                    if w:
                        wv = np.where(new, w, wv)
                    dty = np.where(new, (f & 4) != 0, dty)
                    hit |= hw
                isw = k[ls] == 2
                if wt:
                    ok = hit & ~isw
                else:
                    ok = hit & (~isw | dty)
                if thit is not None:
                    ok &= thit[ls]
                tgt = idx[ls]
                code[tgt] = np.where(ok, np.where(isw, 2, 1), 0)
                wy[tgt] = wv
        if rr:
            return (
                code.tolist(),
                sb.tolist(),
                tg.tolist(),
                wy.tolist(),
                tsl.tolist(),
                tkey.tolist(),
                off.tolist(),
            )
        empty: list[int] = []
        return (
            code.tolist(),
            sb.tolist(),
            tg.tolist(),
            wy.tolist(),
            empty,
            empty,
            empty,
        )

    k_i = RefKind.INSTR
    k_r = RefKind.READ
    k_w = RefKind.WRITE
    k_cs = RefKind.CSWITCH

    def _batch_source():
        # Chunked streams (repro.trace.stream) already carry each
        # batch in this engine's own vector layout — same int64
        # dtype, same 0-4 kind codes — so their arrays feed the
        # classifier directly and no TraceRecord is ever built.
        chunks = getattr(records, "chunks", None)
        if chunks is not None:
            for chunk in chunks():
                yield (
                    chunk.cpu.tolist(),
                    chunk.pid.tolist(),
                    chunk.vaddr.tolist(),
                    chunk.kind.tolist(),
                    chunk.cpu,
                    chunk.pid,
                    chunk.kind,
                    chunk.vaddr,
                )
            return
        it = iter(records)
        while True:
            batch = list(islice(it, _BATCH))
            if not batch:
                return
            c_l = [r.cpu for r in batch]
            p_l = [r.pid for r in batch]
            v_l = [r.vaddr for r in batch]
            # Identity compares beat the enum-dict lookup: ``RefKind``
            # members hash through ``Enum.__hash__`` (a Python call).
            k_l = [
                0
                if (k := r.kind) is k_i
                else 1
                if k is k_r
                else 2
                if k is k_w
                else 3
                if k is k_cs
                else 4
                for r in batch
            ]
            yield (
                c_l,
                p_l,
                v_l,
                k_l,
                np.asarray(c_l, dtype=np.int64),
                np.asarray(p_l, dtype=np.int64),
                np.asarray(k_l, dtype=np.int64),
                np.asarray(v_l, dtype=np.int64),
            )
            if len(batch) < _BATCH:
                return

    # The names below are the cells _classify / esc / cs close over:
    # the unpacking must happen in run_soa's own body so each batch
    # rebinds those cells.
    for cpu_l, pid_l, vad_l, kc_l, cpu_np, pid_np, kind_np, vad_np in (
        _batch_source()
    ):
        count = len(cpu_l)
        pos = 0
        while pos < count:
            end = pos + _CHUNK
            if end > count:
                end = count
            code_l, sb_l, tg_l, w_l, ts_l, tkey_l, off_l = _classify(pos, end)
            for tset in tsets:
                tset.clear()
            for log in evls:
                del log[:]
            _walk_chunk(
                pos,
                end,
                code_l,
                sb_l,
                tg_l,
                w_l,
                ts_l,
                tkey_l,
                off_l,
                cpu_l,
                kc_l,
                refs_l,
                cnt_l,
                acc,
                tacc,
                vn,
                ticks,
                tags_a,
                flags_a,
                vers_a,
                ts_a,
                pols,
                tsets,
                wbs,
                drains,
                fms,
                esc,
                cs,
                tmget,
                tfrs,
                evls,
                dp,
                assoc,
                multi,
                wt,
                rr,
                split,
                pshift,
                psize,
                bbits,
                sbits,
                smask,
            )
            _flush_counters()
            pos = end

    for c, h in enumerate(hiers):
        h._refs = refs_l[c]
        h._drain_countdown = cnt_l[c]
        tlbs[c]._tick = ticks[c]
    vc.next_value = vn[0]
    _flush_counters()
    for log in dls:
        del log[:]
    for log in evls:
        del log[:]
    return sum(refs_l) - refs0
