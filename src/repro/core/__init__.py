"""Struct-of-arrays replay core (the ``--engine soa`` backend).

``repro.core.soa`` re-implements the replay hot path over flat numpy
arrays while keeping the object model's protocol code — and therefore
its exact semantics — for everything that is not a pure level-1 hit.
See DESIGN.md §13 for the layout and the chunk-boundary rules.
"""

from .soa import (
    SoAHierarchy,
    SoAL1Cache,
    SoARCache,
    SoATLB,
    SoAWriteBuffer,
    run_soa,
)

__all__ = [
    "SoAHierarchy",
    "SoAL1Cache",
    "SoARCache",
    "SoATLB",
    "SoAWriteBuffer",
    "run_soa",
]
