"""repro — a two-level virtual-real cache hierarchy simulator.

A from-scratch reproduction of *Organization and Performance of a
Two-Level Virtual-Real Cache Hierarchy* (Wen-Hann Wang, Jean-Loup
Baer and Henry M. Levy, ISCA 1989): a virtually-addressed first-level
cache backed by a physically-addressed second-level cache that solves
the synonym problem, preserves multilevel inclusion and shields the
first level from bus coherence traffic.

Quick start::

    from repro import (
        HierarchyConfig, HierarchyKind, Multiprocessor, make_workload
    )

    workload = make_workload("pops", scale=0.02)
    config = HierarchyConfig.sized("16K", "256K", kind=HierarchyKind.VR)
    machine = Multiprocessor(workload.layout, n_cpus=4, config=config)
    result = machine.run(workload)
    print(f"h1={result.h1:.3f} h2={result.h2:.3f}")

See ``repro.experiments`` to regenerate every table and figure of the
paper's evaluation section.
"""

from .cache import CacheConfig
from .coherence import Bus, BusOp, MainMemory, ShareState
from .hierarchy import (
    HierarchyConfig,
    HierarchyKind,
    HierarchyStats,
    Outcome,
    Protocol,
    SingleLevelCache,
    TwoLevelHierarchy,
)
from .mmu import MemoryLayout, TLB
from .perf import HitRatios, TimingParams, access_time, crossover_slowdown
from .system import DMAEngine, Multiprocessor, SimulationResult
from .trace import (
    RefKind,
    ReuseDistanceProfile,
    SyntheticWorkload,
    TraceRecord,
    WorkloadSpec,
    make_workload,
    profile_reuse_distances,
    workload_names,
)

__version__ = "1.0.0"

__all__ = [
    "Bus",
    "BusOp",
    "CacheConfig",
    "DMAEngine",
    "HierarchyConfig",
    "HierarchyKind",
    "HierarchyStats",
    "HitRatios",
    "MainMemory",
    "MemoryLayout",
    "Multiprocessor",
    "Outcome",
    "Protocol",
    "RefKind",
    "ReuseDistanceProfile",
    "ShareState",
    "SimulationResult",
    "SingleLevelCache",
    "SyntheticWorkload",
    "TLB",
    "TimingParams",
    "TraceRecord",
    "TwoLevelHierarchy",
    "WorkloadSpec",
    "access_time",
    "crossover_slowdown",
    "make_workload",
    "profile_reuse_distances",
    "workload_names",
    "__version__",
]
