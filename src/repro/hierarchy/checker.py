"""Invariant checkers for a running hierarchy.

These verify the structural invariants from DESIGN.md §5 — inclusion,
pointer consistency, the single-copy synonym rule and dirty-state
sanity — in two forms:

* **Incremental scans** (``scan_l2_set``, ``scan_l1_set``, …) examine
  one cache set at a time and return :class:`Violation` records
  instead of raising.  The runtime invariant guard
  (``repro.faults.guard``) calls these on the sets an access touched,
  every N references and at coherence-transaction boundaries, and
  feeds the results to its recovery policy.
* **Raising wrappers** (``check_pointer_consistency``, ``check_all``,
  …) sweep the whole hierarchy and raise :class:`InclusionError` /
  :class:`ProtocolError` on the first violation.  The test suite calls
  them between and after simulations.

Every scan is defensive: corrupted pointers (out-of-range sets, ways
or cache indices) are reported as violations, never allowed to escape
as :class:`IndexError` — a fault injector must not be able to crash
the checker that is supposed to catch it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import InclusionError, ProtocolError, TranslationError
from .config import HierarchyKind
from .l1 import L1Cache
from .rcache import RCacheBlock
from .twolevel import TwoLevelHierarchy


@dataclass(frozen=True)
class Violation:
    """One detected invariant violation.

    Attributes:
        kind: invariant family — "pointer", "buffer", "single-copy"
            or "tlb".
        site: structured location, one of
            ``("l2", set, way, sub_index)``,
            ``("l1", cache_index, set, way)``,
            ``("buffer", pblock)`` or ``("tlb", pid, vpage)``.
        message: human-readable description (stable wording relied on
            by the test suite).
    """

    kind: str
    site: tuple
    message: str


def _l1_slot_valid(hier: TwoLevelHierarchy, pointer: object) -> bool:
    """Whether *pointer* is a structurally dereferenceable v-pointer."""
    if not (isinstance(pointer, tuple) and len(pointer) == 3):
        return False
    cache_index, set_index, way = pointer
    if not 0 <= cache_index < len(hier.l1_caches):
        return False
    config = hier.l1_caches[cache_index].config
    return 0 <= set_index < config.n_sets and 0 <= way < config.associativity


def _r_slot_valid(hier: TwoLevelHierarchy, pointer: object) -> bool:
    """Whether *pointer* is a structurally dereferenceable r-pointer."""
    if not (isinstance(pointer, tuple) and len(pointer) == 3):
        return False
    set_index, way, sub_index = pointer
    config = hier.rcache.config
    return (
        0 <= set_index < config.n_sets
        and 0 <= way < config.associativity
        and 0 <= sub_index < hier.rcache.n_subentries
    )


# -- incremental scans (per set, non-raising) --------------------------------


def scan_l2_set(hier: TwoLevelHierarchy, set_index: int) -> list[Violation]:
    """Forward linkage of one level-2 set.

    Every subentry with the inclusion bit set must point at a present
    level-1 block whose r-pointer points back, with matching dirty
    bits.  Empty for non-inclusion hierarchies.
    """
    if hier.kind is HierarchyKind.RR_NO_INCLUSION:
        return []
    out: list[Violation] = []
    for rblock in hier.rcache.store.ways(set_index):
        for index, sub in enumerate(rblock.subentries):  # type: ignore[attr-defined]
            site = ("l2", set_index, rblock.way, index)
            if not sub.inclusion:
                if sub.valid and sub.vdirty:
                    # The snoop path dereferences the child whenever
                    # vdirty is set, inclusion bit or not — a vdirty
                    # claim without a linked child is a latent crash.
                    out.append(Violation(
                        "pointer", site,
                        f"vdirty set without inclusion at {rblock}[{index}]",
                    ))
                continue
            if not sub.valid:
                out.append(Violation(
                    "pointer", site,
                    f"inclusion bit set on invalid subentry {rblock}[{index}]",
                ))
                continue
            if sub.v_pointer is None:
                out.append(Violation(
                    "pointer", site,
                    f"inclusion bit set without v-pointer at {rblock}[{index}]",
                ))
                continue
            if not _l1_slot_valid(hier, sub.v_pointer):
                out.append(Violation(
                    "pointer", site,
                    f"v-pointer {sub.v_pointer} is out of range",
                ))
                continue
            child = hier.l1_caches[sub.v_pointer[0]].block_at(sub.v_pointer)
            if not child.present:
                out.append(Violation(
                    "pointer", site,
                    f"v-pointer {sub.v_pointer} names an empty level-1 slot",
                ))
                continue
            expected = (set_index, rblock.way, index)
            if (
                not isinstance(child.r_pointer, tuple)
                or tuple(child.r_pointer) != expected
            ):
                out.append(Violation(
                    "pointer", site,
                    f"r-pointer of {child!r} does not point back to {expected}",
                ))
                continue
            if sub.vdirty and not child.dirty:
                out.append(Violation(
                    "pointer", site,
                    f"vdirty set but child clean at {rblock}[{index}]",
                ))
            elif child.dirty and not sub.vdirty:
                out.append(Violation(
                    "pointer", site,
                    f"child dirty but vdirty clear at {rblock}[{index}]",
                ))
    return out


def scan_l1_set(
    hier: TwoLevelHierarchy, l1: L1Cache, set_index: int
) -> list[Violation]:
    """Reverse linkage of one level-1 set.

    Every present block must have a valid parent subentry with the
    inclusion bit set and a v-pointer naming exactly this slot.  Empty
    for non-inclusion hierarchies (level-1 blocks have no parents).
    """
    if hier.kind is HierarchyKind.RR_NO_INCLUSION:
        return []
    out: list[Violation] = []
    for block in l1.store.ways(set_index):
        if not block.present:
            continue
        site = ("l1", l1.index, set_index, block.way)
        if not _r_slot_valid(hier, block.r_pointer):
            out.append(Violation(
                "pointer", site,
                f"{l1.name} block {block!r} has an out-of-range r-pointer "
                f"{block.r_pointer!r}",
            ))
            continue
        r_set, r_way, sub_index = block.r_pointer
        rblock = hier.rcache.store.ways(r_set)[r_way]
        if not isinstance(rblock, RCacheBlock):
            out.append(Violation(
                "pointer", site, "level-2 store holds a non-R block",
            ))
            continue
        sub = rblock.subentries[sub_index]
        if not (sub.valid and sub.inclusion):
            out.append(Violation(
                "pointer", site,
                f"{l1.name} block {block!r} has no live parent subentry",
            ))
            continue
        if sub.v_pointer != l1.slot(block):
            out.append(Violation(
                "pointer", site,
                f"parent v-pointer {sub.v_pointer} does not name "
                f"{l1.slot(block)}",
            ))
    return out


def scan_buffer_bits(hier: TwoLevelHierarchy) -> list[Violation]:
    """Buffer bits and write-buffer entries must correspond one-to-one.

    Global rather than per-set: the write buffer holds a handful of
    entries at most, so this is cheap enough for every guard check.
    """
    if hier.kind is HierarchyKind.RR_NO_INCLUSION:
        return []
    flagged = {
        hier.rcache.pblock_of(rblock, index)
        for rblock in hier.rcache.blocks()
        for index, sub in enumerate(rblock.subentries)
        if sub.valid and sub.buffer
    }
    buffered = {entry.pblock for entry in hier.write_buffer.entries()}
    if flagged == buffered:
        return []
    message = (
        f"buffer bits {sorted(flagged)} != write-buffer contents "
        f"{sorted(buffered)}"
    )
    return [
        Violation("buffer", ("buffer", pblock), message)
        for pblock in sorted(flagged ^ buffered)
    ]


def scan_single_copy(hier: TwoLevelHierarchy) -> list[Violation]:
    """At most one level-1 copy of any physical block exists.

    For a virtual level 1 the physical identity of a block is its
    parent subentry; this counts children per subentry across all
    level-1 sets, so it is inherently a global sweep.
    """
    if hier.kind is HierarchyKind.RR_NO_INCLUSION:
        return []
    out: list[Violation] = []
    seen: dict[tuple, tuple] = {}
    for l1 in hier.l1_caches:
        for block in l1.store.present_blocks():
            pointer = (
                tuple(block.r_pointer)
                if isinstance(block.r_pointer, tuple)
                else block.r_pointer
            )
            slot = l1.slot(block)
            if pointer in seen:
                out.append(Violation(
                    "single-copy", ("l1",) + slot,
                    f"two level-1 copies {seen[pointer]} and {slot} share "
                    f"parent {pointer}",
                ))
                continue
            seen[pointer] = slot
    return out


def scan_tlb(hier: TwoLevelHierarchy) -> list[Violation]:
    """Every cached translation must agree with the page tables.

    A corrupted TLB entry silently redirects accesses to the wrong
    frame; cross-checking against :class:`MemoryLayout` (the
    architectural truth) catches it.
    """
    out: list[Violation] = []
    page_size = hier.layout.page_size
    for pid, vpage, frame in hier.tlb.entries():
        try:
            expected = hier.layout.translate(pid, vpage * page_size) // page_size
        except TranslationError:
            out.append(Violation(
                "tlb", ("tlb", pid, vpage),
                f"TLB caches unmapped page (pid={pid}, vpage={vpage:#x})",
            ))
            continue
        if frame != expected:
            out.append(Violation(
                "tlb", ("tlb", pid, vpage),
                f"TLB maps (pid={pid}, vpage={vpage:#x}) to frame "
                f"{frame:#x}, page table says {expected:#x}",
            ))
    return out


def scan_hierarchy(hier: TwoLevelHierarchy) -> list[Violation]:
    """Full sweep: every invariant of one hierarchy, as a list."""
    out: list[Violation] = []
    for set_index in range(hier.rcache.config.n_sets):
        out.extend(scan_l2_set(hier, set_index))
    for l1 in hier.l1_caches:
        for set_index in range(l1.config.n_sets):
            out.extend(scan_l1_set(hier, l1, set_index))
    out.extend(scan_buffer_bits(hier))
    out.extend(scan_single_copy(hier))
    out.extend(scan_tlb(hier))
    return out


# -- raising wrappers (full sweeps, test-suite API) ---------------------------


def _raise_first(violations: list[Violation]) -> None:
    if violations:
        raise InclusionError(violations[0].message)


def check_pointer_consistency(hier: TwoLevelHierarchy) -> None:
    """Every inclusion bit and every level-1 block agree on linkage.

    Raises :class:`InclusionError` on the first violation.  Only
    meaningful for inclusion-maintaining hierarchies.
    """
    for set_index in range(hier.rcache.config.n_sets):
        _raise_first(scan_l2_set(hier, set_index))
    for l1 in hier.l1_caches:
        for set_index in range(l1.config.n_sets):
            _raise_first(scan_l1_set(hier, l1, set_index))


def check_buffer_bits(hier: TwoLevelHierarchy) -> None:
    """Buffer bits and write-buffer entries correspond one-to-one."""
    _raise_first(scan_buffer_bits(hier))


def check_single_copy(hier: TwoLevelHierarchy) -> None:
    """At most one level-1 copy of any physical block exists."""
    _raise_first(scan_single_copy(hier))


def check_tlb(hier: TwoLevelHierarchy) -> None:
    """Every TLB entry agrees with the page tables."""
    _raise_first(scan_tlb(hier))


def check_coherence(hierarchies: list[TwoLevelHierarchy]) -> None:
    """A physical block is dirty in at most one hierarchy machine-wide."""
    owners: dict[int, int] = {}

    def claim(pblock: int, cpu: int) -> None:
        if pblock in owners and owners[pblock] != cpu:
            raise ProtocolError(
                f"block {pblock:#x} dirty in hierarchies {owners[pblock]} "
                f"and {cpu}"
            )
        owners[pblock] = cpu

    for hier in hierarchies:
        for rblock in hier.rcache.blocks():
            for index, sub in enumerate(rblock.subentries):
                if sub.valid and sub.dirty_anywhere:
                    claim(hier.rcache.pblock_of(rblock, index), hier.cpu)
        for entry in hier.write_buffer.entries():
            claim(entry.pblock, hier.cpu)
        if hier.kind is HierarchyKind.RR_NO_INCLUSION:
            for l1 in hier.l1_caches:
                for block in l1.store.present_blocks():
                    if block.dirty:
                        paddr = l1.config.address_of(
                            block.tag, block.set_index
                        )
                        claim(paddr >> hier.config.l1.block_bits, hier.cpu)


def check_all(hier: TwoLevelHierarchy) -> None:
    """Run every single-hierarchy invariant check."""
    check_pointer_consistency(hier)
    check_buffer_bits(hier)
    check_single_copy(hier)
    check_tlb(hier)
