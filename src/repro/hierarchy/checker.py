"""Invariant checkers for a running hierarchy.

These walk the tag stores and verify the structural invariants from
DESIGN.md §5 — inclusion, pointer consistency, the single-copy synonym
rule and dirty-state sanity.  They are deliberately slow and thorough;
the test suite calls them between and after simulations, never the
simulator itself.
"""

from __future__ import annotations

from ..common.errors import InclusionError, ProtocolError
from .config import HierarchyKind
from .rcache import RCacheBlock
from .twolevel import TwoLevelHierarchy


def check_pointer_consistency(hier: TwoLevelHierarchy) -> None:
    """Every inclusion bit and every level-1 block agree on linkage.

    Raises :class:`InclusionError` on the first violation.  Only
    meaningful for inclusion-maintaining hierarchies.
    """
    if hier.kind is HierarchyKind.RR_NO_INCLUSION:
        return
    # Forward direction: every subentry with inclusion set points at a
    # present level-1 block whose r-pointer points back.
    for rblock in hier.rcache.blocks():
        for index, sub in enumerate(rblock.subentries):
            if not sub.inclusion:
                continue
            if not sub.valid:
                raise InclusionError(
                    f"inclusion bit set on invalid subentry {rblock}[{index}]"
                )
            if sub.v_pointer is None:
                raise InclusionError(
                    f"inclusion bit set without v-pointer at {rblock}[{index}]"
                )
            child = hier.l1_caches[sub.v_pointer[0]].block_at(sub.v_pointer)
            if not child.present:
                raise InclusionError(
                    f"v-pointer {sub.v_pointer} names an empty level-1 slot"
                )
            if tuple(child.r_pointer) != (rblock.set_index, rblock.way, index):
                raise InclusionError(
                    f"r-pointer of {child!r} does not point back to "
                    f"({rblock.set_index}, {rblock.way}, {index})"
                )
            if sub.vdirty and not child.dirty:
                raise InclusionError(
                    f"vdirty set but child clean at {rblock}[{index}]"
                )
            if child.dirty and not sub.vdirty:
                raise InclusionError(
                    f"child dirty but vdirty clear at {rblock}[{index}]"
                )
    # Reverse direction: every present level-1 block has a parent with
    # the inclusion bit set and a matching v-pointer.
    for l1 in hier.l1_caches:
        for block in l1.store.present_blocks():
            r_set, r_way, sub_index = block.r_pointer
            rblock = hier.rcache.store.ways(r_set)[r_way]
            if not isinstance(rblock, RCacheBlock):
                raise InclusionError("level-2 store holds a non-R block")
            sub = rblock.subentries[sub_index]
            if not (sub.valid and sub.inclusion):
                raise InclusionError(
                    f"{l1.name} block {block!r} has no live parent subentry"
                )
            if sub.v_pointer != l1.slot(block):
                raise InclusionError(
                    f"parent v-pointer {sub.v_pointer} does not name "
                    f"{l1.slot(block)}"
                )


def check_buffer_bits(hier: TwoLevelHierarchy) -> None:
    """Buffer bits and write-buffer entries correspond one-to-one."""
    if hier.kind is HierarchyKind.RR_NO_INCLUSION:
        return
    flagged = {
        hier.rcache.pblock_of(rblock, index)
        for rblock in hier.rcache.blocks()
        for index, sub in enumerate(rblock.subentries)
        if sub.valid and sub.buffer
    }
    buffered = {entry.pblock for entry in hier.write_buffer.entries()}
    if flagged != buffered:
        raise InclusionError(
            f"buffer bits {sorted(flagged)} != write-buffer contents "
            f"{sorted(buffered)}"
        )


def check_single_copy(hier: TwoLevelHierarchy) -> None:
    """At most one level-1 copy of any physical block exists.

    For a virtual level 1 the physical identity of a block is its
    parent subentry; the inclusion-pointer structure enforces
    uniqueness, which this check confirms by counting children per
    subentry and, independently, parents per child.
    """
    if hier.kind is HierarchyKind.RR_NO_INCLUSION:
        return
    seen: dict[tuple[int, int, int], tuple[int, int, int]] = {}
    for l1 in hier.l1_caches:
        for block in l1.store.present_blocks():
            pointer = tuple(block.r_pointer)
            slot = l1.slot(block)
            if pointer in seen:
                raise InclusionError(
                    f"two level-1 copies {seen[pointer]} and {slot} share "
                    f"parent {pointer}"
                )
            seen[pointer] = slot  # type: ignore[index]


def check_coherence(hierarchies: list[TwoLevelHierarchy]) -> None:
    """A physical block is dirty in at most one hierarchy machine-wide."""
    owners: dict[int, int] = {}

    def claim(pblock: int, cpu: int) -> None:
        if pblock in owners and owners[pblock] != cpu:
            raise ProtocolError(
                f"block {pblock:#x} dirty in hierarchies {owners[pblock]} "
                f"and {cpu}"
            )
        owners[pblock] = cpu

    for hier in hierarchies:
        for rblock in hier.rcache.blocks():
            for index, sub in enumerate(rblock.subentries):
                if sub.valid and sub.dirty_anywhere:
                    claim(hier.rcache.pblock_of(rblock, index), hier.cpu)
        for entry in hier.write_buffer.entries():
            claim(entry.pblock, hier.cpu)
        if hier.kind is HierarchyKind.RR_NO_INCLUSION:
            for l1 in hier.l1_caches:
                for block in l1.store.present_blocks():
                    if block.dirty:
                        paddr = l1.config.address_of(
                            block.tag, block.set_index
                        )
                        claim(paddr >> hier.config.l1.block_bits, hier.cpu)


def check_all(hier: TwoLevelHierarchy) -> None:
    """Run every single-hierarchy invariant check."""
    check_pointer_consistency(hier)
    check_buffer_bits(hier)
    check_single_copy(hier)
