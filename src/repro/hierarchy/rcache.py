"""The second-level physical cache (R-cache).

Per the paper's Figure 3, each R-cache tag entry holds one *subentry*
per level-1-sized sub-block.  A subentry records whether the sub-block
has a child in the level-1 cache (inclusion bit), whether the only
up-to-date copy sits in the level-1 write buffer (buffer bit), the
sharing state used by the snooping protocol, two dirty bits (vdirty:
the level-1 child is modified; rdirty: the R-cache's own copy is
modified) and the v-pointer locating the child.

Pointer representation: the hardware stores the low bits of the
page number, which resolve to a *set*; the way is found by searching
back-pointers.  The simulator stores ``(set, way)`` directly — an
unambiguous encoding of the same linkage (see DESIGN.md §6).
"""

from __future__ import annotations

from collections.abc import Iterator

from ..cache.block import CacheBlock
from ..cache.config import CacheConfig
from ..cache.tagstore import TagStore
from ..coherence.protocol import ShareState

#: A (set, way) slot pointer into the other cache level.
Slot = tuple[int, int]


class SubEntry:
    """Per-sub-block bookkeeping of one R-cache tag entry."""

    __slots__ = (
        "valid",
        "inclusion",
        "buffer",
        "state",
        "vdirty",
        "rdirty",
        "v_pointer",
        "version",
    )

    def __init__(self) -> None:
        self.valid = False
        self.inclusion = False
        self.buffer = False
        self.state = ShareState.PRIVATE
        self.vdirty = False
        self.rdirty = False
        self.v_pointer: Slot | None = None
        self.version = 0

    @property
    def unencumbered(self) -> bool:
        """True when no level-1 copy exists (inclusion and buffer clear)."""
        return not self.inclusion and not self.buffer

    @property
    def dirty_anywhere(self) -> bool:
        """True when this hierarchy holds newer data than memory."""
        return self.vdirty or self.rdirty or self.buffer

    def reset(self) -> None:
        """Return to the power-on state."""
        self.valid = False
        self.inclusion = False
        self.buffer = False
        self.state = ShareState.PRIVATE
        self.vdirty = False
        self.rdirty = False
        self.v_pointer = None
        self.version = 0

    def fill(self, version: int, shared: bool) -> None:
        """Install a clean copy fetched from the bus."""
        self.reset()
        self.valid = True
        self.version = version
        self.state = ShareState.SHARED if shared else ShareState.PRIVATE

    def __repr__(self) -> str:
        flags = "".join(
            ch
            for ch, on in (
                ("V", self.valid),
                ("I", self.inclusion),
                ("B", self.buffer),
                ("v", self.vdirty),
                ("r", self.rdirty),
            )
            if on
        )
        return f"SubEntry({self.state.value}, flags={flags or '-'})"


class RCacheBlock(CacheBlock):
    """An R-cache tag entry: a tag plus its subentries.

    ``valid`` on the base class mirrors "any subentry valid" so the
    generic tag-store search works unchanged.
    """

    __slots__ = ("subentries",)

    def __init__(self, set_index: int, way: int, n_subentries: int = 1) -> None:
        super().__init__(set_index, way)
        self.subentries = [SubEntry() for _ in range(n_subentries)]

    def refresh_valid(self) -> None:
        """Recompute the block-level valid bit from the subentries."""
        self.valid = any(sub.valid for sub in self.subentries)

    def invalidate(self) -> None:
        """Drop the block and all its subentries."""
        super().invalidate()
        for sub in self.subentries:
            sub.reset()

    @property
    def unencumbered(self) -> bool:
        """True when no subentry has a level-1 copy."""
        return all(sub.unencumbered for sub in self.subentries)


class RCache:
    """Tag store plus sub-block addressing for the second level.

    The hierarchy object orchestrates misses and coherence; this class
    owns geometry, lookup and victim preference.
    """

    __slots__ = ("config", "n_subentries", "store", "sub_block_size", "_sub_bits")

    def __init__(
        self,
        config: CacheConfig,
        n_subentries: int,
        replacement: str = "lru",
        seed: int = 0,
    ) -> None:
        self.config = config
        self.n_subentries = n_subentries
        self.store = TagStore(
            config,
            block_factory=lambda s, w: RCacheBlock(s, w, n_subentries),
            replacement=replacement,
            seed=seed,
        )
        # Sub-block geometry: the level-1 block size.
        self.sub_block_size = config.block_size // n_subentries
        self._sub_bits = self.sub_block_size.bit_length() - 1

    # -- addressing ------------------------------------------------------

    def sub_index(self, paddr: int) -> int:
        """Which subentry of its block *paddr* falls in."""
        return (paddr >> self._sub_bits) & (self.n_subentries - 1)

    def pblock_of(self, block: RCacheBlock, sub_index: int) -> int:
        """Physical sub-block number stored at (block, sub_index)."""
        base = self.config.address_of(block.tag, block.set_index)
        return (base >> self._sub_bits) + sub_index

    def sub_block_number(self, paddr: int) -> int:
        """Physical sub-block number (the coherence/memory granule)."""
        return paddr >> self._sub_bits

    # -- lookup ------------------------------------------------------------

    def lookup(self, paddr: int) -> tuple[RCacheBlock, SubEntry] | None:
        """Find the valid subentry covering *paddr*, if present."""
        block = self.store.find(paddr)
        if block is None:
            return None
        sub = block.subentries[self.sub_index(paddr)]
        if not sub.valid:
            return None
        return block, sub  # type: ignore[return-value]

    def lookup_sub_block(self, pblock: int) -> tuple[RCacheBlock, SubEntry] | None:
        """Like :meth:`lookup` but keyed by sub-block number."""
        return self.lookup(pblock << self._sub_bits)

    def slot(self, block: RCacheBlock) -> Slot:
        """The (set, way) pointer value naming *block*."""
        return (block.set_index, block.way)

    def block_at(self, slot: Slot) -> RCacheBlock:
        """Dereference a (set, way) pointer."""
        return self.store.ways(slot[0])[slot[1]]  # type: ignore[return-value]

    # -- victim choice --------------------------------------------------------

    def victim(self, paddr: int, prefer_unencumbered: bool) -> RCacheBlock:
        """Choose the block the fill for *paddr* will replace.

        With *prefer_unencumbered* (the paper's relaxed inclusion
        rule), ways whose subentries all lack level-1 children are
        preferred; only if none exists may a block with children be
        chosen, in which case the hierarchy must invalidate those
        children.
        """
        if prefer_unencumbered:
            return self.store.victim(
                paddr, prefer=lambda b: b.unencumbered  # type: ignore[attr-defined]
            )
        return self.store.victim(paddr)

    def blocks(self) -> Iterator[RCacheBlock]:
        """Iterate every block (for checkers and snoop-by-scan tests)."""
        return iter(self.store)  # type: ignore[return-value]
