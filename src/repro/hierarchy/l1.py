"""The first-level cache (V-cache in a V-R hierarchy, physical in R-R).

A thin wrapper over :class:`TagStore` that adds the level-1 semantics
the hierarchy algorithm needs: swapped-valid handling for context
switches and (set, way) slot addressing so the R-cache's v-pointers
can be dereferenced.

Whether the cache is virtually or physically addressed is decided by
the hierarchy: it simply keys lookups with a virtual or physical
address.  Blocks store an ``r_pointer`` — in this simulator the
``(set, way, subentry)`` slot of the parent R-cache entry (see
DESIGN.md §6 on pointer representation).
"""

from __future__ import annotations

from ..cache.block import CacheBlock
from ..cache.config import CacheConfig
from ..cache.tagstore import TagStore

#: Pointer into the R-cache: (set, way, subentry index).
RSlot = tuple[int, int, int]
#: Pointer into a level-1 cache: (cache index, set, way).
VSlot = tuple[int, int, int]


class L1Cache:
    """One first-level cache (a unified cache, or one half of a split).

    Attributes:
        index: position among the hierarchy's level-1 caches (0 for a
            unified cache or the I half, 1 for the D half); the first
            component of every v-pointer naming a block here.
        name: label used in reports ("L1", "L1-I", "L1-D").
        access: processor-side lookup (valid blocks only, LRU
            updated).  This is the tag store's bound ``access``
            method, installed per instance so the replay loop skips a
            wrapper frame; it must stay an instance slot, not a
            ``def`` in the class body.
    """

    __slots__ = ("config", "index", "name", "store", "access")

    def __init__(
        self,
        config: CacheConfig,
        index: int = 0,
        name: str = "L1",
        replacement: str = "lru",
        seed: int = 0,
    ) -> None:
        self.config = config
        self.index = index
        self.name = name
        self.store = TagStore(config, replacement=replacement, seed=seed)
        # The processor-side lookup is pure forwarding, and the replay
        # loop performs it once per reference: expose the tag store's
        # bound method directly so the wrapper frame disappears.
        self.access = self.store.access

    # -- lookup -----------------------------------------------------------

    def find_present(self, key: int) -> CacheBlock | None:
        """Find a block whose data is physically present (valid or
        swapped-valid) — used by coherence probes in non-inclusion
        hierarchies, where the address key is physical."""
        return self.store.find(key, include_swapped=True)

    def victim(self, key: int) -> CacheBlock:
        """The slot a fill of *key* would use (eviction not committed)."""
        return self.store.victim(key)

    # -- slot addressing -----------------------------------------------------

    def slot(self, block: CacheBlock) -> VSlot:
        """The v-pointer value naming *block*."""
        return (self.index, block.set_index, block.way)

    def block_at(self, slot: VSlot) -> CacheBlock:
        """Dereference a v-pointer that names this cache."""
        if slot[0] != self.index:
            raise ValueError(f"v-pointer {slot} does not name cache {self.index}")
        return self.store.ways(slot[1])[slot[2]]

    # -- bulk operations ------------------------------------------------------

    def swap_out(self) -> int:
        """Context switch: demote all valid blocks to swapped-valid."""
        return self.store.swap_out_all()

    def present_count(self) -> int:
        """Number of slots holding data (valid or swapped)."""
        return sum(1 for _ in self.store.present_blocks())
