"""A single-level cache front end for write-traffic studies.

Tables 1–3 of the paper characterise write behaviour using a single
16K direct-mapped cache.  This model supports both write policies:

* **write-through** (no write-allocate by default) — every processor
  write generates downstream traffic; the inter-write interval
  histogram it produces is the paper's Table 2.
* **write-back** (write-allocate) — only dirty evictions generate
  downstream traffic; combined with :meth:`context_switch` semantics
  (eager flush vs. lazy swapped-valid) it produces Table 3 and the
  "over a hundred write-backs per switch" contrast the paper cites.

The cache is keyed by virtual address alone, like the V-cache.
"""

from __future__ import annotations

from ..cache.config import CacheConfig
from ..cache.tagstore import TagStore
from ..coherence.protocol import AllocPolicy, WritePolicy
from ..common.stats import CounterBag, IntervalHistogram
from ..trace.record import RefKind


class SingleLevelCache:
    """One cache plus downstream write-traffic accounting.

    >>> cache = SingleLevelCache(CacheConfig.create("16K", 16))
    >>> _ = cache.access(0x1000, RefKind.WRITE)
    >>> cache.stats["writes"]
    1
    """

    def __init__(
        self,
        config: CacheConfig,
        write_policy: WritePolicy = WritePolicy.WRITE_THROUGH,
        alloc_policy: AllocPolicy | None = None,
        lazy_swap: bool = False,
        replacement: str = "lru",
        seed: int = 0,
    ) -> None:
        if alloc_policy is None:
            alloc_policy = (
                AllocPolicy.NO_WRITE_ALLOCATE
                if write_policy is WritePolicy.WRITE_THROUGH
                else AllocPolicy.WRITE_ALLOCATE
            )
        self.config = config
        self.write_policy = write_policy
        self.alloc_policy = alloc_policy
        self.lazy_swap = lazy_swap
        self.store = TagStore(config, replacement=replacement, seed=seed)
        self.stats = CounterBag()
        self.write_intervals = IntervalHistogram(top=10)
        self.swapped_write_intervals = IntervalHistogram(top=10)
        self._refs = 0
        self._last_downstream_write: int | None = None
        self._last_swapped_write: int | None = None

    # -- internals ---------------------------------------------------------

    def _downstream_write(self, swapped: bool = False) -> None:
        self.stats.add("downstream_writes")
        if swapped:
            self.stats.add("swapped_downstream_writes")
        if self._last_downstream_write is not None:
            interval = self._refs - self._last_downstream_write
            if interval >= 1:
                self.write_intervals.record(interval)
        self._last_downstream_write = self._refs
        if swapped:
            if self._last_swapped_write is not None:
                interval = self._refs - self._last_swapped_write
                if interval >= 1:
                    self.swapped_write_intervals.record(interval)
            self._last_swapped_write = self._refs

    def _fill(self, addr: int) -> None:
        victim = self.store.victim(addr)
        if victim.present:
            self.stats.add("evictions")
            if victim.dirty:
                self._downstream_write(swapped=victim.swapped_valid)
        victim.fill(self.config.tag(addr), 0, 0)
        self.store.note_install(victim)

    # -- public API -----------------------------------------------------------

    def access(self, vaddr: int, kind: RefKind) -> bool:
        """Process one reference; returns True on a (valid) hit."""
        self._refs += 1
        self.stats.add(
            {"i": "instr_refs", "r": "reads", "w": "writes"}[kind.value]
        )
        block = self.store.access(vaddr)
        hit = block is not None

        if kind is RefKind.WRITE:
            if self.write_policy is WritePolicy.WRITE_THROUGH:
                # The write goes downstream whether it hit or not.
                self._downstream_write()
                if not hit and self.alloc_policy is AllocPolicy.WRITE_ALLOCATE:
                    self._fill(vaddr)
            else:
                if not hit and self.alloc_policy is AllocPolicy.WRITE_ALLOCATE:
                    self._fill(vaddr)
                    block = self.store.access(vaddr)
                if block is not None:
                    block.dirty = True
        elif not hit:
            self._fill(vaddr)

        self.stats.add("hits" if hit else "misses")
        self.stats.add(f"{'hits' if hit else 'misses'}_{kind.value}")
        return hit

    def context_switch(self) -> int:
        """Flush for a context switch.

        With *lazy_swap* (the paper's swapped-valid scheme) blocks are
        demoted and written back later on replacement; otherwise dirty
        blocks are written back immediately.  Returns the number of
        immediate write-backs.
        """
        self.stats.add("context_switches")
        if self.lazy_swap:
            self.stats.add("swapped_blocks", self.store.swap_out_all())
            return 0
        immediate = 0
        for block in self.store:
            if block.present and block.dirty:
                self._downstream_write()
                immediate += 1
            block.invalidate()
        self.stats.add("switch_writebacks", immediate)
        return immediate

    @property
    def hit_ratio(self) -> float:
        """Overall hit ratio so far."""
        total = self.stats["hits"] + self.stats["misses"]
        return self.stats["hits"] / total if total else 0.0
