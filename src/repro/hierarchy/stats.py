"""Per-hierarchy statistics.

Every counter the paper's tables need is collected here, split by
reference class (instruction fetch / data read / data write) so that
Tables 8–10 can report per-class level-1 hit ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.stats import CounterBag, IntervalHistogram, ratio
from ..trace.record import RefKind

#: Reference classes tracked separately.
_CLASSES = (RefKind.INSTR, RefKind.READ, RefKind.WRITE)

#: Counter names per (kind, hit) — precomputed so the per-access hot
#: path never builds an f-string.
_L1_KEYS: dict[tuple[RefKind, bool], str] = {
    (kind, hit): f"l1_{'hits' if hit else 'misses'}_{kind.value}"
    for kind in _CLASSES
    for hit in (True, False)
}


@dataclass(slots=True)
class HierarchyStats:
    """Counters for one processor's cache hierarchy.

    The central quantities:

    * ``l1_hits/l1_misses`` per class — level-1 (valid) hit behaviour.
    * ``l2_hits/l2_misses`` — outcome of level-1 misses at level 2
      (local hit ratio h2 = l2_hits / (l2_hits + l2_misses)).
    * ``synonym_*`` — level-2 hits resolved by moving/re-tagging an
      existing level-1 copy (V-R only).
    * ``coherence_to_l1`` — messages the level-2 cache had to send down
      to level 1 on behalf of bus traffic (Tables 11–13).
    * ``writeback_intervals`` — distances (in references) between
      successive level-1 write-backs (Tables 2 and 3).
    """

    counters: CounterBag = field(default_factory=CounterBag)
    writeback_intervals: IntervalHistogram = field(
        default_factory=lambda: IntervalHistogram(top=10)
    )

    def record_l1(self, kind: RefKind, hit: bool) -> None:
        """Count a level-1 lookup outcome for one reference class."""
        self.counters.add(_L1_KEYS[kind, hit])

    def record_l2(self, hit: bool) -> None:
        """Count the level-2 outcome of a level-1 miss."""
        self.counters.add("l2_hits" if hit else "l2_misses")

    # -- derived ratios ----------------------------------------------------

    def _sum(self, prefix: str, kinds: tuple[RefKind, ...] = _CLASSES) -> int:
        return self.counters.total(f"{prefix}_{k.value}" for k in kinds)

    def l1_refs(self, *kinds: RefKind) -> int:
        """References that looked up level 1, optionally by class."""
        selected = kinds or _CLASSES
        return self._sum("l1_hits", selected) + self._sum("l1_misses", selected)

    def l1_hit_ratio(self, *kinds: RefKind) -> float:
        """h1, optionally restricted to some reference classes."""
        selected = kinds or _CLASSES
        return ratio(self._sum("l1_hits", selected), self.l1_refs(*selected))

    def l2_hit_ratio(self) -> float:
        """h2 — local hit ratio of level 2 (per level-1 miss)."""
        hits = self.counters["l2_hits"]
        misses = self.counters["l2_misses"]
        return ratio(hits, hits + misses)

    def repairs(self) -> int:
        """Invariant-guard repairs applied to this hierarchy."""
        return self.counters["guard_repairs"]

    def integrity_events(self) -> int:
        """Invariant violations the guard observed (any policy)."""
        return self.counters.total(
            (
                "guard_violations",
                "guard_repairs",
                "guard_logged_violations",
            )
        )

    def coherence_to_l1(self) -> int:
        """Total coherence messages percolated to level 1."""
        return self.counters.total(
            (
                "l1_coherence_invalidations",
                "l1_coherence_flushes",
                "l1_coherence_buffer_ops",
                "l1_coherence_probes",
                "l1_inclusion_invalidations",
            )
        )

    def merge(self, other: "HierarchyStats") -> None:
        """Accumulate *other* into this object (for machine-wide sums)."""
        self.counters.merge(other.counters)

    def summary(self) -> dict[str, float | int]:
        """A flat report dict used by examples and experiment runners."""
        out: dict[str, float | int] = dict(self.counters.as_dict())
        out["h1"] = round(self.l1_hit_ratio(), 4)
        out["h2"] = round(self.l2_hit_ratio(), 4)
        out["coherence_to_l1"] = self.coherence_to_l1()
        if self.integrity_events():
            out["repairs"] = self.repairs()
        return out
