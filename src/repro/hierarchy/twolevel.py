"""The two-level cache hierarchy algorithm (paper section 3).

One :class:`TwoLevelHierarchy` object implements all three
organisations the paper compares, selected by
:class:`~repro.hierarchy.config.HierarchyKind`:

* **V-R** — level 1 is keyed by virtual address and invalidated
  (swapped-valid) on context switches; the physical level 2 detects
  synonyms via its v-pointers and resolves them with the paper's
  *sameset* / *move* operations; inclusion is maintained and shields
  level 1 from bus traffic.
* **R-R with inclusion** — level 1 keyed by physical address (the TLB
  is consulted before every level-1 access); the synonym machinery is
  present but never triggers, because a physical level-1 miss implies
  the inclusion bit is clear.  Shielding works exactly as in V-R.
* **R-R without inclusion** — level-2 replacement ignores level-1
  children and never back-invalidates, so every bus coherence
  transaction must be forwarded to level 1.

Dirty level-1 victims travel through a write buffer whose drain rate
is one entry per ``drain_period`` references (modelling the level-2
write latency); the matching level-2 subentry carries a *buffer bit*
while the data is in flight so coherence and synonym lookups find it.
"""

from __future__ import annotations

import enum
import itertools
from collections.abc import Callable
from dataclasses import dataclass

from ..cache.block import CacheBlock
from ..cache.write_buffer import WriteBuffer, WriteBufferEntry
from ..coherence.bus import Bus
from ..coherence.messages import BusOp, BusTransaction, SnoopReply
from ..coherence.protocol import ShareState, WritePolicy
from ..common.errors import InclusionError, ProtocolError
from ..mmu.address_space import MemoryLayout
from ..mmu.tlb import TLB
from ..trace.record import RefKind
from .config import HierarchyConfig, Protocol
from .l1 import L1Cache
from .rcache import RCache, RCacheBlock, SubEntry
from .stats import _L1_KEYS, HierarchyStats

#: Hoisted enum constants for the per-access fast path.
_INSTR = RefKind.INSTR
_WRITE = RefKind.WRITE


class Outcome(enum.Enum):
    """Where an access was satisfied."""

    L1_HIT = "l1"
    L2_HIT = "l2"          # level-1 miss, plain level-2 hit
    SYNONYM = "synonym"    # level-2 hit resolved by moving a level-1 copy
    MEMORY = "memory"      # missed both levels


@dataclass(frozen=True, slots=True)
class AccessResult:
    """Outcome and observed/produced data version of one access."""

    outcome: Outcome
    version: int


class TwoLevelHierarchy:
    """One processor's private two-level hierarchy on a shared bus."""

    __slots__ = (
        "config",
        "kind",
        "layout",
        "bus",
        "cpu",
        "tlb",
        "stats",
        "write_buffer",
        "drain_period",
        "rcache",
        "_inclusion",
        "_virtual_l1",
        "_pid_tags",
        "_write_through",
        "_update_protocol",
        "_next_version",
        "_l1s",
        "_split",
        "_sub_bits",
        "_refs",
        "_last_writeback_ref",
        "_drain_countdown",
        "_wb_entries",
        "_counts",
        "_tr_syn",
        "_tr_incl",
        "_tr_wb",
        "_tr_coh",
    )

    def __init__(
        self,
        config: HierarchyConfig,
        layout: MemoryLayout,
        bus: Bus,
        next_version: Callable[[], int] | None = None,
        tlb_entries: int = 64,
        tlb_associativity: int = 4,
        drain_period: int = 4,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.kind = config.kind
        self.layout = layout
        self.bus = bus
        self.cpu = bus.attach(self)
        self.tlb = TLB(layout, tlb_entries, tlb_associativity)
        self.stats = HierarchyStats()
        self.write_buffer = WriteBuffer(config.write_buffer_capacity)
        self.drain_period = drain_period
        self._inclusion = config.kind.inclusion
        self._virtual_l1 = config.kind.virtual_l1
        self._pid_tags = config.l1_pid_tags
        self._write_through = (
            config.l1_write_policy is WritePolicy.WRITE_THROUGH
        )
        self._update_protocol = config.protocol is Protocol.WRITE_UPDATE
        self._next_version = (
            next_version
            if next_version is not None
            else itertools.count(1).__next__
        )

        if config.split_l1:
            half = config.l1_half()
            self._l1s = [
                L1Cache(half, 0, "L1-I", config.l1_replacement, seed),
                L1Cache(half, 1, "L1-D", config.l1_replacement, seed + 1),
            ]
        else:
            unified = L1Cache(config.l1, 0, "L1", config.l1_replacement, seed)
            self._l1s = [unified]
        self.rcache = RCache(
            config.l2,
            config.subentries_per_l2_block,
            config.l2_replacement,
            seed + 2,
        )
        self._sub_bits = config.l1.block_bits
        self._refs = 0
        self._last_writeback_ref: int | None = None
        # Hot-path plumbing.  The access loop runs for every simulated
        # reference, so the write-buffer drain check is a counter
        # compare (no len() + modulo), the buffer's deque and the stats
        # Counter are aliased directly, and the split-L1 choice is a
        # precomputed boolean.  The countdown hits zero exactly when
        # self._refs % drain_period == 0 would.
        self._drain_countdown = drain_period
        self._wb_entries = self.write_buffer._entries
        self._counts = self.stats.counters._counts
        self._split = len(self._l1s) == 2
        # Per-category pre-resolved tracer slots (see set_tracer).
        # All None means tracing is off and every emit site is one
        # ``is None`` test; the per-access fast path carries none.
        self._tr_syn = None
        self._tr_incl = None
        self._tr_wb = None
        self._tr_coh = None

    # -- public API ---------------------------------------------------------

    @property
    def l1_caches(self) -> list[L1Cache]:
        """The level-1 caches (one unified, or the I and D halves)."""
        return list(self._l1s)

    def l1_for(self, kind: RefKind) -> L1Cache:
        """The level-1 cache serving references of class *kind*."""
        if len(self._l1s) == 2 and kind is not RefKind.INSTR:
            return self._l1s[1]
        return self._l1s[0]

    def set_tracer(self, tracer) -> None:
        """Attach (or detach, with None) a structured event tracer.

        Each category is resolved here once — a filtered-out category
        leaves its slot None, so emit sites for it cost exactly what
        tracing-off costs.
        """
        if tracer is None:
            self._tr_syn = self._tr_incl = self._tr_wb = self._tr_coh = None
            return
        self._tr_syn = tracer if tracer.wants("synonym") else None
        self._tr_incl = tracer if tracer.wants("inclusion") else None
        self._tr_wb = tracer if tracer.wants("writeback") else None
        self._tr_coh = tracer if tracer.wants("coherence") else None

    def access(self, pid: int, vaddr: int, kind: RefKind) -> AccessResult:
        """Process one memory reference from the local processor."""
        self._refs += 1
        countdown = self._drain_countdown - 1
        if countdown:
            self._drain_countdown = countdown
        else:
            self._drain_countdown = self.drain_period
            if self._wb_entries:
                self._drain_one()

        paddr: int | None = None
        if self._virtual_l1:
            # With pid tags, the process id joins the tag compare (it
            # sits far above the index bits, so set selection is pure
            # virtual address, as in hardware).
            key = vaddr | (pid << 48) if self._pid_tags else vaddr
        else:
            paddr = self.tlb.translate(pid, vaddr)
            key = paddr
        l1 = (
            self._l1s[1]
            if self._split and kind is not _INSTR
            else self._l1s[0]
        )
        block = l1.store.access(key)
        if block is not None:
            self._counts[_L1_KEYS[kind, True]] += 1
            if kind is _WRITE:
                version = self._write_hit(l1, block)
                return AccessResult(Outcome.L1_HIT, version)
            return AccessResult(Outcome.L1_HIT, block.version)

        self._counts[_L1_KEYS[kind, False]] += 1
        if paddr is None:
            paddr = self.tlb.translate(pid, vaddr)
        return self._l1_miss(l1, key, paddr, kind)

    def context_switch(self, new_pid: int | None = None) -> int:
        """A context switch on this CPU.

        For a virtual level 1, every valid block is demoted to
        swapped-valid (invalid to the processor, data retained and
        written back lazily on replacement).  A physical level 1 is
        unaffected.  Returns the number of blocks demoted.
        """
        self.stats.counters.add("context_switches")
        if not self._virtual_l1 or self._pid_tags:
            # Pid-tagged entries stay valid across switches (the
            # section-2 alternative scheme).
            return 0
        demoted = 0
        for l1 in self._l1s:
            demoted += l1.swap_out()
        self.stats.counters.add("swapped_blocks", demoted)
        return demoted

    def drain_write_buffer(self) -> int:
        """Synchronously retire every write-buffer entry (for tests
        and end-of-simulation settling).  Returns entries drained."""
        drained = 0
        while len(self.write_buffer):
            self._drain_one()
            drained += 1
        return drained

    def _child_of(self, sub: SubEntry, pblock: int) -> CacheBlock:
        """Dereference a subentry's v-pointer, validating the linkage.

        Raises :class:`InclusionError` (with the current access index
        and the physical block) instead of crashing when the pointer
        metadata is corrupt — the error surfaces as a library fault
        that a guard policy can catch and repair.
        """
        if sub.v_pointer is None:
            raise InclusionError(
                "inclusion bit set without a v-pointer",
                access_index=self._refs,
                pblock=pblock,
            )
        cache_index = sub.v_pointer[0]
        if not 0 <= cache_index < len(self._l1s):
            raise InclusionError(
                f"v-pointer {sub.v_pointer} names a nonexistent level-1 cache",
                access_index=self._refs,
                pblock=pblock,
            )
        return self._l1s[cache_index].block_at(sub.v_pointer)

    # -- level-1 hit path -----------------------------------------------------

    def _write_hit(self, l1: L1Cache, block: CacheBlock) -> int:
        version = self._next_version()
        if self._write_through:
            block.version = version
            sub, pblock = self._sub_for_l1_block(l1, block)
            self._publish_write_through(sub, pblock, version)
            return version
        if not block.dirty:
            sub, pblock = self._sub_for_l1_block(l1, block)
            if self._resolve_write_sharing(sub, pblock, version):
                block.dirty = True
                if sub is not None and self._inclusion:
                    sub.vdirty = True
            elif sub is not None:
                # Update protocol kept the block shared: the broadcast
                # already refreshed peers and memory; our copies stay
                # clean at the new version.
                sub.version = version
                sub.rdirty = False
        block.version = version
        return version

    def _sub_for_l1_block(self, l1: L1Cache, block: CacheBlock):
        """The level-2 subentry backing a level-1 block, plus its
        physical block number.

        With inclusion the r-pointer dereferences directly (the
        paper's invack handshake needs no translation); without it the
        level-2 copy may be gone, so the physical address is
        reconstructed from the (physical) level-1 tag and the lookup
        may return ``(None, pblock)``.
        """
        if self._inclusion:
            _, sub, pblock = self._parent_of(block)
            return sub, pblock
        paddr = l1.config.address_of(block.tag, block.set_index)
        found = self.rcache.lookup(paddr)
        return (found[1] if found is not None else None), paddr >> self._sub_bits

    def _resolve_write_sharing(
        self, sub: SubEntry | None, pblock: int, version: int
    ) -> bool:
        """Clear or refresh other copies before a local write.

        Returns True when the writer becomes the exclusive dirty
        owner (write-invalidate semantics, or a write-update broadcast
        that found no remaining sharers); False when the update
        protocol kept the block shared and clean (peers and memory
        hold the new version already).
        """
        if sub is None:
            # No-inclusion orphan: the level-2 entry is gone, so the
            # sharing state is unknown — act conservatively.
            if self._update_protocol:
                self.bus.issue(
                    BusTransaction(
                        BusOp.WRITE_UPDATE, self.cpu, pblock, version
                    )
                )
                return False
            self.bus.issue(BusTransaction(BusOp.INVALIDATE, self.cpu, pblock))
            return True
        if sub.state is ShareState.PRIVATE:
            return True
        if self._update_protocol:
            result = self.bus.issue(
                BusTransaction(BusOp.WRITE_UPDATE, self.cpu, pblock, version)
            )
            if result.shared:
                return False
            sub.state = ShareState.PRIVATE
            return True
        self.bus.issue(BusTransaction(BusOp.INVALIDATE, self.cpu, pblock))
        sub.state = ShareState.PRIVATE
        return True

    def _publish_write_through(
        self, sub: SubEntry | None, pblock: int, version: int
    ) -> None:
        """Propagate a write-through write toward level 2.

        Under write-invalidate (or when an update broadcast leaves the
        writer exclusive) the data is buffered toward level 2; when a
        write-update broadcast keeps the block shared, the broadcast
        itself already carried the data to peers and memory, so the
        level-2 copy is refreshed directly and any older pending entry
        for the block is merged up to the new version.
        """
        self.stats.counters.add("wt_writes")
        if not self._resolve_write_sharing(sub, pblock, version):
            if sub is not None:
                sub.version = version
                sub.rdirty = False
            pending = self.write_buffer.find(pblock)
            if pending is not None:
                pending.version = version
            return
        pending = self.write_buffer.find(pblock)
        if pending is not None:
            pending.version = version
            self.stats.counters.add("wt_write_merges")
            return
        if self.write_buffer.full:
            self.stats.counters.add("writeback_stalls")
            if self._tr_wb is not None:
                self._tr_wb.emit("writeback", "stall", cpu=self.cpu, pblock=pblock)
            self._drain_one()
        self.write_buffer.push(WriteBufferEntry(pblock, version))
        self._note_downstream_write()
        if sub is not None and self._inclusion:
            sub.buffer = True

    # -- level-1 miss path ------------------------------------------------------

    def _l1_miss(
        self, l1: L1Cache, key: int, paddr: int, kind: RefKind
    ) -> AccessResult:
        found = self.rcache.lookup(paddr)
        if found is None:
            self.stats.record_l2(False)
            rblock, sub = self._l2_miss_fill(paddr, kind)
            outcome = Outcome.MEMORY
        else:
            self.stats.record_l2(True)
            rblock, sub = found
            self.rcache.store.touch(rblock)
            outcome = Outcome.L2_HIT
        pblock = paddr >> self._sub_bits
        sub_index = self.rcache.sub_index(paddr)

        if kind is RefKind.WRITE and self._write_through:
            # No write-allocate: the write is published toward level 2
            # without installing a level-1 copy.
            version = self._write_through_miss(rblock, sub, sub_index, pblock)
            return AccessResult(outcome, version)

        target, synonym = self._place_in_l1(
            l1, key, rblock, sub, sub_index, pblock
        )
        if synonym and outcome is Outcome.L2_HIT:
            outcome = Outcome.SYNONYM
        if kind is RefKind.WRITE:
            version = self._next_version()
            if not target.dirty:
                if self._resolve_write_sharing(sub, pblock, version):
                    target.dirty = True
                    if self._inclusion:
                        sub.vdirty = True
                else:
                    sub.version = version
                    sub.rdirty = False
            target.version = version
        return AccessResult(outcome, target.version)

    def _write_through_miss(
        self, rblock: RCacheBlock, sub: SubEntry, sub_index: int, pblock: int
    ) -> int:
        version = self._next_version()
        if sub.inclusion:
            # A synonym copy lives in the V-cache under another
            # virtual name: refresh it in place so it stays coherent
            # with the written-through data.
            child = self._child_of(sub, pblock)
            child.version = version
            self.stats.counters.add("wt_synonym_updates")
        self._publish_write_through(sub, pblock, version)
        return version

    def _place_in_l1(
        self,
        l1: L1Cache,
        key: int,
        rblock: RCacheBlock,
        sub: SubEntry,
        sub_index: int,
        pblock: int,
    ) -> tuple[CacheBlock, bool]:
        """Install the sub-block into level 1, resolving synonyms.

        Returns ``(block, was_synonym)`` where *was_synonym* is True
        when an existing level-1 copy (valid under another virtual
        address, swapped-valid, or parked in the write buffer) was
        reused instead of fetching from the level-2 data store.
        """
        new_tag = l1.config.tag(key)
        new_set = l1.config.set_index(key)
        r_slot = (rblock.set_index, rblock.way, sub_index)

        if sub.inclusion:
            child = self._child_of(sub, pblock)
            child_l1 = self._l1s[sub.v_pointer[0]]  # type: ignore[index]
            child_was_valid = child.valid
            if child_l1 is l1 and child.set_index == new_set:
                # Paper's *sameset*: the copy is already in the right
                # set — re-tag it in place, no write-back, no eviction.
                child.tag = new_tag
                child.valid = True
                child.swapped_valid = False
                l1.store.touch(child)
                self._count_synonym(child_was_valid, True, pblock)
                return child, True
            # Paper's *move*: the data migrates to the new location.
            victim = l1.victim(key)
            self._evict_l1(l1, victim)
            victim.fill(new_tag, r_slot, child.version)
            victim.dirty = child.dirty
            child.invalidate()
            sub.v_pointer = l1.slot(victim)
            l1.store.note_install(victim)
            self._count_synonym(child_was_valid, False, pblock)
            return victim, True

        if sub.buffer:
            if self._write_through:
                # Write-through data in flight: the level-2 copy is
                # stale, so fill (clean) from the pending entry and let
                # the write-through complete normally.
                entry = self.write_buffer.find(pblock)
                if entry is None:
                    raise ProtocolError(
                        "buffer bit set but no write-buffer entry",
                        access_index=self._refs,
                        pblock=pblock,
                    )
                victim = l1.victim(key)
                self._evict_l1(l1, victim)
                victim.fill(new_tag, r_slot, entry.version)
                sub.inclusion = True
                sub.v_pointer = l1.slot(victim)
                l1.store.note_install(victim)
                self.stats.counters.add("wt_buffer_forwards")
                return victim, True
            # Write-back data in flight: the only copy is in the write
            # buffer — cancel the write-back and restore the block
            # (still dirty) under the new address.
            entry = self.write_buffer.remove(pblock)
            if entry is None:
                raise ProtocolError(
                    "buffer bit set but no write-buffer entry",
                    access_index=self._refs,
                    pblock=pblock,
                )
            victim = l1.victim(key)
            self._evict_l1(l1, victim)
            victim.fill(new_tag, r_slot, entry.version)
            victim.dirty = True
            sub.buffer = False
            sub.inclusion = True
            sub.vdirty = True
            sub.v_pointer = l1.slot(victim)
            l1.store.note_install(victim)
            self.stats.counters.add("writeback_cancels")
            if self._tr_wb is not None:
                self._tr_wb.emit("writeback", "cancel", cpu=self.cpu, pblock=pblock)
            return victim, True

        if not self._inclusion:
            # No buffer bit without inclusion: the fill itself must
            # snoop the write buffer, or it would read a stale level-2
            # copy while the newest data is still in flight.
            entry = self.write_buffer.remove(pblock)
            if entry is not None:
                victim = l1.victim(key)
                self._evict_l1(l1, victim)
                victim.fill(new_tag, r_slot, entry.version)
                victim.dirty = True
                l1.store.note_install(victim)
                self.stats.counters.add("writeback_cancels")
                if self._tr_wb is not None:
                    self._tr_wb.emit(
                        "writeback", "cancel", cpu=self.cpu, pblock=pblock
                    )
                return victim, True

        # Plain supply from the level-2 data store.
        victim = l1.victim(key)
        self._evict_l1(l1, victim)
        victim.fill(new_tag, r_slot, sub.version)
        if self._inclusion:
            sub.inclusion = True
            sub.v_pointer = l1.slot(victim)
        l1.store.note_install(victim)
        return victim, False

    def _count_synonym(
        self, child_was_valid: bool, sameset: bool, pblock: int
    ) -> None:
        if child_was_valid:
            self.stats.counters.add(
                "synonym_sameset" if sameset else "synonym_moves"
            )
            if self._tr_syn is not None:
                self._tr_syn.emit(
                    "synonym",
                    "sameset" if sameset else "move",
                    cpu=self.cpu,
                    pblock=pblock,
                )
        else:
            self.stats.counters.add("swapped_restores")
            if self._tr_syn is not None:
                self._tr_syn.emit(
                    "synonym", "swapped_restore", cpu=self.cpu, pblock=pblock
                )

    # -- level-1 eviction and the write buffer ------------------------------------

    def _parent_of(self, block: CacheBlock) -> tuple[RCacheBlock, SubEntry, int]:
        """Dereference a level-1 block's r-pointer."""
        r_set, r_way, sub_index = block.r_pointer
        rblock = self.rcache.store.ways(r_set)[r_way]
        sub = rblock.subentries[sub_index]  # type: ignore[attr-defined]
        pblock = self.rcache.pblock_of(rblock, sub_index)  # type: ignore[arg-type]
        return rblock, sub, pblock  # type: ignore[return-value]

    def _evict_l1(self, l1: L1Cache, victim: CacheBlock) -> None:
        if not victim.present:
            return
        self.stats.counters.add("l1_evictions")
        if self._inclusion:
            _, sub, pblock = self._parent_of(victim)
            if victim.dirty:
                self._push_writeback(pblock, victim.version, victim.swapped_valid)
                sub.buffer = True
                sub.vdirty = False
            sub.inclusion = False
            sub.v_pointer = None
        elif victim.dirty:
            paddr = l1.config.address_of(victim.tag, victim.set_index)
            self._push_writeback(
                paddr >> self._sub_bits, victim.version, victim.swapped_valid
            )
        victim.invalidate()

    def _push_writeback(self, pblock: int, version: int, swapped: bool) -> None:
        if self.write_buffer.full:
            self.stats.counters.add("writeback_stalls")
            if self._tr_wb is not None:
                self._tr_wb.emit("writeback", "stall", cpu=self.cpu, pblock=pblock)
            self._drain_one()
        self.write_buffer.push(WriteBufferEntry(pblock, version, swapped))
        self.stats.counters.add("writebacks")
        if swapped:
            self.stats.counters.add("swapped_writebacks")
        if self._tr_wb is not None:
            self._tr_wb.emit(
                "writeback", "push", cpu=self.cpu, pblock=pblock, swapped=swapped
            )
        self._note_downstream_write()

    def _note_downstream_write(self) -> None:
        if self._last_writeback_ref is not None:
            interval = self._refs - self._last_writeback_ref
            if interval >= 1:
                self.stats.writeback_intervals.record(interval)
        self._last_writeback_ref = self._refs

    def _drain_one(self) -> None:
        entry = self.write_buffer.pop_oldest()
        found = self.rcache.lookup_sub_block(entry.pblock)
        if found is not None:
            _, sub = found
            sub.buffer = False
            # A write-update broadcast may have refreshed the level-2
            # copy past this queued write; never regress the version.
            if entry.version >= sub.version:
                sub.rdirty = True
                sub.version = entry.version
            return
        if self._inclusion:
            raise ProtocolError(
                "write-buffer entry has no level-2 parent",
                access_index=self._refs,
                pblock=entry.pblock,
            )
        self.bus.write_back(entry.pblock, entry.version)

    # -- level-2 miss path -----------------------------------------------------

    def _l2_miss_fill(
        self, paddr: int, kind: RefKind
    ) -> tuple[RCacheBlock, SubEntry]:
        victim = self.rcache.victim(paddr, prefer_unencumbered=self._inclusion)
        if victim.present:
            self._evict_l2(victim)
        n_sub = self.rcache.n_subentries
        base = paddr & ~(self.config.l2.block_size - 1)
        requested = self.rcache.sub_index(paddr)
        for i in range(n_sub):
            sub_paddr = base + i * self.rcache.sub_block_size
            pblock_i = sub_paddr >> self._sub_bits
            # Under write-invalidate a write miss fetches its sub-block
            # with read-modified-write; the update protocol reads the
            # block and broadcasts the new data afterwards instead.
            op = (
                BusOp.READ_MODIFIED_WRITE
                if (
                    kind is RefKind.WRITE
                    and i == requested
                    and not self._update_protocol
                )
                else BusOp.READ_MISS
            )
            result = self.bus.issue(BusTransaction(op, self.cpu, pblock_i))
            if result.version is None:
                raise ProtocolError(
                    f"{op.value} returned no data version",
                    access_index=self._refs,
                    pblock=pblock_i,
                )
            sub = victim.subentries[i]
            # A read-modified-write invalidates every other copy, so
            # the block arrives exclusive regardless of prior sharers.
            shared = result.shared and op is BusOp.READ_MISS
            sub.fill(result.version, shared)
        victim.tag = self.config.l2.tag(paddr)
        victim.refresh_valid()
        self.rcache.store.note_install(victim)
        return victim, victim.subentries[requested]

    def _evict_l2(self, rblock: RCacheBlock) -> None:
        self.stats.counters.add("l2_evictions")
        for index, sub in enumerate(rblock.subentries):
            if not sub.valid:
                continue
            pblock = self.rcache.pblock_of(rblock, index)
            # The inclusion and buffer bits are not exclusive: a
            # write-through level 1 holds a clean child (inclusion)
            # while its written-through data is still queued (buffer).
            # The pending entry is the newest copy, so it is flushed
            # first and supersedes any rdirty claim.
            if sub.buffer:
                entry = self.write_buffer.remove(pblock)
                if entry is None:
                    raise ProtocolError(
                        "buffer bit set but no write-buffer entry",
                        access_index=self._refs,
                        pblock=pblock,
                    )
                self.bus.write_back(pblock, entry.version)
            if sub.inclusion:
                child = self._child_of(sub, pblock)
                self.stats.counters.add("l1_inclusion_invalidations")
                if self._tr_incl is not None:
                    self._tr_incl.emit(
                        "inclusion",
                        "invalidate",
                        cpu=self.cpu,
                        pblock=pblock,
                        dirty=child.dirty,
                    )
                if child.dirty:
                    self.bus.write_back(pblock, child.version)
                elif sub.rdirty and not sub.buffer:
                    self.bus.write_back(pblock, sub.version)
                child.invalidate()
            elif sub.rdirty and not sub.buffer:
                self.bus.write_back(pblock, sub.version)
            sub.reset()
        rblock.invalidate()

    # -- bus-induced behaviour (snooping) ------------------------------------------

    def snoop(self, txn: BusTransaction) -> SnoopReply:
        """React to a coherence transaction issued by another CPU."""
        if self._inclusion:
            return self._snoop_shielded(txn)
        return self._snoop_unshielded(txn)

    def _snoop_shielded(self, txn: BusTransaction) -> SnoopReply:
        found = self.rcache.lookup_sub_block(txn.pblock)
        if found is None:
            # Inclusion guarantees no level-1 copy either: shielded.
            return SnoopReply(has_copy=False)
        rblock, sub = found
        reply = SnoopReply(has_copy=True)
        op = txn.op

        if op is BusOp.WRITE_UPDATE:
            if txn.version is None:
                raise ProtocolError(
                    "write-update snooped without a data version",
                    access_index=self._refs,
                    pblock=txn.pblock,
                )
            if sub.buffer and self._write_through:
                # Pending write-through data is not ownership: merge
                # the remote update into the queued entry.
                pending = self.write_buffer.find(txn.pblock)
                if pending is not None:
                    pending.version = txn.version
            elif sub.dirty_anywhere:
                raise ProtocolError(
                    "write-update for a block held dirty; updates only "
                    "target clean shared copies",
                    access_index=self._refs,
                    pblock=txn.pblock,
                )
            sub.version = txn.version
            sub.state = ShareState.SHARED
            if sub.inclusion:
                child = self._child_of(sub, txn.pblock)
                child.version = txn.version
                self.stats.counters.add("l1_coherence_updates")
                if self._tr_coh is not None:
                    self._tr_coh.emit(
                        "coherence", "update", cpu=self.cpu, pblock=txn.pblock
                    )
            return reply

        if op in (BusOp.READ_MISS, BusOp.READ_MODIFIED_WRITE):
            if sub.vdirty:
                child = self._child_of(sub, txn.pblock)
                self.stats.counters.add("l1_coherence_flushes")
                if self._tr_coh is not None:
                    self._tr_coh.emit(
                        "coherence", "flush", cpu=self.cpu, pblock=txn.pblock
                    )
                reply.supplied_version = child.version
                sub.version = child.version
                child.dirty = False
                sub.vdirty = False
                sub.rdirty = False
            elif sub.buffer:
                entry = self.write_buffer.remove(txn.pblock)
                if entry is None:
                    raise ProtocolError(
                        "buffer bit set but no write-buffer entry",
                        access_index=self._refs,
                        pblock=txn.pblock,
                    )
                self.stats.counters.add("l1_coherence_buffer_ops")
                if self._tr_coh is not None:
                    self._tr_coh.emit(
                        "coherence", "buffer_op", cpu=self.cpu, pblock=txn.pblock
                    )
                reply.supplied_version = entry.version
                sub.version = entry.version
                sub.buffer = False
                sub.rdirty = False
            elif sub.rdirty:
                reply.supplied_version = sub.version
                sub.rdirty = False
            sub.state = ShareState.SHARED

        if op in (BusOp.INVALIDATE, BusOp.READ_MODIFIED_WRITE):
            if op is BusOp.INVALIDATE and sub.dirty_anywhere:
                raise ProtocolError(
                    "invalidation for a block held dirty; the writer "
                    "should have issued a read-modified-write",
                    access_index=self._refs,
                    pblock=txn.pblock,
                )
            if sub.inclusion:
                child = self._child_of(sub, txn.pblock)
                child.invalidate()
                self.stats.counters.add("l1_coherence_invalidations")
                if self._tr_coh is not None:
                    self._tr_coh.emit(
                        "coherence", "invalidate", cpu=self.cpu, pblock=txn.pblock
                    )
            sub.reset()
            rblock.refresh_valid()
        return reply

    def _snoop_unshielded(self, txn: BusTransaction) -> SnoopReply:
        # Without inclusion the level-2 cache cannot prove the block is
        # absent from level 1, so every coherence transaction descends.
        self.stats.counters.add("l1_coherence_probes")
        if self._tr_coh is not None:
            self._tr_coh.emit(
                "coherence",
                "probe",
                cpu=self.cpu,
                pblock=txn.pblock,
                op=txn.op.value,
            )
        paddr = txn.pblock << self._sub_bits
        l1_hits = [
            (l1, block)
            for l1 in self._l1s
            for block in (l1.find_present(paddr),)
            if block is not None
        ]
        buffer_entry = self.write_buffer.find(txn.pblock)
        found = self.rcache.lookup_sub_block(txn.pblock)
        reply = SnoopReply(
            has_copy=bool(l1_hits) or buffer_entry is not None or found is not None
        )
        op = txn.op

        if op is BusOp.WRITE_UPDATE:
            if txn.version is None:
                raise ProtocolError(
                    "write-update snooped without a data version",
                    access_index=self._refs,
                    pblock=txn.pblock,
                )
            if buffer_entry is not None and self._write_through:
                buffer_entry.version = txn.version
            else:
                held_dirty = (
                    any(b.dirty for _, b in l1_hits)
                    or buffer_entry is not None
                    or (found is not None and found[1].rdirty)
                )
                if held_dirty:
                    raise ProtocolError(
                        "write-update for a block held dirty",
                        access_index=self._refs,
                        pblock=txn.pblock,
                    )
            for _, block in l1_hits:
                block.version = txn.version
            if found is not None:
                found[1].version = txn.version
                found[1].state = ShareState.SHARED
            return reply

        if op in (BusOp.READ_MISS, BusOp.READ_MODIFIED_WRITE):
            dirty_l1 = next(
                ((l1, b) for l1, b in l1_hits if b.dirty), None
            )
            if dirty_l1 is not None:
                block = dirty_l1[1]
                reply.supplied_version = block.version
                block.dirty = False
            elif buffer_entry is not None:
                self.write_buffer.remove(txn.pblock)
                reply.supplied_version = buffer_entry.version
                buffer_entry = None
            elif found is not None and found[1].rdirty:
                reply.supplied_version = found[1].version
            if found is not None:
                sub = found[1]
                if reply.supplied_version is not None:
                    sub.version = reply.supplied_version
                sub.rdirty = False
                sub.state = ShareState.SHARED

        if op in (BusOp.INVALIDATE, BusOp.READ_MODIFIED_WRITE):
            if op is BusOp.INVALIDATE:
                held_dirty = (
                    any(b.dirty for _, b in l1_hits)
                    or buffer_entry is not None
                    or (found is not None and found[1].rdirty)
                )
                if held_dirty:
                    raise ProtocolError(
                        "invalidation for a block held dirty",
                        access_index=self._refs,
                        pblock=txn.pblock,
                    )
            for _, block in l1_hits:
                block.invalidate()
            if buffer_entry is not None:
                self.write_buffer.remove(txn.pblock)
            if found is not None:
                rblock, sub = found
                sub.reset()
                rblock.refresh_valid()
        return reply
