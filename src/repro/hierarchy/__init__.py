"""The paper's contribution: two-level virtual-real cache hierarchies."""

from .checker import (
    check_all,
    check_buffer_bits,
    check_coherence,
    check_pointer_consistency,
    check_single_copy,
)
from .config import (
    HierarchyConfig,
    HierarchyKind,
    Protocol,
    min_l2_associativity_for_strict_inclusion,
)
from .l1 import L1Cache
from .rcache import RCache, RCacheBlock, SubEntry
from .single import SingleLevelCache
from .stats import HierarchyStats
from .twolevel import AccessResult, Outcome, TwoLevelHierarchy

__all__ = [
    "AccessResult",
    "HierarchyConfig",
    "HierarchyKind",
    "HierarchyStats",
    "L1Cache",
    "Outcome",
    "Protocol",
    "RCache",
    "RCacheBlock",
    "SingleLevelCache",
    "SubEntry",
    "TwoLevelHierarchy",
    "check_all",
    "check_buffer_bits",
    "check_coherence",
    "check_pointer_consistency",
    "check_single_copy",
    "min_l2_associativity_for_strict_inclusion",
]
