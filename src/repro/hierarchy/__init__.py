"""The paper's contribution: two-level virtual-real cache hierarchies."""

from .checker import (
    Violation,
    check_all,
    check_buffer_bits,
    check_coherence,
    check_pointer_consistency,
    check_single_copy,
    check_tlb,
    scan_buffer_bits,
    scan_hierarchy,
    scan_l1_set,
    scan_l2_set,
    scan_single_copy,
    scan_tlb,
)
from .config import (
    HierarchyConfig,
    HierarchyKind,
    Protocol,
    min_l2_associativity_for_strict_inclusion,
)
from .l1 import L1Cache
from .rcache import RCache, RCacheBlock, SubEntry
from .single import SingleLevelCache
from .stats import HierarchyStats
from .twolevel import AccessResult, Outcome, TwoLevelHierarchy

__all__ = [
    "AccessResult",
    "HierarchyConfig",
    "HierarchyKind",
    "HierarchyStats",
    "L1Cache",
    "Outcome",
    "Protocol",
    "RCache",
    "RCacheBlock",
    "SingleLevelCache",
    "SubEntry",
    "TwoLevelHierarchy",
    "Violation",
    "check_all",
    "check_buffer_bits",
    "check_coherence",
    "check_pointer_consistency",
    "check_single_copy",
    "check_tlb",
    "min_l2_associativity_for_strict_inclusion",
    "scan_buffer_bits",
    "scan_hierarchy",
    "scan_l1_set",
    "scan_l2_set",
    "scan_single_copy",
    "scan_tlb",
]
