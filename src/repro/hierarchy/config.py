"""Configuration of a two-level hierarchy."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..cache.config import CacheConfig
from ..coherence.protocol import WritePolicy
from ..common.errors import ConfigurationError


class Protocol(enum.Enum):
    """Bus coherence protocol run at the second level.

    The paper assumes write-invalidate "although our scheme will also
    work for other protocols"; the write-update variant exists to test
    that claim.
    """

    WRITE_INVALIDATE = "invalidate"
    WRITE_UPDATE = "update"


class HierarchyKind(enum.Enum):
    """The three organisations the paper compares."""

    VR = "vr"                    # virtual L1, physical L2, inclusion
    RR_INCLUSION = "rr-incl"     # physical L1 and L2, inclusion imposed
    RR_NO_INCLUSION = "rr-noincl"  # physical L1 and L2, no inclusion

    @property
    def virtual_l1(self) -> bool:
        """True when level 1 is virtually addressed."""
        return self is HierarchyKind.VR

    @property
    def inclusion(self) -> bool:
        """True when the level-2 cache shields level 1 (inclusion held)."""
        return self is not HierarchyKind.RR_NO_INCLUSION


@dataclass(frozen=True)
class HierarchyConfig:
    """Everything needed to instantiate one processor's hierarchy.

    Attributes:
        l1: level-1 geometry (for split I/D, the size of *each half*
            is ``l1.size // 2`` — pass the combined size here).
        l2: level-2 geometry.
        kind: organisation (V-R, R-R with or without inclusion).
        split_l1: split level 1 into equal I and D caches.
        write_buffer_capacity: entries in the L1→L2 write buffer.
        page_size: virtual memory page size (pointer-width bookkeeping).
        l2_replacement: policy name for level 2 ("lru"/"fifo"/"random").

    >>> cfg = HierarchyConfig.sized("16K", "256K")
    >>> cfg.l1.n_sets
    1024
    """

    l1: CacheConfig
    l2: CacheConfig
    kind: HierarchyKind = HierarchyKind.VR
    split_l1: bool = False
    write_buffer_capacity: int = 1
    page_size: int = 4096
    l1_replacement: str = "lru"
    l2_replacement: str = "lru"
    # Section 2's alternative to flushing the V-cache at context
    # switches: tag every V-cache entry with a process identifier.
    # The paper rejects it (no hit-ratio gain for small caches, plus
    # purge complexity when TLB entries or pids are recycled); the
    # option exists so that trade-off can be measured.  VR only.
    l1_pid_tags: bool = False
    # Level-1 write policy.  The paper argues for write-back (section
    # 2); the write-through alternative (no write-allocate, writes
    # buffered toward level 2) exists so the buffer-pressure and
    # coherence costs the paper cites can be measured.
    l1_write_policy: WritePolicy = WritePolicy.WRITE_BACK
    # Coherence protocol at the second level.
    protocol: Protocol = Protocol.WRITE_INVALIDATE

    @classmethod
    def sized(
        cls,
        l1_size: int | str,
        l2_size: int | str,
        block_size: int | str = 16,
        l2_block_size: int | str | None = None,
        kind: HierarchyKind = HierarchyKind.VR,
        l1_associativity: int = 1,
        l2_associativity: int = 1,
        **kwargs: object,
    ) -> "HierarchyConfig":
        """Convenience constructor from size spellings like "16K"."""
        l1 = CacheConfig.create(l1_size, block_size, l1_associativity)
        l2 = CacheConfig.create(
            l2_size,
            l2_block_size if l2_block_size is not None else block_size,
            l2_associativity,
        )
        return cls(l1=l1, l2=l2, kind=kind, **kwargs)  # type: ignore[arg-type]

    def __post_init__(self) -> None:
        if self.l2.size < self.l1.size:
            raise ConfigurationError(
                f"level 2 ({self.l2.size}B) smaller than level 1 ({self.l1.size}B)"
            )
        if self.l2.block_size % self.l1.block_size:
            raise ConfigurationError(
                "level-2 block size must be a multiple of level-1 block size"
            )
        if self.l2.block_size // self.l1.block_size > 64:
            raise ConfigurationError("more than 64 subentries per level-2 block")
        if self.split_l1 and self.l1.size // 2 < self.l1.block_size:
            raise ConfigurationError("level 1 too small to split into I and D")
        if self.write_buffer_capacity < 1:
            raise ConfigurationError("write buffer capacity must be >= 1")
        if self.l1_pid_tags and not self.kind.virtual_l1:
            raise ConfigurationError(
                "pid tags only apply to a virtually-addressed level 1"
            )

    @property
    def subentries_per_l2_block(self) -> int:
        """Level-1-sized sub-blocks per level-2 block."""
        return self.l2.block_size // self.l1.block_size

    def l1_half(self) -> CacheConfig:
        """Geometry of one half of a split level 1."""
        return CacheConfig(
            self.l1.size // 2, self.l1.block_size, self.l1.associativity
        )

    def describe(self) -> str:
        """Short label like 'vr 16K/256K'."""
        split = " split-I/D" if self.split_l1 else ""
        return (
            f"{self.kind.value} {self.l1.describe()} + {self.l2.describe()}{split}"
        )


def min_l2_associativity_for_strict_inclusion(
    l1: CacheConfig, l2: CacheConfig, page_size: int = 4096
) -> int:
    """Section 2's bound: the level-2 associativity that guarantees
    inclusion under the *strict* replacement rule (always replace a
    block absent from level 1).

    ::

        A2 >= size(1)/pagesize * B2/B1

    valid in the usual situation ``S2 > S1``, ``B2 >= B1``,
    ``size(2) > size(1)`` and ``B1*S1 >= pagesize``.  The paper's
    example: a 16K level 1 with 4K pages and B2 = 4*B1 forces a 16-way
    level 2 — which is why the paper relaxes the replacement rule
    (prefer unencumbered victims, else back-invalidate) instead.
    """
    if l2.block_size < l1.block_size:
        raise ConfigurationError("bound assumes B2 >= B1")
    if l1.block_size * l1.n_sets < page_size:
        raise ConfigurationError(
            "bound assumes the level-1 index reaches past the page offset "
            "(B1*S1 >= pagesize); below that, inclusion is free"
        )
    blocks_ratio = l2.block_size // l1.block_size
    return max(1, (l1.size // page_size) * blocks_ratio)
