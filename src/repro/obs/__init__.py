"""Observability: metrics registry, event tracing, manifests, logging.

This package is the uniform instrumentation surface for the
simulator.  Counters stay in the hot-path-friendly
:class:`~repro.common.stats.CounterBag` storage they always had; the
:class:`MetricsRegistry` is the *query* layer that projects them into
one dotted namespace (``l1.hit.read``, ``r.synonym_move``,
``tlb.miss``, ``bus.invalidate``, …) that every experiment table and
the CLI's ``--metrics-out`` snapshot share.

A session-global :class:`EventTracer` can be attached with
:func:`set_tracer`; simulator components pick it up at construction
time and pre-resolve their categories, so tracing off costs nothing.
"""

from __future__ import annotations

from .log import LEVELS, configure, get_logger
from .manifest import RunManifest, git_revision
from .metrics import (
    COHERENCE_TO_L1_METRICS,
    HIERARCHY_METRIC_NAMES,
    RUNNER_METRIC_NAMES,
    SANITIZE_METRIC_NAMES,
    SERVE_METRIC_NAMES,
    TLB_METRIC_NAMES,
    CounterMetric,
    HistogramMetric,
    MetricsRegistry,
    TimerMetric,
    registry_from_result,
    validate_name,
)
from .recorder import RunRecorder, get_recorder
from .tracing import (
    CATEGORIES,
    EventTracer,
    TraceEvent,
    parse_categories,
    read_jsonl,
)

_TRACER: EventTracer | None = None


def set_tracer(tracer: EventTracer | None) -> EventTracer | None:
    """Install (or clear) the session tracer; returns the previous one.

    Simulations built *after* this call pick the tracer up; already
    constructed hierarchies are unaffected.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def get_tracer() -> EventTracer | None:
    """The session tracer, or None when tracing is off."""
    return _TRACER


__all__ = [
    "CATEGORIES",
    "COHERENCE_TO_L1_METRICS",
    "HIERARCHY_METRIC_NAMES",
    "LEVELS",
    "RUNNER_METRIC_NAMES",
    "SANITIZE_METRIC_NAMES",
    "SERVE_METRIC_NAMES",
    "TLB_METRIC_NAMES",
    "CounterMetric",
    "EventTracer",
    "HistogramMetric",
    "MetricsRegistry",
    "RunManifest",
    "RunRecorder",
    "TimerMetric",
    "TraceEvent",
    "configure",
    "get_logger",
    "get_recorder",
    "get_tracer",
    "git_revision",
    "parse_categories",
    "read_jsonl",
    "registry_from_result",
    "set_tracer",
    "validate_name",
]
