"""Low-overhead structured event tracing for the simulator.

The hierarchy's interesting transitions — synonym detection and
moves, inclusion-forced invalidations, swapped-valid lazy write-backs,
coherence reactions, fault injections, guard interventions — emit
typed :class:`TraceEvent` records through an :class:`EventTracer`.

Overhead discipline:

* **Off by default.**  No tracer attached means every emit site is a
  single ``is None`` test on a pre-resolved attribute, and the
  per-access fast path (`TwoLevelHierarchy.access`) carries no test
  at all — events only originate from the miss/eviction/snoop paths.
* **Category pre-resolution.**  Components don't filter per event;
  they cache ``tracer if tracer.wants(category) else None`` per
  category when the tracer is attached, so a filtered-out category
  costs the same as tracing off.
* **Bounded memory.**  Events land in a ring buffer (``capacity``
  newest events); an optional JSONL sink streams *every* event to
  disk, so the file and the per-event-type counts are complete even
  when the ring has wrapped.

Events round-trip through JSONL (:meth:`EventTracer.write_jsonl`,
:func:`read_jsonl`), one JSON object per line, making traces greppable
and diffable across runs.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import IO, Any

from ..common.errors import ConfigurationError
from ..common.stats import CounterBag

#: Every category an event may carry.  ``--trace=<cat>,<cat>`` filters
#: against these.
CATEGORIES: frozenset[str] = frozenset(
    {
        "synonym",  # V-R synonym detection: sameset re-tags and moves
        "inclusion",  # inclusion-forced level-1 invalidations
        "writeback",  # write-buffer pushes (incl. swapped-valid), cancels
        "coherence",  # snooped transactions percolating into a hierarchy
        "fault",  # injected metadata/bus faults
        "guard",  # invariant-guard detections, repairs, replays
        "runner",  # supervisor: retries, timeouts, quarantines, pool rebuilds
        "serve",  # service: admission, coalescing, shedding, breaker moves
    }
)


def parse_categories(spec: str) -> frozenset[str]:
    """Parse a ``--trace`` argument: ``"all"`` or a comma list."""
    if spec in ("", "all"):
        return CATEGORIES
    chosen = frozenset(part.strip() for part in spec.split(",") if part.strip())
    unknown = chosen - CATEGORIES
    if unknown:
        raise ConfigurationError(
            f"unknown trace categories {sorted(unknown)}; "
            f"choose from {sorted(CATEGORIES)}"
        )
    return chosen


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace event.

    Attributes:
        seq: 1-based position in the run's event stream.
        category: one of :data:`CATEGORIES`.
        name: event type within the category (e.g. ``"move"``).
        cpu: originating CPU, or -1 when not CPU-specific.
        fields: event-specific payload (JSON-serialisable scalars).
    """

    seq: int
    category: str
    name: str
    cpu: int = -1
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """The JSONL wire form."""
        out: dict[str, Any] = {
            "seq": self.seq,
            "cat": self.category,
            "name": self.name,
            "cpu": self.cpu,
        }
        if self.fields:
            out["fields"] = self.fields
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceEvent":
        """Rebuild an event from its wire form."""
        return cls(
            seq=data["seq"],
            category=data["cat"],
            name=data["name"],
            cpu=data.get("cpu", -1),
            fields=data.get("fields", {}),
        )


class EventTracer:
    """Collects :class:`TraceEvent` records with bounded memory.

    Attributes:
        categories: the categories this tracer accepts.
        counts: events per ``"category.name"`` — complete even after
            the ring wraps.
        emitted: total accepted events (equals the last seq).
    """

    def __init__(
        self,
        categories: frozenset[str] | None = None,
        capacity: int = 65536,
        sink: IO[str] | None = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"ring capacity must be >= 1: {capacity}")
        chosen = CATEGORIES if categories is None else frozenset(categories)
        unknown = chosen - CATEGORIES
        if unknown:
            raise ConfigurationError(
                f"unknown trace categories {sorted(unknown)}; "
                f"choose from {sorted(CATEGORIES)}"
            )
        self.categories = chosen
        self.capacity = capacity
        self.counts = CounterBag()
        self.emitted = 0
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)
        self._sink = sink

    def wants(self, category: str) -> bool:
        """True when events of *category* would be recorded."""
        return category in self.categories

    def emit(self, category: str, name: str, cpu: int = -1, **fields: Any) -> None:
        """Record one event (dropped silently if filtered out)."""
        if category not in self.categories:
            return
        self.emitted += 1
        event = TraceEvent(self.emitted, category, name, cpu, fields)
        self._ring.append(event)
        self.counts.add(f"{category}.{name}")
        if self._sink is not None:
            self._sink.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")

    def events(self) -> list[TraceEvent]:
        """The newest ``capacity`` events, oldest first."""
        return list(self._ring)

    def count(self, category: str, name: str) -> int:
        """How many ``category.name`` events were emitted (ever)."""
        return self.counts[f"{category}.{name}"]

    def write_jsonl(self, path: str) -> int:
        """Dump the ring's events to *path*; returns events written.

        When a streaming sink is attached the sink file is already the
        complete record — this writes just the retained window.
        """
        events = self.events()
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        return len(events)

    def close(self) -> None:
        """Flush and drop the sink (the tracer stays usable, unsunk)."""
        if self._sink is not None:
            self._sink.flush()
            self._sink = None

    def __repr__(self) -> str:
        return (
            f"EventTracer({sorted(self.categories)}, "
            f"emitted={self.emitted}, retained={len(self._ring)})"
        )


def read_jsonl(path: str) -> list[TraceEvent]:
    """Load a JSONL event file written by a sink or :meth:`write_jsonl`."""
    events: list[TraceEvent] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_dict(json.loads(line)))
    return events
