"""Run-level metrics accumulation across simulations.

The experiment layer executes many simulations per CLI invocation —
some fresh, some replayed from the in-process memo or the disk cache,
some duplicated across experiments that share a configuration.  The
:class:`RunRecorder` collects exactly one :class:`SimulationResult`
per *unique* simulation (keyed by the same cache key the runner uses)
and projects them all into a single merged
:class:`~repro.obs.metrics.MetricsRegistry`.

Deduplication is what makes the merged snapshot deterministic across
``--jobs`` settings: a worker pool resolves each unique simulation
once, a serial loop may *ask* for it several times but records it
once, so both produce byte-identical snapshots.
"""

from __future__ import annotations

from typing import Any

from .metrics import MetricsRegistry, registry_from_result


class RunRecorder:
    """Accumulates unique simulation results for metrics merging."""

    def __init__(self) -> None:
        self._results: dict[Any, Any] = {}

    def record(self, key: Any, result: Any) -> None:
        """Remember *result* under *key*; first write wins."""
        self._results.setdefault(key, result)

    def __len__(self) -> int:
        return len(self._results)

    def registry(self) -> MetricsRegistry:
        """Merge every recorded result into one registry.

        Results are folded in key-sorted order so the merged snapshot
        is independent of execution (and completion) order.
        """
        merged = MetricsRegistry()
        for key in sorted(self._results, key=repr):
            merged.merge(registry_from_result(self._results[key]))
        return merged

    def forget(self, key: Any) -> None:
        """Drop one recorded result (no-op when absent).

        The serving layer evicts delivered results so a long-lived
        process does not accumulate every simulation it ever served.
        """
        self._results.pop(key, None)

    def clear(self) -> None:
        """Forget everything (used between CLI invocations)."""
        self._results.clear()


_RECORDER = RunRecorder()


def get_recorder() -> RunRecorder:
    """The process-wide recorder the experiment layer feeds."""
    return _RECORDER
