"""Structured logging for the CLI and library diagnostics.

Everything the simulator logs hangs off the ``repro`` logger
hierarchy (``repro.cli``, ``repro.runner``, ``repro.faults`` …), so
one :func:`configure` call controls the whole tree.  Library modules
call :func:`get_logger` and never install handlers themselves — an
embedding application keeps full control — while the CLI installs a
single stderr handler whose level is the ``--log-level`` flag.

Experiment *output* (rendered tables) is a product, not a diagnostic:
it still goes to stdout.  Status lines, runner reports and guard
warnings go through here, which is what makes ``--log-level error``
actually silence them.
"""

from __future__ import annotations

import logging
import sys
from typing import TextIO

#: Accepted ``--log-level`` spellings.
LEVELS = ("debug", "info", "warning", "error")

_FORMAT = "%(levelname)s %(name)s: %(message)s"


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` tree (``get_logger("cli")`` ->
    ``repro.cli``).  Pass a dotted name already starting with
    ``repro`` to address an existing channel directly."""
    if name == "repro" or name.startswith("repro."):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")


def configure(level: str = "info", stream: TextIO | None = None) -> logging.Logger:
    """Install one stderr handler on the ``repro`` root logger.

    Idempotent: repeated calls replace the previous handler rather
    than stacking duplicates (the CLI may be invoked many times in one
    process, e.g. under tests).  Returns the root ``repro`` logger.
    """
    if level not in LEVELS:
        raise ValueError(f"log level must be one of {LEVELS}, got {level!r}")
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_cli", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler._repro_cli = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level.upper())
    # The CLI owns diagnostics: don't duplicate through the root logger.
    root.propagate = False
    return root
