"""The unified metrics registry: one namespace over every counter.

Components keep collecting into their hot-path-friendly
:class:`~repro.common.stats.CounterBag` objects (a dict increment is
the cheapest thing Python can do per access); this module is the
*query* layer that projects those scattered bags into one dotted
namespace — ``l1.hit.read``, ``r.synonym_move``, ``tlb.miss``,
``bus.invalidate``, ``wb.swapped_push`` — so every experiment table,
the CLI's ``--metrics-out`` snapshot and the run manifest all speak
the same metric names.

Three typed metric kinds exist:

* :class:`CounterMetric` — a monotonically growing integer.
* :class:`HistogramMetric` — integer buckets with a catch-all top
  bucket (the shape of the paper's inter-write-interval tables).
* :class:`TimerMetric` — accumulated wall-clock seconds with a lap
  count.  Timers are deliberately *excluded* from
  :func:`registry_from_result`: wall-clock is nondeterministic, and
  metric snapshots must be bit-identical across ``--jobs`` settings.

Registries merge (worker metrics fold into the parent's registry) and
round-trip through plain JSON dicts via :meth:`MetricsRegistry.snapshot`
and :meth:`MetricsRegistry.from_snapshot`.
"""

from __future__ import annotations

import re
from collections import Counter as _Counter
from collections.abc import Iterable
from typing import Any

from ..common.errors import ConfigurationError

#: Metric names are dotted paths: at least two lowercase segments.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")


def validate_name(name: str) -> str:
    """Return *name* if it is a well-formed dotted metric name."""
    if not _NAME_RE.match(name):
        raise ConfigurationError(
            f"bad metric name {name!r}: expected dotted lowercase segments "
            "like 'l1.hit.read'"
        )
    return name


class CounterMetric:
    """A named, monotonically growing integer."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (negative amounts are rejected)."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"CounterMetric({self.name}={self.value})"


class HistogramMetric:
    """Integer-interval buckets ``1..top-1`` plus a catch-all top bucket."""

    __slots__ = ("name", "top", "buckets", "top_count", "observations")

    kind = "histogram"

    def __init__(self, name: str, top: int = 10) -> None:
        if top < 2:
            raise ValueError(f"histogram {name}: top must be >= 2, got {top}")
        self.name = name
        self.top = top
        self.buckets: _Counter[int] = _Counter()
        self.top_count = 0
        self.observations = 0

    def record(self, value: int, count: int = 1) -> None:
        """Record *value* observed *count* times."""
        if value < 1:
            raise ValueError(f"histogram {self.name}: value must be >= 1")
        self.observations += count
        if value >= self.top:
            self.top_count += count
        else:
            self.buckets[value] += count

    def merge(self, other: "HistogramMetric") -> None:
        """Fold *other* into this histogram (tops must agree)."""
        if other.top != self.top:
            raise ValueError(
                f"histogram {self.name}: cannot merge top={other.top} "
                f"into top={self.top}"
            )
        self.buckets.update(other.buckets)
        self.top_count += other.top_count
        self.observations += other.observations

    def as_dict(self) -> dict[str, int]:
        """JSON-friendly snapshot: bucket label -> count."""
        out = {str(i): self.buckets.get(i, 0) for i in range(1, self.top)}
        out[f"{self.top}+"] = self.top_count
        return out

    def __repr__(self) -> str:
        return f"HistogramMetric({self.name}, n={self.observations})"


class TimerMetric:
    """Accumulated seconds plus a lap count."""

    __slots__ = ("name", "seconds", "laps")

    kind = "timer"

    def __init__(self, name: str) -> None:
        self.name = name
        self.seconds = 0.0
        self.laps = 0

    def add(self, seconds: float) -> None:
        """Record one lap of *seconds*."""
        if seconds < 0:
            raise ValueError(f"timer {self.name}: negative lap {seconds}")
        self.seconds += seconds
        self.laps += 1

    def __repr__(self) -> str:
        return f"TimerMetric({self.name}, {self.seconds:.3f}s/{self.laps})"


class MetricsRegistry:
    """Typed metrics under one dotted namespace.

    >>> reg = MetricsRegistry()
    >>> reg.inc("l1.hit.read", 3)
    >>> reg.value("l1.hit.read")
    3
    >>> reg.total(prefix="l1.")
    3
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}

    # -- typed access ------------------------------------------------------

    def _get_or_create(self, name: str, cls: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(validate_name(name))
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ConfigurationError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"  # type: ignore[attr-defined]
            )
        return metric

    def counter(self, name: str) -> CounterMetric:
        """The counter *name*, created on first use."""
        return self._get_or_create(name, CounterMetric)

    def histogram(self, name: str, top: int = 10) -> HistogramMetric:
        """The histogram *name*, created on first use."""
        metric = self._get_or_create(name, HistogramMetric)
        if metric.top != top:
            raise ConfigurationError(
                f"histogram {name!r} exists with top={metric.top}, not {top}"
            )
        return metric

    def timer(self, name: str) -> TimerMetric:
        """The timer *name*, created on first use."""
        return self._get_or_create(name, TimerMetric)

    def inc(self, name: str, amount: int = 1) -> None:
        """Shorthand for ``counter(name).inc(amount)``."""
        self.counter(name).inc(amount)

    # -- queries -----------------------------------------------------------

    def names(self, prefix: str = "") -> list[str]:
        """Metric names (optionally under *prefix*), sorted."""
        return sorted(n for n in self._metrics if n.startswith(prefix))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def value(self, name: str) -> int:
        """A counter's value; 0 when the counter never fired."""
        metric = self._metrics.get(name)
        if metric is None:
            return 0
        if not isinstance(metric, CounterMetric):
            raise ConfigurationError(f"metric {name!r} is not a counter")
        return metric.value

    def total(self, *names: str, prefix: str | None = None) -> int:
        """Sum of the named counters, plus every counter under *prefix*."""
        total = sum(self.value(name) for name in names)
        if prefix is not None:
            total += sum(
                metric.value
                for name, metric in self._metrics.items()
                if name.startswith(prefix) and isinstance(metric, CounterMetric)
            )
        return total

    # -- merge and snapshot ---------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold every metric of *other* into this registry."""
        for name, metric in other._metrics.items():
            if isinstance(metric, CounterMetric):
                self.counter(name).inc(metric.value)
            elif isinstance(metric, HistogramMetric):
                self.histogram(name, top=metric.top).merge(metric)
            elif isinstance(metric, TimerMetric):
                mine = self.timer(name)
                mine.seconds += metric.seconds
                mine.laps += metric.laps

    def snapshot(self) -> dict[str, Any]:
        """A deterministic, JSON-ready view of every metric.

        Keys are sorted, so two registries holding the same values
        serialise to byte-identical JSON — the worker-merge tests rely
        on this.
        """
        counters: dict[str, int] = {}
        histograms: dict[str, dict[str, int]] = {}
        timers: dict[str, dict[str, float]] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, CounterMetric):
                counters[name] = metric.value
            elif isinstance(metric, HistogramMetric):
                histograms[name] = metric.as_dict()
            else:
                timers[name] = {
                    "seconds": round(metric.seconds, 6),
                    "laps": metric.laps,
                }
        return {
            "counters": counters,
            "histograms": histograms,
            "timers": timers,
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output."""
        reg = cls()
        for name, value in snapshot.get("counters", {}).items():
            reg.counter(name).inc(value)
        for name, buckets in snapshot.get("histograms", {}).items():
            top = max(
                (int(label[:-1]) for label in buckets if label.endswith("+")),
                default=10,
            )
            hist = reg.histogram(name, top=top)
            for label, count in buckets.items():
                if count == 0:
                    continue
                hist.record(top if label.endswith("+") else int(label), count)
        for name, timing in snapshot.get("timers", {}).items():
            timer = reg.timer(name)
            timer.seconds = float(timing["seconds"])
            timer.laps = int(timing["laps"])
        return reg

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"


# -- canonical namespace over the simulator's counters ----------------------

#: Hierarchy counter -> canonical metric name.  Every counter a
#: :class:`~repro.hierarchy.stats.HierarchyStats` can hold appears
#: here; a counter missing from the map lands under ``misc.`` so it is
#: never silently dropped (and a test asserts standard runs produce no
#: ``misc.`` metrics).
HIERARCHY_METRIC_NAMES: dict[str, str] = {
    "l1_hits_i": "l1.hit.instr",
    "l1_hits_r": "l1.hit.read",
    "l1_hits_w": "l1.hit.write",
    "l1_misses_i": "l1.miss.instr",
    "l1_misses_r": "l1.miss.read",
    "l1_misses_w": "l1.miss.write",
    "l1_evictions": "l1.eviction",
    "swapped_restores": "l1.swapped_restore",
    "l1_coherence_invalidations": "l1.coherence.invalidate",
    "l1_coherence_flushes": "l1.coherence.flush",
    "l1_coherence_buffer_ops": "l1.coherence.buffer_op",
    "l1_coherence_probes": "l1.coherence.probe",
    "l1_coherence_updates": "l1.coherence.update",
    "l1_inclusion_invalidations": "l1.inclusion.invalidate",
    "l2_hits": "r.hit",
    "l2_misses": "r.miss",
    "l2_evictions": "r.eviction",
    "synonym_moves": "r.synonym_move",
    "synonym_sameset": "r.synonym_sameset",
    "context_switches": "cpu.context_switch",
    "swapped_blocks": "cpu.swapped_block",
    "writebacks": "wb.push",
    "swapped_writebacks": "wb.swapped_push",
    "writeback_stalls": "wb.stall",
    "writeback_cancels": "wb.cancel",
    "wt_writes": "wb.wt_write",
    "wt_write_merges": "wb.wt_merge",
    "wt_synonym_updates": "wb.wt_synonym_update",
    "wt_buffer_forwards": "wb.wt_forward",
    "guard_violations": "guard.violation",
    "guard_repairs": "guard.repair",
    "guard_logged_violations": "guard.logged_violation",
    "repair_replays": "guard.replay",
}

#: TLB counter -> canonical metric name.
TLB_METRIC_NAMES: dict[str, str] = {
    "hits": "tlb.hit",
    "misses": "tlb.miss",
    "evictions": "tlb.eviction",
    "flushes": "tlb.flush",
    "flushed_entries": "tlb.flushed_entry",
    "selective_flushes": "tlb.selective_flush",
    "scrubbed_entries": "tlb.scrubbed_entry",
}

#: Resilience events the experiment supervisor counts
#: (``repro.runner.supervisor``).  These are *orchestrator* metrics —
#: they never appear in a :class:`SimulationResult` and are only
#: non-zero when a run actually hit failures, so chaos-free snapshots
#: stay byte-identical across ``--jobs`` settings.
RUNNER_METRIC_NAMES: tuple[str, ...] = (
    "runner.retry",
    "runner.timeout",
    "runner.quarantine",
    "runner.pool_rebuild",
)

#: Request-lifecycle events the simulation service counts
#: (``repro.serve``).  Like the runner metrics these never appear in a
#: :class:`SimulationResult`; they describe how the service treated
#: traffic: admitted into the scheduler, coalesced onto an in-flight
#: duplicate, answered from the disk cache, shed at the admission
#: queue or rate limiter, expired against a client deadline, rejected
#: in degraded (breaker-open) mode, or completed/failed outright.
SERVE_METRIC_NAMES: tuple[str, ...] = (
    "serve.admitted",
    "serve.coalesced",
    "serve.cache_hit",
    "serve.completed",
    "serve.failed",
    "serve.shed",
    "serve.rate_limited",
    "serve.deadline_exceeded",
    "serve.degraded",
    "serve.breaker_open",
    "serve.breaker_recovered",
    "serve.batcher_died",
    "serve.drained",
    "serve.loop_stall",
)

#: Events the runtime sanitizers count (``repro.analysis.runtime``).
#: ``sanitize.determinism_violation`` only moves when a
#: :class:`~repro.analysis.runtime.DeterminismGuard` in ``count`` mode
#: observes a nondeterminism source being read from guarded code;
#: ``serve.loop_stall`` (above, a serve metric) is its event-loop
#: sibling from :class:`~repro.analysis.runtime.LoopStallWatchdog`.
SANITIZE_METRIC_NAMES: tuple[str, ...] = (
    "sanitize.determinism_violation",
)

#: The coherence messages Tables 11-13 count as "percolated to level 1"
#: (note ``l1.coherence.update`` is excluded: the paper counts update
#: broadcasts separately from invalidation/flush traffic).
COHERENCE_TO_L1_METRICS: tuple[str, ...] = (
    "l1.coherence.invalidate",
    "l1.coherence.flush",
    "l1.coherence.buffer_op",
    "l1.coherence.probe",
    "l1.inclusion.invalidate",
)


def _fold_bag(
    registry: MetricsRegistry, counts: dict[str, int], names: dict[str, str]
) -> None:
    for raw, amount in counts.items():
        if amount == 0:
            continue
        registry.inc(names.get(raw, f"misc.{raw}"), amount)


def registry_from_result(result: Any, cpu: int | None = None) -> MetricsRegistry:
    """Project one :class:`SimulationResult` into the unified namespace.

    *result* is duck-typed (``per_cpu``, ``tlb_per_cpu``,
    ``bus_transactions``, ``refs_processed``) to keep this module free
    of simulator imports.  With *cpu*, only that CPU's hierarchy and
    TLB counters are included; machine-shared metrics (``bus.*`` and
    ``sim.refs``) appear only in the machine-wide (``cpu=None``) view.

    Wall-clock timings are deliberately omitted — see the module
    docstring.
    """
    registry = MetricsRegistry()
    per_cpu = result.per_cpu if cpu is None else [result.per_cpu[cpu]]
    tlbs: Iterable[dict[str, int]] = getattr(result, "tlb_per_cpu", ())
    if cpu is not None:
        all_tlbs = list(tlbs)
        tlbs = [all_tlbs[cpu]] if cpu < len(all_tlbs) else []
    for stats in per_cpu:
        _fold_bag(registry, stats.counters.as_dict(), HIERARCHY_METRIC_NAMES)
        intervals = stats.writeback_intervals
        if intervals.observations:
            hist = registry.histogram("wb.interval", top=intervals.top)
            for value, count in intervals.export_state()["buckets"].items():
                hist.record(value, count)
            if intervals.count_top():
                hist.record(intervals.top, intervals.count_top())
    for tlb_counts in tlbs:
        _fold_bag(registry, tlb_counts, TLB_METRIC_NAMES)
    if cpu is None:
        for op, count in result.bus_transactions.items():
            if count:
                registry.inc(f"bus.{op}", count)
        registry.inc("sim.refs", result.refs_processed)
    return registry
