"""Per-run manifests: what ran, under which code, producing what.

A :class:`RunManifest` is the provenance record the CLI writes next
to cached results (and next to ``--metrics-out`` files): experiment
ids, trace scale, the installed run options, the schema hash the disk
cache keyed results under, the git revision of the working tree,
wall-clock timings, trace-sink details and the final merged metrics
snapshot.  Re-running an experiment and diffing two manifests answers
"did the numbers move, and did the code or only the wall-clock?"
without replaying anything.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

FORMAT = "repro-run-manifest"
VERSION = 1


def git_revision() -> str | None:
    """The working tree's HEAD (short), or None outside a checkout."""
    import repro

    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(repro.__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


@dataclass
class RunManifest:
    """Everything needed to identify and compare one CLI run.

    Attributes:
        experiments: experiment ids in execution order.
        scale: trace scale the run used.
        options: the :class:`~repro.experiments.base.RunOptions`
            fields, as a plain dict.
        schema_hash: source digest the result cache keyed under.
        git_rev: short HEAD revision, when available.
        created_at: POSIX timestamp of manifest creation.
        python: interpreter version string.
        timings_s: per-experiment wall-clock seconds plus totals.
        metrics: the merged registry snapshot (deterministic).
        trace: tracer details (categories, sink path, event counts),
            empty when tracing was off.
        simulations: unique simulations whose metrics were merged.
    """

    experiments: list[str]
    scale: float
    options: dict[str, Any] = field(default_factory=dict)
    schema_hash: str | None = None
    git_rev: str | None = None
    created_at: float = 0.0
    python: str = ""
    timings_s: dict[str, float] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    trace: dict[str, Any] = field(default_factory=dict)
    simulations: int = 0

    @classmethod
    def create(
        cls,
        experiments: list[str],
        scale: float,
        options: Any = None,
        timings_s: dict[str, float] | None = None,
        metrics: dict[str, Any] | None = None,
        trace: dict[str, Any] | None = None,
        simulations: int = 0,
    ) -> "RunManifest":
        """Build a manifest, stamping environment provenance."""
        from ..runner.disk_cache import schema_hash

        options_dict: dict[str, Any] = {}
        if options is not None:
            options_dict = {
                key: value
                for key, value in asdict(options).items()
                if value not in (None, 0, 0.0, False, ())
            }
        return cls(
            experiments=list(experiments),
            scale=scale,
            options=options_dict,
            schema_hash=schema_hash(),
            git_rev=git_revision(),
            created_at=time.time(),
            python=platform.python_version(),
            timings_s=dict(timings_s or {}),
            metrics=dict(metrics or {}),
            trace=dict(trace or {}),
            simulations=simulations,
        )

    def to_dict(self) -> dict[str, Any]:
        """The JSON wire form (format-tagged and versioned)."""
        out: dict[str, Any] = {"format": FORMAT, "version": VERSION}
        out.update(asdict(self))
        return out

    def write(self, path: str | Path) -> Path:
        """Serialise to *path* (pretty, sorted, trailing newline)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        """Read a manifest written by :meth:`write`."""
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("format") != FORMAT:
            raise ValueError(f"{path} is not a {FORMAT} file")
        data.pop("format", None)
        data.pop("version", None)
        return cls(**data)
