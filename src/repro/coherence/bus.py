"""The shared snooping bus and the version-stamped main memory.

The bus is *atomic*: one transaction completes — including every
snooper's reaction and any memory update — before the next begins.
This matches the paper's evaluation granularity (message counts, not
cycle timing).

Data is modelled as monotonically increasing *version stamps* per
physical block rather than bytes: a write bumps the stamp, and a read
observing a stale stamp is a coherence bug the test suite can detect.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Protocol

from ..common.errors import ProtocolError
from ..common.stats import CounterBag
from .messages import BusOp, BusResult, BusTransaction, SnoopReply


class MainMemory:
    """Version-stamped physical memory.

    Blocks start at version 0 ("as initialised"); every write-back
    stores the writer's stamp.
    """

    __slots__ = ("_versions", "stats")

    def __init__(self) -> None:
        self._versions: dict[int, int] = {}
        self.stats = CounterBag()

    def read(self, pblock: int) -> int:
        """Current version of *pblock*."""
        self.stats.add("reads")
        return self._versions.get(pblock, 0)

    def write(self, pblock: int, version: int) -> None:
        """Store *version* as the new contents of *pblock*."""
        self.stats.add("writes")
        self._versions[pblock] = version

    def peek(self, pblock: int) -> int:
        """Version without counting a memory access (for checkers)."""
        return self._versions.get(pblock, 0)

    def export_state(self) -> dict:
        """Checkpointable snapshot of contents and access counters."""
        return {
            "versions": dict(self._versions),
            "stats": self.stats.export_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Replace memory contents with a snapshot's."""
        self._versions = dict(state["versions"])
        self.stats.restore_state(state["stats"])


class Snooper(Protocol):
    """What the bus requires of an attached cache hierarchy."""

    def snoop(self, txn: BusTransaction) -> SnoopReply:
        """React to a coherence transaction from another hierarchy."""
        ...


class Bus:
    """Atomic shared bus connecting the second-level caches and memory.

    Hierarchies attach once at construction time of the system; the
    attach order defines their snoop order (irrelevant to results, but
    deterministic).
    """

    __slots__ = ("memory", "stats", "_snoopers", "observer")

    def __init__(self, memory: MainMemory | None = None) -> None:
        self.memory = memory if memory is not None else MainMemory()
        self.stats = CounterBag()
        self._snoopers: list[Snooper] = []
        # Called after each completed transaction (coherence boundary);
        # the invariant guard hooks in here.  One observer suffices —
        # it is installed by whoever owns the machine.
        self.observer: Callable[[BusTransaction], None] | None = None

    def attach(self, snooper: Snooper) -> int:
        """Register a hierarchy; returns its bus index (CPU id)."""
        self._snoopers.append(snooper)
        return len(self._snoopers) - 1

    @property
    def n_snoopers(self) -> int:
        """Number of attached hierarchies."""
        return len(self._snoopers)

    def issue(self, txn: BusTransaction) -> BusResult:
        """Run one transaction to completion and return its outcome.

        * READ_MISS — every other hierarchy snoops; a hierarchy holding
          the block dirty supplies the data (and the bus writes it to
          memory); otherwise memory supplies.
        * INVALIDATE — every other hierarchy drops its copy; no data.
        * READ_MODIFIED_WRITE — read-miss semantics for the data, then
          the snoopers invalidate (the paper treats it as a read-miss
          followed by an invalidation; the bus runs both phases inside
          one atomic transaction).
        * WRITE_UPDATE — a write-update protocol broadcast: snoopers
          refresh their copies with the carried version and memory is
          written; ``shared`` in the result reports whether any other
          cache still holds the block.
        * WRITE_BACK — memory update only; nothing snoops.
        """
        result = self._complete(txn)
        if self.observer is not None:
            self.observer(txn)
        return result

    def _complete(self, txn: BusTransaction) -> BusResult:
        """The transaction body (snoop round plus memory update)."""
        self.stats.add(txn.op.value)
        if txn.op is BusOp.WRITE_BACK:
            raise ProtocolError(
                "write-backs carry a data version; use Bus.write_back()"
            )
        if txn.op is BusOp.WRITE_UPDATE and txn.version is None:
            raise ProtocolError("a write-update must carry a data version")

        shared = False
        supplied: int | None = None
        supplier_count = 0
        for index, snooper in enumerate(self._snoopers):
            if index == txn.origin:
                continue
            reply = snooper.snoop(txn)
            shared = shared or reply.has_copy
            if reply.supplied_version is not None:
                supplier_count += 1
                supplied = reply.supplied_version
        if supplier_count > 1:
            raise ProtocolError(
                f"{supplier_count} caches supplied dirty data for block "
                f"{txn.pblock:#x}; at most one may hold a block dirty"
            )

        if txn.op is BusOp.INVALIDATE:
            return BusResult(shared=shared, version=None)

        if txn.op is BusOp.WRITE_UPDATE:
            if txn.version is None:
                raise ProtocolError(
                    "write-update lost its data version mid-transaction",
                    pblock=txn.pblock,
                )
            self.memory.write(txn.pblock, txn.version)
            return BusResult(shared=shared, version=txn.version)

        if supplied is not None:
            # Dirty peer supplied: memory is updated as part of the
            # transaction (the paper's flush semantics).
            self.memory.write(txn.pblock, supplied)
            self.stats.add("cache_to_cache")
            return BusResult(shared=shared, version=supplied)
        return BusResult(shared=shared, version=self.memory.read(txn.pblock))

    def write_back(self, pblock: int, version: int) -> None:
        """Write dirty data back to memory (no snooping)."""
        self.stats.add(BusOp.WRITE_BACK.value)
        self.memory.write(pblock, version)
