"""Shared-bus snooping coherence substrate."""

from .bus import Bus, MainMemory, Snooper
from .messages import BusOp, BusResult, BusTransaction, SnoopReply
from .protocol import AllocPolicy, ShareState, WritePolicy

__all__ = [
    "AllocPolicy",
    "Bus",
    "BusOp",
    "BusResult",
    "BusTransaction",
    "MainMemory",
    "ShareState",
    "Snooper",
    "SnoopReply",
    "WritePolicy",
]
