"""Bus transaction vocabulary for the snooping protocol.

The paper assumes a write-invalidate protocol with three coherence
transactions — read-miss, invalidation and read-modified-write — plus
write-backs to memory, which carry data but trigger no snooping.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class BusOp(enum.Enum):
    """Transaction types observable on the shared bus."""

    READ_MISS = "read_miss"
    INVALIDATE = "invalidate"
    READ_MODIFIED_WRITE = "read_modified_write"
    WRITE_UPDATE = "write_update"
    WRITE_BACK = "write_back"

    @property
    def is_coherence(self) -> bool:
        """True for transactions that other caches must snoop."""
        return self is not BusOp.WRITE_BACK


@dataclass(frozen=True, slots=True)
class BusTransaction:
    """One atomic bus transaction.

    Attributes:
        op: transaction type.
        origin: index of the issuing cache hierarchy (CPU id).
        pblock: physical block number the transaction concerns.
        version: data carried by the transaction — required for
            WRITE_UPDATE (the new contents being broadcast), unused
            otherwise.
    """

    op: BusOp
    origin: int
    pblock: int
    version: int | None = None


@dataclass(slots=True)
class SnoopReply:
    """What one snooper reports back for a coherence transaction.

    Attributes:
        has_copy: the snooper holds the block (any state) — drives the
            requestor's shared/private decision.
        supplied_version: set when the snooper held the block dirty
            and supplies the data (cache-to-cache transfer).
    """

    has_copy: bool = False
    supplied_version: int | None = None


@dataclass(slots=True)
class BusResult:
    """Outcome of a transaction, as seen by the issuing hierarchy.

    Attributes:
        shared: at least one other cache acknowledged holding the block.
        version: data version the requestor receives (from a dirty
            peer cache if one supplied, otherwise from memory);
            ``None`` for transactions that return no data.
    """

    shared: bool = False
    version: int | None = None
