"""Coherence state kept per R-cache block.

The paper's protocol stores two *state bits* for sharing status plus
two dirty bits (vdirty — the V-cache's copy is modified — and rdirty —
the R-cache's own copy is modified).  We model the sharing status as
an enum; INVALID is represented by the block's valid bit being clear,
matching the hardware encoding.
"""

from __future__ import annotations

import enum


class ShareState(enum.Enum):
    """Sharing status of a valid second-level block."""

    PRIVATE = "private"
    SHARED = "shared"


class WritePolicy(enum.Enum):
    """Write hit policy of a cache level."""

    WRITE_BACK = "write_back"
    WRITE_THROUGH = "write_through"


class AllocPolicy(enum.Enum):
    """Write miss policy of a cache level."""

    WRITE_ALLOCATE = "write_allocate"
    NO_WRITE_ALLOCATE = "no_write_allocate"
