"""Virtual memory substrate: address spaces, page tables, TLB."""

from .address_space import MemoryLayout, Segment
from .page_table import FrameAllocator, PageTable, ReverseMap
from .tlb import TLB

__all__ = [
    "FrameAllocator",
    "MemoryLayout",
    "PageTable",
    "ReverseMap",
    "Segment",
    "TLB",
]
