"""A set-associative translation lookaside buffer.

The paper places the TLB at the second level, where it translates in
parallel with the V-cache lookup and is consulted only when the
V-cache misses.  The TLB never affects hit ratios in the paper's
methodology — translation penalties enter through the closed-form
timing model — but the simulator models it anyway so that TLB reach
and flush behaviour can be studied (and so the R-R baseline, which
translates before *every* level-1 access, has a realistic front end).

Entries are tagged with (pid, vpage); :meth:`flush_pid` supports the
selective-flush discussion in section 2 of the paper.
"""

from __future__ import annotations

from collections import OrderedDict

from ..common.errors import ConfigurationError
from ..common.params import is_power_of_two
from ..common.stats import CounterBag
from .address_space import MemoryLayout


class TLB:
    """LRU set-associative TLB over a :class:`MemoryLayout`.

    >>> layout = MemoryLayout()
    >>> seg = layout.add_private_segment(pid=1, name="d", base_vaddr=0x4000, n_pages=2)
    >>> tlb = TLB(layout, n_entries=16, associativity=4)
    >>> tlb.translate(1, 0x4008) == layout.translate(1, 0x4008)
    True
    >>> tlb.stats["misses"], tlb.stats["hits"]
    (1, 0)
    """

    __slots__ = (
        "layout",
        "n_entries",
        "associativity",
        "n_sets",
        "stats",
        "_sets",
        "_page_shift",
        "_page_mask",
        "_counts",
    )

    def __init__(
        self,
        layout: MemoryLayout,
        n_entries: int = 64,
        associativity: int = 4,
    ) -> None:
        if not is_power_of_two(n_entries):
            raise ConfigurationError(f"TLB entries must be a power of two: {n_entries}")
        if associativity < 1 or n_entries % associativity:
            raise ConfigurationError(
                f"associativity {associativity} does not divide {n_entries} entries"
            )
        self.layout = layout
        self.n_entries = n_entries
        self.associativity = associativity
        self.n_sets = n_entries // associativity
        self.stats = CounterBag()
        # One ordered dict per set: (pid, vpage) -> frame, LRU order.
        self._sets: list[OrderedDict[tuple[int, int], int]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        # Hot-path constants: page slicing by shift/mask when the page
        # size is a power of two (the usual case), and the counters
        # aliased directly (CounterBag restores in place, so the alias
        # survives checkpoint restore).
        page_size = layout.page_size
        self._page_shift = (
            page_size.bit_length() - 1 if is_power_of_two(page_size) else None
        )
        self._page_mask = page_size - 1
        self._counts = self.stats._counts

    def _set_for(self, vpage: int) -> OrderedDict[tuple[int, int], int]:
        return self._sets[vpage % self.n_sets]

    def translate(self, pid: int, vaddr: int) -> int:
        """Translate through the TLB, walking the page table on a miss."""
        page_size = self.layout.page_size
        shift = self._page_shift
        if shift is not None:
            vpage = vaddr >> shift
            offset = vaddr & self._page_mask
        else:
            vpage, offset = divmod(vaddr, page_size)
        entry_set = self._sets[vpage % self.n_sets]
        key = (pid, vpage)
        frame = entry_set.get(key)
        if frame is not None:
            entry_set.move_to_end(key)
            self._counts["hits"] += 1
        else:
            self._counts["misses"] += 1
            frame = self.layout.translate(pid, vpage * page_size) // page_size
            if len(entry_set) >= self.associativity:
                entry_set.popitem(last=False)
                self._counts["evictions"] += 1
            entry_set[key] = frame
        if shift is not None:
            return (frame << shift) | offset
        return frame * page_size + offset

    def flush(self) -> None:
        """Invalidate every entry (full flush)."""
        for entry_set in self._sets:
            self.stats.add("flushed_entries", len(entry_set))
            entry_set.clear()
        self.stats.add("flushes")

    def flush_pid(self, pid: int) -> None:
        """Invalidate only the entries of process *pid* (selective flush)."""
        for entry_set in self._sets:
            stale = [key for key in entry_set if key[0] == pid]
            for key in stale:
                del entry_set[key]
            self.stats.add("flushed_entries", len(stale))
        self.stats.add("selective_flushes")

    def resident(self) -> list[tuple[int, int]]:
        """Every (pid, vpage) currently cached, for inspection in tests."""
        keys: list[tuple[int, int]] = []
        for entry_set in self._sets:
            keys.extend(entry_set)
        return sorted(keys)

    # -- fault injection and scrubbing ---------------------------------------

    def entries(self) -> list[tuple[int, int, int]]:
        """Every resident (pid, vpage, frame) triple, sorted.

        Used by the fault injector to choose corruption targets and by
        the invariant guard to cross-check cached translations against
        the page tables.
        """
        out: list[tuple[int, int, int]] = []
        for entry_set in self._sets:
            out.extend((pid, vpage, frame) for (pid, vpage), frame in entry_set.items())
        return sorted(out)

    def poison(self, pid: int, vpage: int, frame: int) -> bool:
        """Overwrite a resident entry's frame in place (fault injection).

        Returns False when (pid, vpage) is not resident.  No counters
        are touched: a real bit-flip leaves no statistical trace.
        """
        entry_set = self._set_for(vpage)
        key = (pid, vpage)
        if key not in entry_set:
            return False
        entry_set[key] = frame
        return True

    def scrub(self, pid: int, vpage: int) -> bool:
        """Drop one entry (recovery path for a detected corruption).

        Returns True when the entry was resident.  The next access
        re-walks the page table, restoring the correct mapping.
        """
        entry_set = self._set_for(vpage)
        if entry_set.pop((pid, vpage), None) is None:
            return False
        self.stats.add("scrubbed_entries")
        return True

    # -- checkpointing ---------------------------------------------------------

    def export_state(self) -> dict:
        """Checkpointable snapshot of contents (LRU order) and stats."""
        return {
            "sets": [list(entry_set.items()) for entry_set in self._sets],
            "stats": self.stats.export_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Replace TLB contents (including LRU order) with a snapshot's."""
        self._sets = [
            OrderedDict((tuple(key), frame) for key, frame in entries)
            for entries in state["sets"]
        ]
        self.stats.restore_state(state["stats"])
