"""Process address spaces built from named segments.

A :class:`MemoryLayout` owns the frame allocator, the page tables of
every process and the reverse map.  Segments come in two flavours:

* private — fresh physical frames for one process;
* shared  — one set of physical frames mapped into several processes,
  each at its own virtual base (and optionally *aliased* twice inside
  one process), which is exactly how synonyms arise.

The trace generator asks a layout for segments; the simulator asks it
for translations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ConfigurationError, TranslationError
from .page_table import FrameAllocator, PageTable, ReverseMap


@dataclass(frozen=True)
class Segment:
    """A contiguous range of virtual pages owned by one process.

    Attributes:
        pid: owning process.
        name: human-readable label ("text", "stack", "shm0", ...).
        base_vaddr: first virtual address of the segment.
        n_pages: length in pages.
        page_size: bytes per page.
    """

    pid: int
    name: str
    base_vaddr: int
    n_pages: int
    page_size: int

    @property
    def size(self) -> int:
        """Segment length in bytes."""
        return self.n_pages * self.page_size

    @property
    def end_vaddr(self) -> int:
        """One past the last virtual address of the segment."""
        return self.base_vaddr + self.size

    def contains(self, vaddr: int) -> bool:
        """True when *vaddr* falls inside this segment."""
        return self.base_vaddr <= vaddr < self.end_vaddr


class MemoryLayout:
    """All address spaces of one simulated machine.

    >>> layout = MemoryLayout(page_size=4096)
    >>> text = layout.add_private_segment(pid=1, name="text", base_vaddr=0x10000, n_pages=4)
    >>> paddr = layout.translate(1, text.base_vaddr + 12)
    >>> paddr % 4096
    12
    """

    def __init__(self, page_size: int = 4096) -> None:
        self.page_size = page_size
        self.allocator = FrameAllocator(page_size)
        self.reverse_map = ReverseMap()
        self._tables: dict[int, PageTable] = {}
        self._segments: list[Segment] = []

    # -- construction -------------------------------------------------

    def table(self, pid: int) -> PageTable:
        """The page table of process *pid*, created on first use."""
        if pid not in self._tables:
            self._tables[pid] = PageTable(pid, self.page_size)
        return self._tables[pid]

    def _check_alignment(self, base_vaddr: int) -> None:
        if base_vaddr % self.page_size:
            raise ConfigurationError(
                f"segment base {base_vaddr:#x} is not page aligned"
            )

    def add_private_segment(
        self, pid: int, name: str, base_vaddr: int, n_pages: int
    ) -> Segment:
        """Create a segment backed by fresh private frames."""
        self._check_alignment(base_vaddr)
        first_frame = self.allocator.allocate(n_pages)
        return self._map_segment(pid, name, base_vaddr, n_pages, first_frame)

    def add_shared_segment(
        self, name: str, mappings: list[tuple[int, int]], n_pages: int
    ) -> list[Segment]:
        """Create one physical region mapped into several address spaces.

        *mappings* is a list of ``(pid, base_vaddr)`` pairs.  The same
        pid may appear twice with different bases, producing
        intra-process synonyms.  Returns one :class:`Segment` per
        mapping, in input order.
        """
        if not mappings:
            raise ConfigurationError("shared segment needs at least one mapping")
        first_frame = self.allocator.allocate(n_pages)
        segments = []
        for pid, base_vaddr in mappings:
            self._check_alignment(base_vaddr)
            segments.append(
                self._map_segment(pid, name, base_vaddr, n_pages, first_frame)
            )
        return segments

    def _map_segment(
        self, pid: int, name: str, base_vaddr: int, n_pages: int, first_frame: int
    ) -> Segment:
        table = self.table(pid)
        base_vpage = base_vaddr // self.page_size
        for i in range(n_pages):
            table.map(base_vpage + i, first_frame + i)
            self.reverse_map.note(first_frame + i, pid, base_vpage + i)
        segment = Segment(pid, name, base_vaddr, n_pages, self.page_size)
        self._segments.append(segment)
        return segment

    # -- queries -------------------------------------------------------

    def translate(self, pid: int, vaddr: int) -> int:
        """Translate (*pid*, *vaddr*) to a physical address."""
        try:
            table = self._tables[pid]
        except KeyError:
            raise TranslationError(f"unknown process {pid}") from None
        return table.translate(vaddr)

    def segments(self, pid: int | None = None) -> list[Segment]:
        """All segments, optionally restricted to one process."""
        if pid is None:
            return list(self._segments)
        return [s for s in self._segments if s.pid == pid]

    def pids(self) -> list[int]:
        """All process ids with a page table, sorted."""
        return sorted(self._tables)

    @property
    def physical_size(self) -> int:
        """Bytes of physical memory allocated so far."""
        return self.allocator.frames_allocated * self.page_size


class DemandLayout(MemoryLayout):
    """A layout that maps pages on first touch.

    External traces (binary/din files, SynchroTrace lowerings) carry
    no segment map, so their address spaces cannot be pre-built the
    way the synthetic generator's can.  This layout allocates a fresh
    frame the first time a (pid, page) is referenced — a bump
    allocation, so physical placement is a pure function of first
    touch order, which is the trace order.  Replaying the same trace
    therefore always produces the same translations, in either engine.

    Because the mapping is built *during* the run, it is replay state:
    checkpoints must carry it (:meth:`export_state` /
    :meth:`restore_state`), otherwise a resumed run would re-allocate
    frames in resume-order rather than trace-order and diverge.
    """

    def translate(self, pid: int, vaddr: int) -> int:
        """Translate, mapping the page on first touch."""
        table = self.table(pid)
        vpage, offset = divmod(vaddr, self.page_size)
        frame = table._map.get(vpage)
        if frame is None:
            frame = self.allocator.allocate(1)
            table.map(vpage, frame)
            self.reverse_map.note(frame, pid, vpage)
        return (frame << table._page_shift) | offset

    def export_state(self) -> dict:
        """The on-demand mapping as checkpointable plain data."""
        return {
            "next_frame": self.allocator._next_frame,
            "tables": {
                str(pid): {
                    str(vpage): frame
                    for vpage, frame in sorted(table._map.items())
                }
                for pid, table in sorted(self._tables.items())
            },
        }

    def restore_state(self, state: dict) -> None:
        """Restore a mapping exported by :meth:`export_state`."""
        self.allocator._next_frame = int(state["next_frame"])
        self._tables.clear()
        self.reverse_map = ReverseMap()
        for pid_s, pages in state["tables"].items():
            table = self.table(int(pid_s))
            for vpage_s, frame in pages.items():
                vpage = int(vpage_s)
                table._map[vpage] = int(frame)
                self.reverse_map.note(int(frame), int(pid_s), vpage)
