"""Per-process page tables and the machine-wide frame allocator.

Virtual and physical addresses are plain integers.  A page table maps
virtual page numbers to physical frame numbers for one process; the
:class:`FrameAllocator` hands out physical frames machine-wide so that
shared segments of different processes can resolve to the same frames
(which is what creates synonyms).

The reverse map (frame -> every (pid, vpage) naming it) is maintained
eagerly.  The real hardware analogue is the reverse translation table
the paper locates at the second-level cache; the simulator also uses
it for invariant checking.
"""

from __future__ import annotations

from collections import defaultdict

from ..common.errors import ConfigurationError, TranslationError
from ..common.params import log2_exact


class FrameAllocator:
    """Allocates physical page frames sequentially.

    The simulator never frees frames: synthetic workloads build their
    address spaces once up front, so a bump allocator is sufficient
    and keeps physical layout deterministic.
    """

    def __init__(self, page_size: int = 4096) -> None:
        self.page_size = page_size
        log2_exact(page_size, "page size")
        self._next_frame = 0

    def allocate(self, n_frames: int = 1) -> int:
        """Reserve *n_frames* consecutive frames, returning the first."""
        if n_frames < 1:
            raise ConfigurationError(f"cannot allocate {n_frames} frames")
        first = self._next_frame
        self._next_frame += n_frames
        return first

    @property
    def frames_allocated(self) -> int:
        """Number of frames handed out so far."""
        return self._next_frame


class PageTable:
    """Virtual-to-physical mapping for a single process.

    >>> alloc = FrameAllocator(page_size=4096)
    >>> pt = PageTable(pid=1, page_size=4096)
    >>> frame = alloc.allocate()
    >>> pt.map(vpage=16, frame=frame)
    >>> pt.translate_page(16) == frame
    True
    """

    def __init__(self, pid: int, page_size: int = 4096) -> None:
        self.pid = pid
        self.page_size = page_size
        self._page_shift = log2_exact(page_size, "page size")
        self._map: dict[int, int] = {}

    def map(self, vpage: int, frame: int) -> None:
        """Map virtual page *vpage* to physical frame *frame*.

        Remapping an already-mapped page is rejected: the synthetic
        workloads never remap, so a collision means two segments
        overlap, which is a configuration bug worth failing on.
        """
        if vpage in self._map:
            raise ConfigurationError(
                f"pid {self.pid}: virtual page {vpage:#x} already mapped"
            )
        self._map[vpage] = frame

    def translate_page(self, vpage: int) -> int:
        """Return the physical frame of *vpage*, or raise TranslationError."""
        try:
            return self._map[vpage]
        except KeyError:
            raise TranslationError(
                f"pid {self.pid}: no mapping for virtual page {vpage:#x}"
            ) from None

    def translate(self, vaddr: int) -> int:
        """Translate a full virtual address to a physical address."""
        vpage, offset = divmod(vaddr, self.page_size)
        return (self.translate_page(vpage) << self._page_shift) | offset

    def mapped_pages(self) -> list[int]:
        """All mapped virtual page numbers, sorted."""
        return sorted(self._map)

    def __len__(self) -> int:
        return len(self._map)


class ReverseMap:
    """Machine-wide frame -> [(pid, vpage), ...] index.

    Used by tests and consistency checkers to enumerate synonyms, and
    by the trace generator to decide which virtual names exist for a
    shared frame.
    """

    def __init__(self) -> None:
        self._aliases: dict[int, list[tuple[int, int]]] = defaultdict(list)

    def note(self, frame: int, pid: int, vpage: int) -> None:
        """Record that (pid, vpage) maps to *frame*."""
        self._aliases[frame].append((pid, vpage))

    def aliases(self, frame: int) -> list[tuple[int, int]]:
        """Every (pid, vpage) pair naming *frame* (may be empty)."""
        return list(self._aliases.get(frame, ()))

    def synonym_frames(self) -> list[int]:
        """Frames with more than one virtual name, sorted."""
        return sorted(f for f, names in self._aliases.items() if len(names) > 1)
