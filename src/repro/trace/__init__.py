"""Trace substrate: records, synthetic generation, surrogates, I/O."""

from .analyze import CallWriteProfile, TraceSummary, profile_call_writes, summarize
from .record import RefKind, TraceCursor, TraceRecord
from .reuse import ReuseDistanceProfile, profile_reuse_distances
from .synthetic import CALL_WRITE_WEIGHTS, SyntheticWorkload, WorkloadSpec
from .textio import dump, load, parse_line
from .workloads import (
    ABAQUS,
    FULL_SCALE_REFS,
    POPS,
    THOR,
    get_spec,
    make_workload,
    workload_names,
)

__all__ = [
    "ABAQUS",
    "CALL_WRITE_WEIGHTS",
    "CallWriteProfile",
    "FULL_SCALE_REFS",
    "POPS",
    "RefKind",
    "ReuseDistanceProfile",
    "SyntheticWorkload",
    "THOR",
    "TraceCursor",
    "TraceRecord",
    "TraceSummary",
    "WorkloadSpec",
    "dump",
    "get_spec",
    "load",
    "make_workload",
    "parse_line",
    "profile_reuse_distances",
    "profile_call_writes",
    "summarize",
    "workload_names",
]
