"""Trace substrate: records, synthetic generation, surrogates, I/O,
and the bounded-chunk streaming layer (DESIGN.md §14)."""

from .analyze import CallWriteProfile, TraceSummary, profile_call_writes, summarize
from .binio import BinaryTraceReader, BinaryTraceWriter, write_binary
from .formats import TextTraceStream, open_trace, sniff_format
from .record import RefKind, TraceCursor, TraceRecord
from .reuse import ReuseDistanceProfile, profile_reuse_distances
from .stream import (
    DEFAULT_CHUNK_RECORDS,
    StreamCursor,
    SyntheticTraceStream,
    TraceChunk,
    TraceStream,
    chunk_iter,
)
from .synchro import SynchroTraceReader
from .synthetic import CALL_WRITE_WEIGHTS, SyntheticWorkload, WorkloadSpec
from .textio import dump, load, parse_line
from .workloads import (
    ABAQUS,
    FULL_SCALE_REFS,
    POPS,
    THOR,
    get_spec,
    make_workload,
    workload_names,
)

__all__ = [
    "ABAQUS",
    "BinaryTraceReader",
    "BinaryTraceWriter",
    "CALL_WRITE_WEIGHTS",
    "CallWriteProfile",
    "DEFAULT_CHUNK_RECORDS",
    "FULL_SCALE_REFS",
    "POPS",
    "RefKind",
    "ReuseDistanceProfile",
    "StreamCursor",
    "SynchroTraceReader",
    "SyntheticTraceStream",
    "SyntheticWorkload",
    "THOR",
    "TextTraceStream",
    "TraceChunk",
    "TraceCursor",
    "TraceRecord",
    "TraceStream",
    "TraceSummary",
    "WorkloadSpec",
    "chunk_iter",
    "dump",
    "get_spec",
    "load",
    "make_workload",
    "open_trace",
    "parse_line",
    "profile_reuse_distances",
    "profile_call_writes",
    "sniff_format",
    "summarize",
    "workload_names",
    "write_binary",
]
