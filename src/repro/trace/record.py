"""Trace records: the unit of work every simulator consumes.

A trace is a stream of :class:`TraceRecord`.  Memory references carry
a CPU, a process id and a virtual address; two marker kinds carry
control information:

* ``CSWITCH`` — the CPU switches to process ``pid`` (the address field
  is unused).  The V-cache must invalidate (swapped-valid) on this.
* ``CALL`` — a procedure-call boundary marker, used by the Table 1
  analysis to attribute the following stack writes to a call.  It has
  no memory effect.

The original ATUM traces encode the same information with embedded
marker records.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RefKind(enum.Enum):
    """What a trace record represents."""

    INSTR = "i"
    READ = "r"
    WRITE = "w"
    CSWITCH = "s"
    CALL = "c"

    @property
    def is_memory(self) -> bool:
        """True for records that access memory."""
        return self in (RefKind.INSTR, RefKind.READ, RefKind.WRITE)

    @property
    def is_data(self) -> bool:
        """True for data reads and writes."""
        return self in (RefKind.READ, RefKind.WRITE)


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace event.

    Attributes:
        cpu: issuing processor index.
        pid: process running on that CPU when the event was generated
            (for CSWITCH, the process being switched *to*).
        kind: event kind.
        vaddr: virtual byte address (0 for markers).
    """

    cpu: int
    pid: int
    kind: RefKind
    vaddr: int = 0

    @property
    def is_memory(self) -> bool:
        """Shorthand for ``self.kind.is_memory``."""
        return self.kind.is_memory

    def __str__(self) -> str:
        return f"{self.cpu} {self.pid} {self.kind.value} {self.vaddr:x}"


class TraceCursor:
    """A resumable position over a materialised trace.

    Checkpointed replays need to know exactly how many *records* (not
    just memory references — context-switch and call markers count
    too) the machine has consumed, so an interrupted run can continue
    from the same record.  The cursor owns that position and hands out
    bounded chunks::

        cursor = TraceCursor(records, position=checkpoint["position"])
        while (chunk := cursor.take(50_000)):
            machine.run(chunk)
    """

    __slots__ = ("records", "position")

    def __init__(self, records: "list[TraceRecord]", position: int = 0) -> None:
        if position < 0 or position > len(records):
            raise ValueError(
                f"position {position} outside trace of {len(records)} records"
            )
        self.records = records
        self.position = position

    @property
    def exhausted(self) -> bool:
        """True when every record has been handed out."""
        return self.position >= len(self.records)

    @property
    def remaining(self) -> int:
        """Records not yet handed out."""
        return len(self.records) - self.position

    def take(self, n: int) -> "list[TraceRecord]":
        """The next at-most-*n* records; advances the position."""
        if n < 1:
            raise ValueError(f"chunk size must be >= 1, got {n}")
        chunk = self.records[self.position : self.position + n]
        self.position += len(chunk)
        return chunk
