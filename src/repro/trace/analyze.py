"""Trace characterisation: the numbers of the paper's Tables 1 and 5.

These analysers consume any iterable of :class:`TraceRecord` — a live
generator, a materialised list or a parsed trace file.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from collections.abc import Iterable

from .record import RefKind, TraceRecord


@dataclass
class TraceSummary:
    """Table 5 shape: per-trace reference counts.

    Attributes mirror the table columns; ``cpus`` is the set of CPU
    indices observed.
    """

    name: str = ""
    cpus: set[int] = field(default_factory=set)
    instr_count: int = 0
    data_read: int = 0
    data_write: int = 0
    context_switches: int = 0
    calls: int = 0

    @property
    def total_refs(self) -> int:
        """Memory references only (markers excluded)."""
        return self.instr_count + self.data_read + self.data_write

    @property
    def n_cpus(self) -> int:
        """Number of distinct CPUs in the trace."""
        return len(self.cpus)


def summarize(records: Iterable[TraceRecord], name: str = "") -> TraceSummary:
    """Count the Table 5 columns over *records*."""
    summary = TraceSummary(name=name)
    for record in records:
        summary.cpus.add(record.cpu)
        kind = record.kind
        if kind is RefKind.INSTR:
            summary.instr_count += 1
        elif kind is RefKind.READ:
            summary.data_read += 1
        elif kind is RefKind.WRITE:
            summary.data_write += 1
        elif kind is RefKind.CSWITCH:
            summary.context_switches += 1
        elif kind is RefKind.CALL:
            summary.calls += 1
    return summary


@dataclass
class CallWriteProfile:
    """Table 1 shape: how many writes each procedure call produced.

    ``per_call``maps burst length -> number of calls of that length;
    ``call_writes`` is the total writes attributed to calls and
    ``total_writes`` counts every data write in the trace.
    """

    per_call: Counter[int] = field(default_factory=Counter)
    call_writes: int = 0
    total_writes: int = 0

    def rows(self, max_burst: int = 16) -> list[tuple[int, int, int]]:
        """(burst length, count, total writes) rows as in Table 1."""
        return [
            (n, self.per_call.get(n, 0), n * self.per_call.get(n, 0))
            for n in range(1, max_burst + 1)
        ]


def profile_call_writes(
    records: Iterable[TraceRecord], cpu: int | None = None
) -> CallWriteProfile:
    """Attribute consecutive post-CALL writes to the call (Table 1).

    A call's write burst is the run of data writes immediately
    following its CALL marker on the same CPU, ended by the first
    non-write memory reference.  Restricting to one *cpu* mirrors the
    per-CPU structure of the ATUM traces; by default all CPUs are
    profiled together.
    """
    profile = CallWriteProfile()
    open_bursts: dict[int, int] = {}
    for record in records:
        if cpu is not None and record.cpu != cpu:
            continue
        if record.kind is RefKind.CALL:
            # A call immediately after a call (no writes yet) closes
            # the previous burst at zero, which we simply drop.
            open_bursts[record.cpu] = 0
        elif record.kind is RefKind.WRITE:
            profile.total_writes += 1
            if record.cpu in open_bursts:
                open_bursts[record.cpu] += 1
                profile.call_writes += 1
        elif record.is_memory and record.cpu in open_bursts:
            burst = open_bursts.pop(record.cpu)
            if burst:
                profile.per_call[burst] += 1
    for burst in open_bursts.values():
        if burst:
            profile.per_call[burst] += 1
    return profile
