"""The RPTB binary trace container: gzip'd framing of din records.

A ``.rtb`` file is the din-style text format (cpu, pid, kind, vaddr)
re-encoded as fixed-width little-endian records, chunked into
independently gzip-compressed frames behind a fixed-size header::

    header  (32 bytes, uncompressed)
      magic          4s   b"RPTB"
      version        u16  1
      record_size    u16  16
      chunk_records  u32  records per full frame
      n_records      u64  total records in the file
      n_cpus         u16  CPU count of the traced machine
      flags          u16  reserved (0)
      reserved       8s   zeros

    frame (repeated)
      magic          4s   b"RPFR"
      record_count   u32  records in this frame
      payload_len    u32  compressed payload bytes
      payload        payload_len bytes: gzip(record_count * 16 bytes)

    record (16 bytes, little endian)
      cpu   u16 | pid u32 | kind u8 | pad u8 (0) | vaddr u64

Because every frame header carries its compressed length, a reader
builds a **chunk index** — ``(first_record, byte_offset)`` per frame —
by hopping frame headers without decompressing anything, which is what
makes mid-trace resume cheap: seek to the frame containing the resume
record, decompress one frame, trim.  Gzip payloads are written with
``mtime=0`` and a fixed compression level, so encoding is
deterministic and byte-identical round trips (text → binary → text)
are a testable invariant rather than an accident.

Every malformed-input path raises a structured
:class:`~repro.common.errors.TraceFormatError` — bad magic, unknown
version, truncated header, torn frame, mid-record EOF — and a frame
is only ever surfaced whole: the loader never yields partial records.
"""

from __future__ import annotations

import gzip
import hashlib
import os
import struct
from bisect import bisect_right
from collections.abc import Iterable, Iterator
from pathlib import Path

import numpy as np

from ..common.errors import TraceFormatError
from .record import TraceRecord
from .stream import (
    DEFAULT_CHUNK_RECORDS,
    KIND_TO_CODE,
    TraceChunk,
    TraceStream,
    chunk_iter,
)

MAGIC = b"RPTB"
FRAME_MAGIC = b"RPFR"
VERSION = 1
RECORD_SIZE = 16

_HEADER = struct.Struct("<4sHHIQHH8s")
_FRAME = struct.Struct("<4sII")

#: Fixed gzip level: part of the format's determinism contract.
_GZIP_LEVEL = 6

#: Numpy view of one record (itemsize == RECORD_SIZE).
_RECORD_DTYPE = np.dtype(
    [
        ("cpu", "<u2"),
        ("pid", "<u4"),
        ("kind", "u1"),
        ("pad", "u1"),
        ("vaddr", "<u8"),
    ]
)
assert _RECORD_DTYPE.itemsize == RECORD_SIZE

_CPU_MAX = (1 << 16) - 1
_PID_MAX = (1 << 32) - 1
_KIND_MAX = len(KIND_TO_CODE) - 1


def _encode_chunk(chunk: TraceChunk) -> bytes:
    """The raw (uncompressed) record bytes of *chunk*."""
    n = len(chunk)
    for name, vec, limit in (
        ("cpu", chunk.cpu, _CPU_MAX),
        ("pid", chunk.pid, _PID_MAX),
        ("kind", chunk.kind, _KIND_MAX),
    ):
        if n and (int(vec.min()) < 0 or int(vec.max()) > limit):
            raise TraceFormatError(
                f"{name} field outside the binary format's range [0, {limit}]"
            )
    if n and int(chunk.vaddr.min()) < 0:
        raise TraceFormatError("negative vaddr cannot be encoded")
    out = np.zeros(n, dtype=_RECORD_DTYPE)
    out["cpu"] = chunk.cpu
    out["pid"] = chunk.pid
    out["kind"] = chunk.kind
    out["vaddr"] = chunk.vaddr
    return out.tobytes()


def _decode_frame(raw: bytes, start: int) -> TraceChunk:
    """Raw record bytes back into a :class:`TraceChunk`."""
    arr = np.frombuffer(raw, dtype=_RECORD_DTYPE)
    kind = arr["kind"].astype(np.int64)
    if len(kind) and int(kind.max()) > _KIND_MAX:
        raise TraceFormatError(
            f"record with unknown kind code {int(kind.max())}",
            column=3,
        )
    return TraceChunk(
        arr["cpu"].astype(np.int64),
        arr["pid"].astype(np.int64),
        kind,
        arr["vaddr"].astype(np.int64),
        start,
    )


class BinaryTraceWriter:
    """Streams records/chunks into an RPTB file (context manager).

    The header is finalised on :meth:`close` (total records and CPU
    count are only known then), so the file is written front to back
    in one pass plus a single seek back to offset 0.
    """

    def __init__(
        self, path: str | Path, chunk_records: int = DEFAULT_CHUNK_RECORDS
    ) -> None:
        if chunk_records < 1:
            raise TraceFormatError(
                f"chunk_records must be >= 1, got {chunk_records}"
            )
        self.path = Path(path)
        self.chunk_records = chunk_records
        self.n_records = 0
        self.n_cpus = 0
        self._pending: list[TraceRecord] = []
        self._handle = open(self.path, "wb")
        self._handle.write(self._header())

    def _header(self) -> bytes:
        return _HEADER.pack(
            MAGIC,
            VERSION,
            RECORD_SIZE,
            self.chunk_records,
            self.n_records,
            self.n_cpus,
            0,
            b"\0" * 8,
        )

    def _write_frame(self, chunk: TraceChunk) -> None:
        if not len(chunk):
            return
        payload = gzip.compress(
            _encode_chunk(chunk), compresslevel=_GZIP_LEVEL, mtime=0
        )
        self._handle.write(_FRAME.pack(FRAME_MAGIC, len(chunk), len(payload)))
        self._handle.write(payload)
        self.n_records += len(chunk)
        top_cpu = int(chunk.cpu.max()) + 1 if len(chunk) else 0
        self.n_cpus = max(self.n_cpus, top_cpu)

    def write_chunk(self, chunk: TraceChunk) -> None:
        """Append one chunk, re-batching to this writer's frame size."""
        if self._pending or len(chunk) != self.chunk_records:
            self.write_records(chunk.records())
            return
        self._write_frame(chunk)

    def write_records(self, records: Iterable[TraceRecord]) -> None:
        """Append records, framing them as batches fill up."""
        pending = self._pending
        for record in records:
            pending.append(record)
            if len(pending) >= self.chunk_records:
                self._write_frame(TraceChunk.from_records(pending))
                pending.clear()

    def close(self) -> None:
        """Flush the partial frame and finalise the header."""
        if self._handle.closed:
            return
        if self._pending:
            self._write_frame(TraceChunk.from_records(self._pending))
            self._pending.clear()
        self._handle.flush()
        self._handle.seek(0)
        self._handle.write(self._header())
        self._handle.close()

    def __enter__(self) -> "BinaryTraceWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def write_binary(
    source: Iterable[TraceRecord],
    path: str | Path,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> int:
    """Write *source* (any record iterable, including a stream) to
    *path*; returns the number of records written.

    Chunked sources are consumed chunk-at-a-time, so converting a
    trace far larger than memory is safe.
    """
    with BinaryTraceWriter(path, chunk_records) as writer:
        if hasattr(source, "chunks"):
            for chunk in source.chunks():
                writer.write_chunk(chunk)
        else:
            writer.write_records(source)
    # Read after close(): the final partial frame is flushed there.
    return writer.n_records


class BinaryTraceReader(TraceStream):
    """A seekable, resumable stream over an RPTB file."""

    format_name = "rtb"
    format_version = VERSION

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        try:
            self._size = os.path.getsize(self.path)
            with open(self.path, "rb") as handle:
                header = handle.read(_HEADER.size)
        except OSError as exc:
            raise TraceFormatError(f"cannot read {self.path}: {exc}") from exc
        if len(header) < _HEADER.size:
            raise TraceFormatError(
                f"{self.path}: truncated header "
                f"({len(header)} of {_HEADER.size} bytes)"
            )
        magic, version, rec_size, chunk_records, n_records, n_cpus, flags, _ = (
            _HEADER.unpack(header)
        )
        if magic != MAGIC:
            raise TraceFormatError(
                f"{self.path}: bad magic {magic!r} (not an RPTB trace)"
            )
        if version != VERSION:
            raise TraceFormatError(
                f"{self.path}: unsupported RPTB version {version} "
                f"(expected {VERSION})"
            )
        if rec_size != RECORD_SIZE:
            raise TraceFormatError(
                f"{self.path}: record size {rec_size} != {RECORD_SIZE}"
            )
        if flags != 0:
            raise TraceFormatError(f"{self.path}: unknown flags {flags:#x}")
        if chunk_records < 1:
            raise TraceFormatError(f"{self.path}: chunk_records is 0")
        self.chunk_records = chunk_records
        self.n_records = n_records
        self.n_cpus = n_cpus
        #: (first_record, byte_offset, record_count, payload_len) per
        #: frame, built lazily by hopping frame headers.
        self._index: list[tuple[int, int, int, int]] | None = None

    # -- the chunk index -----------------------------------------------

    def frame_index(self) -> list[tuple[int, int, int, int]]:
        """Scan (once) and return the frame index.

        O(frames) seeks; nothing is decompressed.  Raises
        :class:`TraceFormatError` on torn frame headers, frames that
        run past EOF, or a record-count mismatch with the header.
        """
        if self._index is not None:
            return self._index
        index: list[tuple[int, int, int, int]] = []
        first_record = 0
        with open(self.path, "rb") as handle:
            offset = _HEADER.size
            while offset < self._size:
                handle.seek(offset)
                raw = handle.read(_FRAME.size)
                if len(raw) < _FRAME.size:
                    raise TraceFormatError(
                        f"{self.path}: truncated frame header at byte {offset}"
                    )
                magic, count, payload_len = _FRAME.unpack(raw)
                if magic != FRAME_MAGIC:
                    raise TraceFormatError(
                        f"{self.path}: bad frame magic {magic!r} "
                        f"at byte {offset}"
                    )
                body = offset + _FRAME.size
                if body + payload_len > self._size:
                    raise TraceFormatError(
                        f"{self.path}: frame at byte {offset} runs past "
                        f"end of file (payload {payload_len} bytes, "
                        f"{self._size - body} available)"
                    )
                index.append((first_record, offset, count, payload_len))
                first_record += count
                offset = body + payload_len
        if first_record != self.n_records:
            raise TraceFormatError(
                f"{self.path}: header promises {self.n_records} records, "
                f"frames hold {first_record}"
            )
        self._index = index
        return index

    def _read_frame(
        self, handle, entry: tuple[int, int, int, int]
    ) -> TraceChunk:
        first_record, offset, count, payload_len = entry
        handle.seek(offset + _FRAME.size)
        payload = handle.read(payload_len)
        if len(payload) < payload_len:
            raise TraceFormatError(
                f"{self.path}: truncated frame payload at byte {offset}"
            )
        try:
            raw = gzip.decompress(payload)
        except (OSError, EOFError) as exc:
            raise TraceFormatError(
                f"{self.path}: corrupt frame payload at byte {offset}: {exc}"
            ) from exc
        if len(raw) != count * RECORD_SIZE:
            raise TraceFormatError(
                f"{self.path}: frame at byte {offset} decodes to "
                f"{len(raw)} bytes, expected {count * RECORD_SIZE} "
                "(mid-record EOF)"
            )
        return _decode_frame(raw, first_record)

    # -- the stream API ------------------------------------------------

    def chunks(self, start: int = 0) -> Iterator[TraceChunk]:
        index = self.frame_index()
        if start:
            firsts = [entry[0] for entry in index]
            begin = max(bisect_right(firsts, start) - 1, 0)
        else:
            begin = 0
        with open(self.path, "rb") as handle:
            for entry in index[begin:]:
                if entry[0] + entry[2] <= start:
                    continue
                chunk = self._read_frame(handle, entry)
                if start > chunk.start:
                    chunk = chunk.tail(start - chunk.start)
                yield chunk

    def provenance(self) -> tuple[str, int, str]:
        return (self.format_name, self.format_version, self.digest())

    def digest(self) -> str:
        """SHA-256 of the file bytes (conformance pinning)."""
        digest = hashlib.sha256()
        with open(self.path, "rb") as handle:
            while block := handle.read(1 << 20):
                digest.update(block)
        return digest.hexdigest()

    def describe(self) -> dict:
        info = super().describe()
        info["path"] = str(self.path)
        info["bytes"] = self._size
        info["frames"] = len(self.frame_index())
        info["sha256"] = self.digest()
        return info


def convert_records(
    source: TraceStream | Iterable[TraceRecord],
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> Iterator[TraceChunk]:
    """Any record source as a chunk iterator (conversion plumbing)."""
    if hasattr(source, "chunks"):
        return source.chunks()
    return chunk_iter(source, chunk_records)
