"""Reuse-distance (LRU stack distance) analysis of address traces.

The stack distance of a reference is the number of *distinct* blocks
touched since the previous reference to the same block.  Its
distribution fully determines the miss ratio of a fully-associative
LRU cache of any size (Mattson's classic result), which makes it the
right tool both for characterising the synthetic workloads and for
sanity-checking simulated hit ratios.

The implementation is the standard O(N log M) algorithm: a Fenwick
tree counts "live" previous-access timestamps, so the number of
distinct blocks since the last touch is a prefix-sum query.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..common.errors import ConfigurationError
from .record import RefKind, TraceRecord


class _FenwickTree:
    """Binary indexed tree over timestamps (1-based)."""

    def __init__(self, size: int) -> None:
        self._tree = [0] * (size + 1)
        self._size = size

    def add(self, index: int, delta: int) -> None:
        while index <= self._size:
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total


class ReuseDistanceProfile:
    """Histogram of stack distances plus the cold-miss count.

    ``distances[d]`` counts references whose stack distance was
    exactly ``d`` (d >= 1); ``cold`` counts first touches (infinite
    distance).
    """

    def __init__(self) -> None:
        self.distances: dict[int, int] = {}
        self.cold = 0
        self.total = 0

    def record(self, distance: int | None) -> None:
        """Record one reference (None = first touch)."""
        self.total += 1
        if distance is None:
            self.cold += 1
        else:
            self.distances[distance] = self.distances.get(distance, 0) + 1

    def miss_ratio(self, cache_blocks: int) -> float:
        """Predicted miss ratio of a fully-associative LRU cache with
        *cache_blocks* lines under this reference stream.

        A reference misses iff its stack distance exceeds the cache
        size (or it is a first touch).
        """
        if cache_blocks < 1:
            raise ConfigurationError("cache must hold at least one block")
        if self.total == 0:
            return 0.0
        hits = sum(
            count
            for distance, count in self.distances.items()
            if distance <= cache_blocks
        )
        return 1.0 - hits / self.total

    def miss_ratio_curve(
        self, sizes: Iterable[int]
    ) -> list[tuple[int, float]]:
        """(size, predicted miss ratio) points, one per requested size."""
        return [(size, self.miss_ratio(size)) for size in sizes]

    def mean_distance(self) -> float:
        """Average finite stack distance (0.0 if none recorded)."""
        finite = self.total - self.cold
        if finite == 0:
            return 0.0
        return (
            sum(d * c for d, c in self.distances.items()) / finite
        )


def profile_reuse_distances(
    records: Iterable[TraceRecord],
    block_size: int = 16,
    cpu: int | None = None,
    kinds: tuple[RefKind, ...] = (RefKind.READ, RefKind.WRITE),
    use_physical: bool = False,
    layout=None,
) -> ReuseDistanceProfile:
    """Profile the stack distances of one reference class of a trace.

    By default data references are profiled by virtual block, per the
    stream one level-1 cache would see (restrict with *cpu*).  With
    *use_physical* the addresses are translated through *layout*
    first, merging synonyms — the stream a physical cache sees.
    """
    if use_physical and layout is None:
        raise ConfigurationError("use_physical requires a layout")
    block_bits = block_size.bit_length() - 1
    if 1 << block_bits != block_size:
        raise ConfigurationError("block size must be a power of two")

    # First pass materialises the block stream (timestamps need N).
    stream: list[int] = []
    for record in records:
        if cpu is not None and record.cpu != cpu:
            continue
        if record.kind not in kinds:
            continue
        if use_physical:
            addr = layout.translate(record.pid, record.vaddr)
            key = addr >> block_bits
        else:
            # Virtual streams from different processes are distinct.
            key = (record.vaddr >> block_bits) | (record.pid << 48)
        stream.append(key)

    profile = ReuseDistanceProfile()
    tree = _FenwickTree(len(stream))
    last_seen: dict[int, int] = {}
    for now, key in enumerate(stream, start=1):
        previous = last_seen.get(key)
        if previous is None:
            profile.record(None)
        else:
            distinct_since = tree.prefix_sum(now - 1) - tree.prefix_sum(previous)
            profile.record(distinct_since + 1)
            tree.add(previous, -1)
        tree.add(now, 1)
        last_seen[key] = now
    return profile
