"""Surrogate parameterisations of the paper's three ATUM traces.

Table 5 of the paper characterises the traces; these specs match the
CPU counts, reference mixes and context-switch rates, and their
locality knobs are calibrated so first-level and second-level hit
ratios land near the paper's Tables 6 and 7 (see EXPERIMENTS.md for
measured-vs-paper numbers).

* ``thor``   — 4 CPUs, rare switches, medium locality.
* ``pops``   — 4 CPUs, very rare switches, strong call-heavy
  instruction behaviour (the trace Tables 1-3 are drawn from).
* ``abaqus`` — 2 CPUs, *frequent* switches (292 in 1.2M references),
  larger data working set — the workload where flushing a virtual
  first-level cache visibly hurts.

``FULL_SCALE_REFS`` reproduces the paper's trace lengths; experiment
runners default to a smaller scale so that pure-Python simulation
completes in minutes (see DESIGN.md §6).
"""

from __future__ import annotations

from ..common.errors import ConfigurationError
from .synthetic import SyntheticWorkload, WorkloadSpec

#: Paper trace lengths (Table 5), in memory references.
FULL_SCALE_REFS = {"thor": 3_283_000, "pops": 3_286_000, "abaqus": 1_196_000}

THOR = WorkloadSpec(
    name="thor",
    n_cpus=4,
    total_refs=FULL_SCALE_REFS["thor"],
    instr_frac=0.462,
    read_frac=0.423,
    context_switches=21,
    processes_per_cpu=2,
    seed=0x7407,
    text_pages=20,
    data_pages=96,
    call_rate=0.004,
    hot_functions=5,
    loop_rate=0.06,
    loop_len_instrs=(8, 120),
    loop_iter_mean=90.0,
    shared_ref_frac=0.055,
    shared_write_frac=0.30,
    shared_hot_prob=0.85,
    data_reuse_prob=0.995,
    reuse_long_prob=0.023,
    reuse_long_mean=600.0,
    reuse_window_blocks=16384,
)

POPS = WorkloadSpec(
    name="pops",
    n_cpus=4,
    total_refs=FULL_SCALE_REFS["pops"],
    instr_frac=0.523,
    read_frac=0.391,
    context_switches=7,
    processes_per_cpu=2,
    seed=0x9095,
    text_pages=24,
    data_pages=96,
    call_rate=0.0065,
    hot_functions=6,
    loop_rate=0.06,
    loop_len_instrs=(8, 120),
    loop_iter_mean=80.0,
    shared_ref_frac=0.06,
    shared_write_frac=0.25,
    shared_hot_prob=0.85,
    data_reuse_prob=0.995,
    reuse_long_prob=0.014,
    reuse_long_mean=1600.0,
    reuse_window_blocks=16384,
)

ABAQUS = WorkloadSpec(
    name="abaqus",
    n_cpus=2,
    total_refs=FULL_SCALE_REFS["abaqus"],
    instr_frac=0.430,
    read_frac=0.502,
    context_switches=292,
    processes_per_cpu=3,
    seed=0xABA9,
    text_pages=28,
    data_pages=192,
    call_rate=0.003,
    hot_functions=12,
    loop_rate=0.05,
    loop_len_instrs=(8, 200),
    loop_iter_mean=40.0,
    shared_ref_frac=0.05,
    shared_write_frac=0.35,
    shared_hot_prob=0.80,
    data_reuse_prob=0.985,
    reuse_long_prob=0.061,
    reuse_long_mean=2500.0,
    reuse_window_blocks=16384,
)

_WORKLOADS = {"thor": THOR, "pops": POPS, "abaqus": ABAQUS}


def workload_names() -> list[str]:
    """The surrogate trace names, in the paper's table order."""
    return ["thor", "pops", "abaqus"]


def get_spec(name: str, scale: float = 1.0) -> WorkloadSpec:
    """Fetch a surrogate spec by name, optionally length-scaled."""
    try:
        spec = _WORKLOADS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; choose from {sorted(_WORKLOADS)}"
        ) from None
    return spec if scale == 1.0 else spec.scaled(scale)


def make_workload(name: str, scale: float = 1.0) -> SyntheticWorkload:
    """Build the surrogate workload *name* at the given scale."""
    return SyntheticWorkload(get_spec(name, scale))
