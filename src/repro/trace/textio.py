"""Plain-text trace files (a din-style format with CPU/PID columns).

Each line is ``<cpu> <pid> <kind> <hex vaddr>``; blank lines and
``#`` comments are ignored.  The format exists so traces can be dumped
once and replayed into many simulator configurations, or produced by
external tools.
"""

from __future__ import annotations

from pathlib import Path
from collections.abc import Iterable, Iterator

from ..common.errors import TraceFormatError
from .record import RefKind, TraceRecord

_KINDS = {kind.value: kind for kind in RefKind}


def dump(records: Iterable[TraceRecord], path: str | Path) -> int:
    """Write *records* to *path*; returns the number written."""
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        for record in records:
            handle.write(f"{record}\n")
            count += 1
    return count


def parse_line(line: str, lineno: int = 0) -> TraceRecord | None:
    """Parse one line; returns None for blanks and comments."""
    text = line.strip()
    if not text or text.startswith("#"):
        return None
    parts = text.split()
    if len(parts) != 4:
        raise TraceFormatError(f"line {lineno}: expected 4 fields, got {len(parts)}")
    try:
        cpu = int(parts[0])
        pid = int(parts[1])
        kind = _KINDS[parts[2]]
        vaddr = int(parts[3], 16)
    except (ValueError, KeyError) as exc:
        raise TraceFormatError(f"line {lineno}: {exc}") from exc
    if cpu < 0 or pid < 0 or vaddr < 0:
        raise TraceFormatError(f"line {lineno}: negative field")
    return TraceRecord(cpu, pid, kind, vaddr)


def load(path: str | Path) -> Iterator[TraceRecord]:
    """Lazily parse the trace file at *path*."""
    with open(path, encoding="ascii") as handle:
        for lineno, line in enumerate(handle, start=1):
            record = parse_line(line, lineno)
            if record is not None:
                yield record
