"""Plain-text trace files (a din-style format with CPU/PID columns).

Each line is ``<cpu> <pid> <kind> <hex vaddr>``; blank lines and
``#`` comments are ignored.  The format exists so traces can be dumped
once and replayed into many simulator configurations, or produced by
external tools.  Paths ending in ``.gz`` are transparently
gzip-compressed on both read and write (written with ``mtime=0`` so
output is deterministic).
"""

from __future__ import annotations

import gzip
import io
from collections.abc import Iterable, Iterator
from pathlib import Path

from ..common.errors import TraceFormatError
from .record import RefKind, TraceRecord

_KINDS = {kind.value: kind for kind in RefKind}

#: Lines buffered between writes in :func:`dump`.
_DUMP_BATCH = 4096

#: Human names of the four columns, for error reporting.
_COLUMNS = ("cpu", "pid", "kind", "vaddr")


def _open_text_write(path: Path):
    if path.suffix == ".gz":
        raw = open(path, "wb")
        # Empty filename + zero mtime: output depends only on content.
        gz = gzip.GzipFile(filename="", fileobj=raw, mode="wb", mtime=0)
        return io.TextIOWrapper(gz, encoding="ascii", newline="\n")
    return open(path, "w", encoding="ascii", newline="\n")


def dump(records: Iterable[TraceRecord], path: str | Path) -> int:
    """Write *records* to *path*; returns the number written.

    Streams through a buffered writer (one ``writelines`` per
    :data:`_DUMP_BATCH` lines, never a full materialisation) and
    gzip-compresses when *path* ends in ``.gz``.
    """
    path = Path(path)
    count = 0
    batch: list[str] = []
    with _open_text_write(path) as handle:
        for record in records:
            batch.append(f"{record}\n")
            if len(batch) >= _DUMP_BATCH:
                handle.writelines(batch)
                count += len(batch)
                batch.clear()
        if batch:
            handle.writelines(batch)
            count += len(batch)
    return count


def parse_line(line: str, lineno: int = 0) -> TraceRecord | None:
    """Parse one line; returns None for blanks and comments.

    Malformed fields raise :class:`TraceFormatError` naming the
    offending column (1-based) alongside the line number.
    """
    text = line.strip()
    if not text or text.startswith("#"):
        return None
    parts = text.split()
    if len(parts) != 4:
        raise TraceFormatError(
            f"line {lineno}: expected 4 fields, got {len(parts)}"
        )

    def bad(column: int, why: str) -> TraceFormatError:
        return TraceFormatError(
            f"line {lineno}: column {column} ({_COLUMNS[column - 1]}): {why}",
            line=lineno,
            column=column,
        )

    try:
        cpu = int(parts[0])
    except ValueError:
        raise bad(1, f"{parts[0]!r} is not an integer") from None
    try:
        pid = int(parts[1])
    except ValueError:
        raise bad(2, f"{parts[1]!r} is not an integer") from None
    kind = _KINDS.get(parts[2])
    if kind is None:
        raise bad(3, f"unknown kind {parts[2]!r}")
    try:
        vaddr = int(parts[3], 16)
    except ValueError:
        raise bad(4, f"{parts[3]!r} is not a hex address") from None
    for column, value in enumerate((cpu, pid, 0, vaddr), start=1):
        if value < 0:
            raise bad(column, "negative field")
    return TraceRecord(cpu, pid, kind, vaddr)


def load(path: str | Path) -> Iterator[TraceRecord]:
    """Lazily parse the trace file at *path* (gzip-aware by suffix)."""
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rt", encoding="ascii") as handle:
        for lineno, line in enumerate(handle, start=1):
            record = parse_line(line, lineno)
            if record is not None:
                yield record
