"""Bounded-chunk streaming traces (DESIGN.md §14).

The in-memory trace path (``SyntheticWorkload.records()`` feeding a
``list[TraceRecord]`` into the machine) materialises every record and
caps runs at the size of RAM.  This module is the streaming
substrate: a trace is a sequence of fixed-size :class:`TraceChunk`
batches — four parallel numpy ``int64`` vectors per chunk — produced
lazily by a :class:`TraceStream`, so a billion-reference replay holds
at most one chunk at a time.

The chunk layout is deliberately the struct-of-arrays engine's own
batch layout: ``run_soa`` consumes the vectors directly (no
``TraceRecord`` objects are ever built), while the object engine
iterates :meth:`TraceChunk.records`, which yields real records.  The
kind encoding is shared with the SoA classifier:

====  =========
code  kind
====  =========
0     INSTR
1     READ
2     WRITE
3     CSWITCH
4     CALL
====  =========

Streams are *resumable*: ``chunks(start=n)`` re-enters the trace at
absolute record index ``n`` (seekable formats jump there; generated
streams regenerate and skip — bounded memory either way), which is
what lets checkpointed replays restart mid-trace.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Iterator
from itertools import islice

import numpy as np

from ..common.errors import TraceFormatError
from .record import RefKind, TraceRecord

#: Records per chunk unless a stream overrides it.  Matches the SoA
#: engine's 64k-record classifier batch, so one chunk is one batch.
DEFAULT_CHUNK_RECORDS = 1 << 16

#: RefKind -> integer code (the SoA engine's batch encoding).
KIND_TO_CODE: dict[RefKind, int] = {
    RefKind.INSTR: 0,
    RefKind.READ: 1,
    RefKind.WRITE: 2,
    RefKind.CSWITCH: 3,
    RefKind.CALL: 4,
}

#: Integer code -> RefKind, indexable by code.
CODE_TO_KIND: tuple[RefKind, ...] = (
    RefKind.INSTR,
    RefKind.READ,
    RefKind.WRITE,
    RefKind.CSWITCH,
    RefKind.CALL,
)

#: Codes < MEMORY_CODE_LIMIT are memory references.
MEMORY_CODE_LIMIT = 3


class TraceChunk:
    """A bounded batch of trace records as four parallel vectors.

    Attributes:
        cpu, pid, kind, vaddr: ``int64`` numpy vectors of equal length
            (``kind`` holds :data:`KIND_TO_CODE` codes).
        start: absolute record index of the first record, so a chunk
            knows its position in the whole trace.
    """

    __slots__ = ("cpu", "pid", "kind", "vaddr", "start")

    def __init__(
        self,
        cpu: np.ndarray,
        pid: np.ndarray,
        kind: np.ndarray,
        vaddr: np.ndarray,
        start: int = 0,
    ) -> None:
        n = len(cpu)
        if not (len(pid) == len(kind) == len(vaddr) == n):
            raise ValueError("chunk vectors must have equal length")
        self.cpu = cpu
        self.pid = pid
        self.kind = kind
        self.vaddr = vaddr
        self.start = start

    def __len__(self) -> int:
        return len(self.cpu)

    @property
    def end(self) -> int:
        """Absolute record index one past the last record."""
        return self.start + len(self.cpu)

    @property
    def memory_refs(self) -> int:
        """How many records are memory references (not markers)."""
        return int(np.count_nonzero(self.kind < MEMORY_CODE_LIMIT))

    @classmethod
    def from_records(
        cls, records: Iterable[TraceRecord], start: int = 0
    ) -> "TraceChunk":
        """Pack materialised *records* into one chunk."""
        cpu: list[int] = []
        pid: list[int] = []
        kind: list[int] = []
        vaddr: list[int] = []
        codes = KIND_TO_CODE
        for record in records:
            cpu.append(record.cpu)
            pid.append(record.pid)
            kind.append(codes[record.kind])
            vaddr.append(record.vaddr)
        return cls(
            np.asarray(cpu, dtype=np.int64),
            np.asarray(pid, dtype=np.int64),
            np.asarray(kind, dtype=np.int64),
            np.asarray(vaddr, dtype=np.int64),
            start,
        )

    def records(self) -> Iterator[TraceRecord]:
        """The chunk as :class:`TraceRecord` objects (object engine)."""
        kinds = CODE_TO_KIND
        cpu = self.cpu.tolist()
        pid = self.pid.tolist()
        kind = self.kind.tolist()
        vaddr = self.vaddr.tolist()
        for i in range(len(cpu)):
            yield TraceRecord(cpu[i], pid[i], kinds[kind[i]], vaddr[i])

    def tail(self, skip: int) -> "TraceChunk":
        """The chunk minus its first *skip* records (zero-copy views).

        Used when resuming mid-chunk: a seekable reader lands on the
        frame containing the resume point and trims the records that
        were already replayed.
        """
        if skip < 0 or skip > len(self.cpu):
            raise ValueError(
                f"cannot skip {skip} records of a {len(self.cpu)}-record chunk"
            )
        if skip == 0:
            return self
        return TraceChunk(
            self.cpu[skip:],
            self.pid[skip:],
            self.kind[skip:],
            self.vaddr[skip:],
            self.start + skip,
        )


def chunk_iter(
    records: Iterable[TraceRecord],
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    start: int = 0,
) -> Iterator[TraceChunk]:
    """Batch a record iterator into :class:`TraceChunk` instances.

    *start* is the absolute index of the first record of *records*
    (the caller has already skipped that many), stamped onto the
    chunks so downstream checkpoints see absolute positions.
    """
    if chunk_records < 1:
        raise ValueError(f"chunk_records must be >= 1, got {chunk_records}")
    it = iter(records)
    position = start
    while True:
        batch = list(islice(it, chunk_records))
        if not batch:
            return
        chunk = TraceChunk.from_records(batch, position)
        position += len(batch)
        yield chunk


class TraceStream:
    """A resumable, bounded-memory source of :class:`TraceChunk`\\ s.

    Subclasses implement :meth:`chunks`; everything else (record
    iteration, provenance, metadata) has working defaults.  Iterating
    a stream yields records, so any API that accepts an iterable of
    records (``Multiprocessor.run``, ``textio.dump``) accepts a stream
    unchanged — the SoA engine additionally detects the ``chunks``
    attribute and consumes the vectors directly.

    Attributes:
        format_name: short format identifier ("synthetic", "rtb", …).
        format_version: integer version of the format/generator.
        chunk_records: records per chunk this stream emits.
        n_records: total records, when the format knows it (else None).
        n_cpus: CPU count of the traced machine, when known.
    """

    format_name = "stream"
    format_version = 1
    chunk_records = DEFAULT_CHUNK_RECORDS
    n_records: int | None = None
    n_cpus: int | None = None

    def chunks(self, start: int = 0) -> Iterator[TraceChunk]:
        """Yield chunks from absolute record index *start* onward."""
        raise NotImplementedError

    def records(self, start: int = 0) -> Iterator[TraceRecord]:
        """Flattened record view of :meth:`chunks`."""
        for chunk in self.chunks(start):
            yield from chunk.records()

    def __iter__(self) -> Iterator[TraceRecord]:
        return self.records()

    def provenance(self) -> tuple[str, int, str] | None:
        """``(format_name, format_version, content digest)`` or None.

        Keyed into the persistent result cache so a result computed
        from one trace file can never answer for another.  Streams
        with no stable identity (ad-hoc iterators) return None and are
        not disk-cached.
        """
        return None

    def describe(self) -> dict:
        """Human-facing metadata (``repro-trace info``)."""
        return {
            "format": self.format_name,
            "version": self.format_version,
            "chunk_records": self.chunk_records,
            "records": self.n_records,
            "cpus": self.n_cpus,
        }


class SyntheticTraceStream(TraceStream):
    """A synthetic workload as a stream: generated, never materialised.

    Each :meth:`chunks` call builds a fresh generator from the spec
    (the per-process engines are stateful, so iteration is one-shot)
    and skips *start* records — regeneration costs CPU, not memory,
    which is the trade a resumed billion-reference run wants.

    >>> from .synthetic import WorkloadSpec
    >>> stream = SyntheticTraceStream(WorkloadSpec(total_refs=1000), 256)
    >>> sum(len(c) for c in stream.chunks())  # doctest: +SKIP
    1004
    """

    format_name = "synthetic"

    def __init__(self, spec, chunk_records: int = DEFAULT_CHUNK_RECORDS) -> None:
        if chunk_records < 1:
            raise TraceFormatError(
                f"chunk_records must be >= 1, got {chunk_records}"
            )
        self.spec = spec
        self.chunk_records = chunk_records
        self.n_cpus = spec.n_cpus
        self._layout = None

    @property
    def layout(self):
        """The workload's :class:`~repro.mmu.address_space.MemoryLayout`.

        Built once from the spec; address-space construction is
        deterministic, so this layout matches the one any regeneration
        of the trace translates against.
        """
        if self._layout is None:
            from .synthetic import SyntheticWorkload

            self._layout = SyntheticWorkload(self.spec).layout
        return self._layout

    def chunks(self, start: int = 0) -> Iterator[TraceChunk]:
        from .synthetic import SyntheticWorkload

        source: Iterator[TraceRecord] = iter(SyntheticWorkload(self.spec))
        if start:
            # Regenerate-and-discard: O(start) time, O(1) memory.
            skipped = sum(1 for _ in islice(source, start))
            if skipped < start:
                return
        yield from chunk_iter(source, self.chunk_records, start)

    def provenance(self) -> tuple[str, int, str]:
        digest = hashlib.sha256(repr(self.spec).encode()).hexdigest()
        return (self.format_name, self.format_version, digest)

    def describe(self) -> dict:
        info = super().describe()
        info["workload"] = self.spec.name
        info["total_refs"] = self.spec.total_refs
        return info


class StreamCursor:
    """A :class:`~repro.trace.record.TraceCursor` over a stream.

    Same ``take``/``position`` contract, implemented over
    :meth:`TraceStream.chunks` with at most one chunk of lookahead —
    the checkpointed replay driver uses whichever cursor matches its
    trace without caring which.
    """

    __slots__ = ("stream", "position", "_records")

    def __init__(self, stream: TraceStream, position: int = 0) -> None:
        if position < 0:
            raise ValueError(f"position {position} is negative")
        self.stream = stream
        self.position = position
        self._records = stream.records(position)

    def take(self, n: int) -> list[TraceRecord]:
        """The next at-most-*n* records; advances the position.

        Returns an empty list once the stream is exhausted.
        """
        if n < 1:
            raise ValueError(f"chunk size must be >= 1, got {n}")
        batch = list(islice(self._records, n))
        self.position += len(batch)
        return batch
