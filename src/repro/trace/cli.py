"""``repro-trace`` — generate, convert and inspect trace files.

Subcommands:

``gen``
    Generate a synthetic workload trace to a file.  With ``--stream``
    the trace is produced through the bounded-chunk stream layer, so
    a full-scale (multi-million-reference) trace is written without
    ever being materialised.

``convert``
    Convert between the din-style text format (``.din``/``.txt``,
    optionally ``.gz``) and the RPTB gzip-framed binary format
    (``.rtb``).  The output format follows the output suffix; the
    input format is sniffed.  Conversion is deterministic, so text →
    binary → text round trips are byte-identical.

``info``
    Print a trace's metadata (format, record counts, digest) as JSON.

``head``
    Print the first N records as text lines.

``replay``
    Replay a trace file through the simulator (streamed, bounded
    memory) and print the resulting counters — the quickest way to
    point the machine at an external trace.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..common.errors import ReproError
from .stream import DEFAULT_CHUNK_RECORDS

#: Output suffixes that select the binary format in ``convert``/``gen``.
_BINARY_SUFFIXES = (".rtb",)


def _is_binary_path(path: Path) -> bool:
    return path.suffix in _BINARY_SUFFIXES


def _write_trace(source, path: Path, chunk_records: int) -> int:
    """Write *source* to *path* in the format its suffix selects."""
    if _is_binary_path(path):
        from .binio import write_binary

        return write_binary(source, path, chunk_records)
    from .textio import dump

    return dump(source, path)


def cmd_gen(args: argparse.Namespace) -> int:
    from .workloads import get_spec, make_workload

    out = Path(args.out)
    chunk = args.chunk_records
    if args.stream:
        from .stream import SyntheticTraceStream

        source = SyntheticTraceStream(get_spec(args.workload, args.scale), chunk)
    else:
        source = make_workload(args.workload, args.scale).records()
    written = _write_trace(source, out, chunk)
    print(f"{out}: {written} records ({args.workload} @ scale {args.scale:g})")
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    from .formats import open_trace

    stream = open_trace(args.input, chunk_records=args.chunk_records)
    out = Path(args.output)
    written = _write_trace(stream, out, args.chunk_records)
    print(f"{args.input} -> {out}: {written} records")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    from .formats import open_trace

    stream = open_trace(args.input)
    info = stream.describe()
    if info.get("records") is None and args.count:
        info["records"] = sum(len(chunk) for chunk in stream.chunks())
    print(json.dumps(info, indent=2, sort_keys=True))
    return 0


def cmd_head(args: argparse.Namespace) -> int:
    from itertools import islice

    from .formats import open_trace

    stream = open_trace(args.input)
    for record in islice(iter(stream), args.n):
        print(record)
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    from ..experiments.base import (
        RunOptions,
        get_run_options,
        set_run_options,
        simulate,
    )
    from ..hierarchy.config import HierarchyKind

    options = RunOptions(
        engine=args.engine,
        stream=True,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
    )
    previous = set_run_options(options)
    try:
        result = simulate(
            f"file:{args.input}",
            1.0,
            args.l1,
            args.l2,
            HierarchyKind(args.kind),
        )
    finally:
        set_run_options(previous)
    summary = {
        "refs_processed": result.refs_processed,
        "h1": round(result.h1, 6),
        "h2": round(result.h2, 6),
        "bus": result.bus_transactions,
    }
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Generate, convert and inspect simulator trace files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_chunk(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--chunk-records",
            type=int,
            default=DEFAULT_CHUNK_RECORDS,
            help="records per stream chunk / binary frame "
            f"(default {DEFAULT_CHUNK_RECORDS})",
        )

    gen = sub.add_parser("gen", help="generate a synthetic workload trace")
    gen.add_argument("workload", help="workload name (thor, pops, abaqus)")
    gen.add_argument("--scale", type=float, default=0.1, help="trace scale")
    gen.add_argument("--out", required=True, help="output path (.din/.rtb/.gz)")
    gen.add_argument(
        "--stream",
        action="store_true",
        help="generate through the stream layer (bounded memory)",
    )
    add_chunk(gen)
    gen.set_defaults(fn=cmd_gen)

    convert = sub.add_parser("convert", help="convert between trace formats")
    convert.add_argument("input", help="input trace (format sniffed)")
    convert.add_argument("output", help="output path (.din/.rtb/.gz)")
    add_chunk(convert)
    convert.set_defaults(fn=cmd_convert)

    info = sub.add_parser("info", help="print trace metadata as JSON")
    info.add_argument("input", help="trace file or SynchroTrace directory")
    info.add_argument(
        "--count",
        action="store_true",
        help="count records when the format header doesn't carry a total",
    )
    info.set_defaults(fn=cmd_info)

    head = sub.add_parser("head", help="print the first records as text")
    head.add_argument("input", help="trace file or SynchroTrace directory")
    head.add_argument("-n", type=int, default=10, help="records to print")
    head.set_defaults(fn=cmd_head)

    replay = sub.add_parser(
        "replay", help="replay a trace through the simulator (streamed)"
    )
    replay.add_argument("input", help="trace file or SynchroTrace directory")
    replay.add_argument("--l1", default="4K", help="level-1 size")
    replay.add_argument("--l2", default="64K", help="level-2 size")
    replay.add_argument(
        "--kind",
        default="vr",
        choices=["vr", "rr-incl", "rr-noincl"],
        help="hierarchy organisation",
    )
    replay.add_argument(
        "--engine", default="soa", choices=["object", "soa"], help="replay core"
    )
    replay.add_argument(
        "--checkpoint-dir", default=None, help="checkpoint directory (resumable)"
    )
    replay.add_argument(
        "--checkpoint-every",
        type=int,
        default=200_000,
        help="records between checkpoints",
    )
    replay.set_defaults(fn=cmd_replay)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"repro-trace: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
