"""One front door for external traces: :func:`open_trace`.

Callers hand over a path; the format is sniffed, not declared:

- a **directory** holding ``sigil.events.out-<tid>.gz`` files is a
  SynchroTrace-style event trace (:mod:`repro.trace.synchro`);
- a file starting with the ``RPTB`` magic is the gzip-framed binary
  format (:mod:`repro.trace.binio`);
- a file starting with the gzip magic is a gzip'd din-style text
  trace;
- anything else is tried as plain din-style text.

Every reader comes back as a :class:`~repro.trace.stream.TraceStream`,
so downstream code (engines, checkpointing, the CLI) never branches on
format again.
"""

from __future__ import annotations

import gzip
import hashlib
from collections.abc import Iterator
from itertools import islice
from pathlib import Path

from ..common.errors import TraceFormatError
from . import textio
from .binio import MAGIC, BinaryTraceReader
from .stream import DEFAULT_CHUNK_RECORDS, TraceChunk, TraceStream, chunk_iter
from .synchro import SynchroTraceReader, thread_files

_GZIP_MAGIC = b"\x1f\x8b"


class TextTraceStream(TraceStream):
    """A din-style text trace (optionally gzip'd) as a stream.

    Text has no frame index, so ``chunks(start=n)`` re-reads and skips
    — O(n) time, O(1) memory.  Fine for the small text traces the
    format is meant for; convert to binary for big ones.
    """

    format_name = "din"
    format_version = 1

    def __init__(
        self, path: str | Path, chunk_records: int = DEFAULT_CHUNK_RECORDS
    ) -> None:
        self.path = Path(path)
        if not self.path.is_file():
            raise TraceFormatError(f"{self.path}: no such trace file")
        self.chunk_records = chunk_records

    def chunks(self, start: int = 0) -> Iterator[TraceChunk]:
        source = textio.load(self.path)
        if start:
            skipped = sum(1 for _ in islice(source, start))
            if skipped < start:
                return
        yield from chunk_iter(source, self.chunk_records, start)

    def provenance(self) -> tuple[str, int, str]:
        return (self.format_name, self.format_version, self.digest())

    def digest(self) -> str:
        digest = hashlib.sha256()
        with open(self.path, "rb") as handle:
            while block := handle.read(1 << 20):
                digest.update(block)
        return digest.hexdigest()

    def describe(self) -> dict:
        info = super().describe()
        info["path"] = str(self.path)
        info["sha256"] = self.digest()
        return info


def sniff_format(path: str | Path) -> str:
    """The format name at *path*: ``synchro``, ``rtb``, or ``din``.

    Raises :class:`TraceFormatError` when *path* doesn't exist or a
    directory holds no thread event files.
    """
    path = Path(path)
    if path.is_dir():
        if thread_files(path):
            return "synchro"
        raise TraceFormatError(
            f"{path}: directory holds no sigil.events.out-<tid>.gz files"
        )
    if not path.is_file():
        raise TraceFormatError(f"{path}: no such trace file or directory")
    with open(path, "rb") as handle:
        head = handle.read(4)
    if head[:4] == MAGIC:
        return "rtb"
    if head[:2] == _GZIP_MAGIC:
        # Gzip'd *something*: an RPTB file is never gzip'd whole, so
        # this is a compressed text trace (validated lazily on read).
        return "din"
    return "din"


def open_trace(
    path: str | Path,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    n_cpus: int | None = None,
) -> TraceStream:
    """Open the trace at *path*, sniffing its format.

    Args:
        path: trace file or SynchroTrace directory.
        chunk_records: chunk size for formats that re-batch on read
            (binary traces keep their on-disk frame size).
        n_cpus: CPU count for formats that schedule (SynchroTrace);
            ignored by self-describing formats.
    """
    path = Path(path)
    fmt = sniff_format(path)
    if fmt == "synchro":
        return SynchroTraceReader(
            path, n_cpus=n_cpus or 2, chunk_records=chunk_records
        )
    if fmt == "rtb":
        return BinaryTraceReader(path)
    stream = TextTraceStream(path, chunk_records)
    # Fail fast on garbage: parse the first line now, not mid-replay.
    with gzip.open(path, "rt", encoding="ascii") if path.suffix == ".gz" else open(
        path, encoding="ascii"
    ) as handle:
        try:
            for lineno, line in enumerate(handle, start=1):
                if textio.parse_line(line, lineno) is not None:
                    break
                if lineno > 64:
                    break
        except (UnicodeDecodeError, OSError, EOFError) as exc:
            raise TraceFormatError(
                f"{path}: not a recognised trace format: {exc}"
            ) from exc
    return stream
