"""SynchroTrace-style per-thread event traces, lowered to records.

SynchroTrace-format traces (Nilakantan et al.) capture one gzip'd
event file per thread, ``sigil.events.out-<tid>.gz``, holding
dependency-annotated events rather than a flat reference stream:

``compute/memory``
    ``<ev>,<tid>,<iops>,<flops>,<reads>,<writes>`` followed by
    address ranges — `` * <start> <end>`` for reads and
    `` $ <start> <end>`` for writes.

``communication``
    ``<ev>,<tid> # <prod_tid> <prod_ev> <start> <end>`` — a read of
    a range produced by another thread's event.

``pthread marker``
    ``<ev>,<tid>,pth_ty:<n>^<addr>`` — synchronisation API calls.

This reader *lowers* those events into the simulator's flat
:class:`~repro.trace.record.TraceRecord` stream:

- Each thread becomes a process (``pid = tid``) scheduled round-robin
  onto ``cpu = tid % n_cpus`` — one event per thread per turn, which
  interleaves the threads the way the paper's multiprogrammed traces
  interleave processes.
- A compute/memory event emits one INSTR fetch at the thread's
  program counter (advanced by the instruction-op count), then a READ
  per byte-range start for each read range and a WRITE per write
  range.  Ranges wider than :attr:`SynchroTraceReader.max_range_refs`
  emit one reference per ``range_stride`` bytes, capped — event
  traces encode *footprint*, not per-byte references.
- A communication read emits READs of the produced range (the
  dependency edge is honoured implicitly: producers appear earlier in
  their own thread file, and round-robin keeps interleaving fair).
- A pthread marker emits a single READ of the synchronisation
  variable's address (lock metadata lives in memory too).

The lowering is deterministic — same files, same records — so
provenance hashing of the input files keys the result cache soundly.
"""

from __future__ import annotations

import gzip
import hashlib
import re
from collections.abc import Iterator
from pathlib import Path

from ..common.errors import TraceFormatError
from .record import RefKind, TraceRecord
from .stream import DEFAULT_CHUNK_RECORDS, TraceChunk, TraceStream, chunk_iter

#: File-name shape of one thread's event file.
THREAD_FILE_RE = re.compile(r"^sigil\.events\.out-(\d+)\.gz$")

#: Where each thread's synthetic program counter starts (thread-local
#: code segments, 1 MiB apart).
_PC_BASE = 0x0040_0000
_PC_STRIDE = 0x0010_0000


def thread_files(directory: str | Path) -> list[tuple[int, Path]]:
    """``(tid, path)`` pairs for every thread event file, tid-sorted."""
    directory = Path(directory)
    found: list[tuple[int, Path]] = []
    # sorted(): iterdir order is filesystem-dependent, and the round-
    # robin lowering interleaves threads in list order — an unsorted
    # walk would make replay output depend on inode layout.
    for path in sorted(directory.iterdir()):
        match = THREAD_FILE_RE.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    found.sort()
    return found


def _parse_int(token: str, path: Path, lineno: int, what: str) -> int:
    try:
        return int(token)
    except ValueError:
        raise TraceFormatError(
            f"{path.name}:{lineno}: {what} {token!r} is not an integer"
        ) from None


class _Event:
    """One parsed event, pre-lowered to its record template."""

    __slots__ = ("iops", "reads", "writes", "comm_ranges", "sync_addr")

    def __init__(self) -> None:
        self.iops = 0
        self.reads: list[tuple[int, int]] = []
        self.writes: list[tuple[int, int]] = []
        self.comm_ranges: list[tuple[int, int]] = []
        self.sync_addr: int | None = None


def parse_event_line(line: str, path: Path, lineno: int) -> _Event:
    """Parse one raw event line into an :class:`_Event`.

    Raises :class:`TraceFormatError` with the file/line context for
    anything malformed.
    """
    event = _Event()
    line = line.strip()
    if "#" in line:
        head, _, deps = line.partition("#")
        if head.count(",") != 1:
            raise TraceFormatError(
                f"{path.name}:{lineno}: malformed communication event header"
            )
        tokens = deps.split()
        if len(tokens) % 4 != 0 or not tokens:
            raise TraceFormatError(
                f"{path.name}:{lineno}: communication edge needs groups of "
                f"4 fields (prod_tid prod_ev start end), got {len(tokens)}"
            )
        for i in range(0, len(tokens), 4):
            start = _parse_int(tokens[i + 2], path, lineno, "range start")
            end = _parse_int(tokens[i + 3], path, lineno, "range end")
            event.comm_ranges.append((start, end))
        return event
    if "pth_ty:" in line:
        _, _, marker = line.partition("pth_ty:")
        _ty, sep, addr = marker.partition("^")
        if not sep:
            raise TraceFormatError(
                f"{path.name}:{lineno}: pthread marker missing '^address'"
            )
        event.sync_addr = _parse_int(
            addr.split()[0], path, lineno, "pthread address"
        )
        return event
    # Compute/memory event: CSV head, then optional * / $ range groups.
    head = line
    ranges = ""
    for sep in (" * ", " $ "):
        idx = head.find(sep)
        if idx != -1:
            head, ranges = head[:idx], line[idx:]
            break
    fields = head.split(",")
    if len(fields) != 6:
        raise TraceFormatError(
            f"{path.name}:{lineno}: compute event needs 6 comma fields "
            f"(ev,tid,iops,flops,reads,writes), got {len(fields)}"
        )
    event.iops = _parse_int(fields[2], path, lineno, "iops") + _parse_int(
        fields[3], path, lineno, "flops"
    )
    tokens = ranges.split()
    i = 0
    while i < len(tokens):
        sigil = tokens[i]
        if sigil not in ("*", "$") or i + 2 >= len(tokens):
            raise TraceFormatError(
                f"{path.name}:{lineno}: malformed address-range group "
                f"at token {i} ({sigil!r})"
            )
        start = _parse_int(tokens[i + 1], path, lineno, "range start")
        end = _parse_int(tokens[i + 2], path, lineno, "range end")
        if end < start:
            raise TraceFormatError(
                f"{path.name}:{lineno}: inverted range [{start}, {end}]"
            )
        (event.reads if sigil == "*" else event.writes).append((start, end))
        i += 3
    return event


class SynchroTraceReader(TraceStream):
    """Streams a SynchroTrace event directory as lowered records.

    Args:
        directory: directory holding ``sigil.events.out-<tid>.gz``.
        n_cpus: CPUs to schedule the threads onto (round-robin).
        range_stride: bytes between emitted references inside one
            address range (a cache-block-ish granule).
        max_range_refs: cap on references emitted per range, so one
            huge memset event cannot dominate the trace.
    """

    format_name = "synchro"
    format_version = 1

    def __init__(
        self,
        directory: str | Path,
        n_cpus: int = 2,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
        range_stride: int = 16,
        max_range_refs: int = 8,
    ) -> None:
        if n_cpus < 1:
            raise TraceFormatError(f"n_cpus must be >= 1, got {n_cpus}")
        if range_stride < 1 or max_range_refs < 1:
            raise TraceFormatError(
                "range_stride and max_range_refs must be >= 1"
            )
        self.directory = Path(directory)
        self.files = thread_files(self.directory)
        if not self.files:
            raise TraceFormatError(
                f"{self.directory}: no sigil.events.out-<tid>.gz files"
            )
        self.n_cpus = n_cpus
        self.chunk_records = chunk_records
        self.range_stride = range_stride
        self.max_range_refs = max_range_refs

    # -- lowering ------------------------------------------------------

    def _range_refs(self, start: int, end: int) -> Iterator[int]:
        stride = self.range_stride
        count = 0
        addr = start
        while addr <= end and count < self.max_range_refs:
            yield addr
            addr += stride
            count += 1

    def _thread_records(self, tid: int, path: Path) -> Iterator[list[TraceRecord]]:
        """Yield the record burst for each of one thread's events."""
        cpu = tid % self.n_cpus
        pc = _PC_BASE + tid * _PC_STRIDE
        try:
            with gzip.open(path, "rt", encoding="ascii") as handle:
                for lineno, line in enumerate(handle, start=1):
                    if not line.strip():
                        continue
                    event = parse_event_line(line, path, lineno)
                    burst = [TraceRecord(cpu, tid, RefKind.INSTR, pc)]
                    pc += 4 * max(event.iops, 1)
                    for start, end in event.reads:
                        for addr in self._range_refs(start, end):
                            burst.append(
                                TraceRecord(cpu, tid, RefKind.READ, addr)
                            )
                    for start, end in event.comm_ranges:
                        for addr in self._range_refs(start, end):
                            burst.append(
                                TraceRecord(cpu, tid, RefKind.READ, addr)
                            )
                    for start, end in event.writes:
                        for addr in self._range_refs(start, end):
                            burst.append(
                                TraceRecord(cpu, tid, RefKind.WRITE, addr)
                            )
                    if event.sync_addr is not None:
                        burst.append(
                            TraceRecord(cpu, tid, RefKind.READ, event.sync_addr)
                        )
                    yield burst
        except (OSError, EOFError, UnicodeDecodeError) as exc:
            raise TraceFormatError(
                f"{path.name}: unreadable event file: {exc}"
            ) from exc

    def lowered(self) -> Iterator[TraceRecord]:
        """The full lowered record stream (round-robin interleaved)."""
        streams = [
            self._thread_records(tid, path) for tid, path in self.files
        ]
        live = list(range(len(streams)))
        while live:
            still_live = []
            for i in live:
                burst = next(streams[i], None)
                if burst is None:
                    continue
                yield from burst
                still_live.append(i)
            live = still_live

    # -- the stream API ------------------------------------------------

    def chunks(self, start: int = 0) -> Iterator[TraceChunk]:
        source = self.lowered()
        if start:
            skipped = 0
            for _ in source:
                skipped += 1
                if skipped == start:
                    break
            if skipped < start:
                return
        yield from chunk_iter(source, self.chunk_records, start)

    def provenance(self) -> tuple[str, int, str]:
        digest = hashlib.sha256()
        for tid, path in self.files:
            digest.update(str(tid).encode())
            digest.update(path.read_bytes())
        return (self.format_name, self.format_version, digest.hexdigest())

    def describe(self) -> dict:
        info = super().describe()
        info["path"] = str(self.directory)
        info["threads"] = [tid for tid, _ in self.files]
        info["range_stride"] = self.range_stride
        info["max_range_refs"] = self.max_range_refs
        return info
