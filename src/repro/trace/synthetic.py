"""Synthetic multiprocessor address-trace generation.

This module substitutes for the ATUM VAX traces (`pops`, `thor`,
`abaqus`) used in the paper, which are not publicly available.  The
generator reproduces the *statistical shape* that drives every
mechanism the paper evaluates:

* an instruction stream with loops and procedure calls, where each
  call produces a burst of register-save stack writes (Table 1's
  write clustering) and each return a couple of stack reads;
* data references with tunable temporal locality (an LRU-stack reuse
  model) split between stack, private data, shared read/write
  segments and an intra-process alias region;
* shared segments mapped at *different virtual addresses* in every
  process — the source of synonyms;
* context switches between the processes of each CPU at a workload-
  dependent rate (rare for pops/thor surrogates, frequent for the
  abaqus surrogate);
* a reference-mix feedback controller that steers the emitted
  instruction/read/write mix to the Table 5 targets.

Everything is driven by one seeded PRNG per process plus one for the
machine, so a given :class:`WorkloadSpec` always yields the same trace.
"""

from __future__ import annotations

import random
from collections import OrderedDict, deque
from dataclasses import dataclass, field, replace
from collections.abc import Iterator

from ..common.errors import ConfigurationError
from ..mmu.address_space import MemoryLayout, Segment
from .record import RefKind, TraceRecord

#: Distribution of stack writes per procedure call, taken from the
#: shape of the paper's Table 1 (pops): dominated by 6- and 9-write
#: register-save sequences.
CALL_WRITE_WEIGHTS: dict[int, float] = {
    6: 0.373,
    7: 0.115,
    8: 0.113,
    9: 0.238,
    10: 0.072,
    11: 0.049,
    12: 0.036,
    16: 0.004,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """Every knob of one synthetic workload.

    The defaults are neutral; `repro.trace.workloads` defines the three
    paper surrogates.  Fractions refer to the memory-reference mix
    (markers excluded); ``write_frac`` is implied as the remainder.
    """

    name: str = "synthetic"
    n_cpus: int = 2
    total_refs: int = 100_000
    instr_frac: float = 0.50
    read_frac: float = 0.40
    context_switches: int = 4
    processes_per_cpu: int = 2
    seed: int = 1989

    # Address-space geometry (pages).
    page_size: int = 4096
    text_pages: int = 16
    data_pages: int = 64
    stack_pages: int = 8
    shared_pages: int = 16
    n_shared_segments: int = 2
    alias_pages: int = 4

    # Instruction-stream behaviour.
    call_rate: float = 0.007
    return_read_count: int = 2
    max_call_depth: int = 12
    loop_rate: float = 0.05
    loop_len_instrs: tuple[int, int] = (16, 400)
    loop_iter_mean: float = 60.0
    hot_functions: int = 32

    # Data-stream behaviour.
    stack_ref_frac: float = 0.22
    shared_ref_frac: float = 0.06
    shared_write_frac: float = 0.25
    alias_ref_frac: float = 0.01
    data_reuse_prob: float = 0.97
    reuse_window_blocks: int = 4096
    reuse_mean_depth: float = 24.0
    # A fraction of reuses draw from a much deeper exponential: these
    # are the medium-distance re-references that miss a small level 1
    # but hit the large level 2 (they set the paper's h2 range).
    reuse_long_prob: float = 0.18
    reuse_long_mean: float = 900.0
    data_block_size: int = 16

    # Hot-subset concentration for shared and alias regions: most
    # references go to a geometrically-distributed hot head so blocks
    # are re-touched while still cached (producing synonym hits and
    # invalidation traffic); the rest spread uniformly.
    shared_hot_prob: float = 0.7
    shared_hot_mean: float = 24.0
    alias_hot_mean: float = 12.0

    # Mix-controller jitter: probability of a random (weighted) pick
    # instead of the deficit-steered pick.
    mix_jitter: float = 0.10

    @property
    def write_frac(self) -> float:
        """Write fraction implied by the instruction/read fractions."""
        return 1.0 - self.instr_frac - self.read_frac

    def __post_init__(self) -> None:
        if self.n_cpus < 1:
            raise ConfigurationError("need at least one CPU")
        if self.total_refs < 1:
            raise ConfigurationError("total_refs must be positive")
        if self.processes_per_cpu < 1:
            raise ConfigurationError("need at least one process per CPU")
        if not 0 < self.instr_frac < 1 or not 0 <= self.read_frac < 1:
            raise ConfigurationError("fractions must lie in (0, 1)")
        if self.write_frac < 0:
            raise ConfigurationError("instr_frac + read_frac exceed 1")
        if self.context_switches < 0:
            raise ConfigurationError("context_switches must be >= 0")

    def scaled(self, scale: float) -> "WorkloadSpec":
        """A copy with reference count and switch count scaled.

        The context-switch *rate* is preserved so cache behaviour per
        reference is unchanged; only trace length shrinks or grows.
        """
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        switches = round(self.context_switches * scale)
        if self.context_switches > 0:
            switches = max(1, switches)
        return replace(
            self,
            total_refs=max(1, round(self.total_refs * scale)),
            context_switches=switches,
        )


# Virtual bases.  All processes share the same private-segment layout
# (as real programs do); shared segments get per-process bases so the
# same physical page has several virtual names (synonyms).
_TEXT_BASE = 0x0001_0000
_DATA_BASE = 0x0100_0000
_STACK_BASE = 0x7FF0_0000
# The second alias base is deliberately *not* cache-size aligned with
# the first (it differs in bits 13-14), so that for level-1 caches
# larger than a page the two virtual names of a block fall in
# different sets and exercise the paper's `move` synonym path; for
# page-sized caches the index lies within the page offset and
# synonyms are always same-set, as the paper notes.
_ALIAS_BASE_A = 0x2000_0000
_ALIAS_BASE_B = 0x2800_6000
_SHARED_BASE = 0x4000_0000
_SHARED_SEG_STRIDE = 0x0100_0000
_SHARED_PID_STRIDE = 0x0010_2000


@dataclass
class _ProcessSegments:
    """The segments one process engine draws addresses from."""

    text: Segment
    data: Segment
    stack: Segment
    alias_a: Segment
    alias_b: Segment
    shared: list[Segment] = field(default_factory=list)


class _ProcessEngine:
    """Generates the reference stream of a single process.

    One engine per process; its state (program counter, call stack,
    reuse window) survives across the context switches of its CPU, so
    a process resumes where it left off — which is what makes the
    V-cache flush matter.
    """

    def __init__(self, pid: int, spec: WorkloadSpec, segs: _ProcessSegments,
                 rng: random.Random) -> None:
        self.pid = pid
        self.spec = spec
        self.segs = segs
        self.rng = rng
        self.pending: deque[tuple[RefKind, int]] = deque()

        # Instruction state.  Call-stack frames save the caller's loop
        # so a call inside a loop resumes iterating after the return —
        # without this, instruction locality collapses to sequential
        # streaming and the level-1 hit ratio falls far below reality.
        self.pc = segs.text.base_vaddr
        # (return pc, saved sp, loop_start, loop_end, loop_iters)
        self.call_stack: list[tuple[int, int, int, int, int]] = []
        self.loop_start = 0
        self.loop_end = 0
        self.loop_iters = 0
        self.sp = segs.stack.end_vaddr - 64

        # Data-reuse stack: *distinct* block base addresses in true LRU
        # order (an OrderedDict used as a move-to-end list).  Depth
        # sampling indexes a periodically refreshed snapshot so a draw
        # of stack distance d really lands on the d-th most recently
        # used distinct block — the property that makes the h1/h2 knobs
        # analytically predictable — while staying O(1) amortised.
        self.lru_stack: OrderedDict[int, None] = OrderedDict()
        self._lru_snapshot: list[int] = []
        self._refs_since_snapshot = 0
        # Live ring of the most recent appends: short-depth draws use
        # it so they stay genuinely short (the snapshot can be up to a
        # refresh period stale, which would smear them outward).
        self._recent: deque[int] = deque(maxlen=128)
        self.data_frontier = segs.data.base_vaddr
        # Pre-seed the reuse stack with the data segment: the traced
        # program has been running before the trace window opens (ATUM
        # snapshots start mid-execution), so deep stack distances exist
        # from the first reference instead of needing to accumulate
        # through the tiny frontier rate.
        n_seed = min(
            spec.reuse_window_blocks,
            segs.data.size // spec.data_block_size,
        )
        for i in range(n_seed):
            self.lru_stack[
                segs.data.base_vaddr + i * spec.data_block_size
            ] = None
        self._lru_snapshot = list(self.lru_stack)

        # Running mix counts for the feedback controller.
        self.counts = {RefKind.INSTR: 0, RefKind.READ: 0, RefKind.WRITE: 0}
        self.total = 0

        # Call-burst sampling table.
        self._burst_sizes = list(CALL_WRITE_WEIGHTS)
        self._burst_weights = list(CALL_WRITE_WEIGHTS.values())

        # Hot-function entry points for calls (Zipf-ish reuse).
        n_funcs = max(4, spec.hot_functions)
        span = segs.text.size - 256
        self._functions = [
            segs.text.base_vaddr + (rng.randrange(span) & ~0x3)
            for _ in range(n_funcs)
        ]

    # -- mix controller ------------------------------------------------

    def _pick_kind(self) -> RefKind:
        spec = self.spec
        targets = {
            RefKind.INSTR: spec.instr_frac,
            RefKind.READ: spec.read_frac,
            RefKind.WRITE: spec.write_frac,
        }
        if self.rng.random() < spec.mix_jitter:
            return self.rng.choices(
                list(targets), weights=list(targets.values())
            )[0]
        # Deficit steering: pick the kind lagging its target most.
        total = self.total + 1
        best, best_deficit = RefKind.INSTR, float("-inf")
        for kind, frac in targets.items():
            deficit = frac * total - self.counts[kind]
            if deficit > best_deficit:
                best, best_deficit = kind, deficit
        return best

    # -- instruction engine ----------------------------------------------

    def _clamp_pc(self) -> None:
        text = self.segs.text
        if not text.contains(self.pc):
            self.pc = text.base_vaddr

    def _start_loop(self) -> None:
        lo, hi = self.spec.loop_len_instrs
        length = self.rng.randrange(lo, hi + 1) * 4
        self.loop_start = self.pc
        self.loop_end = min(self.pc + length, self.segs.text.end_vaddr - 4)
        # Geometric iteration count with the configured mean.
        mean = self.spec.loop_iter_mean
        self.loop_iters = min(int(self.rng.expovariate(1.0 / mean)) + 1, 10_000)

    def _do_call(self) -> None:
        burst = self.rng.choices(self._burst_sizes, weights=self._burst_weights)[0]
        self.pending.append((RefKind.CALL, 0))
        for _ in range(burst):
            self.sp -= 4
            if self.sp < self.segs.stack.base_vaddr + 64:
                self.sp = self.segs.stack.end_vaddr - 64
            self.pending.append((RefKind.WRITE, self._clamp_stack(self.sp)))
        self.call_stack.append(
            (
                self.pc,
                self.sp + burst * 4,
                self.loop_start,
                self.loop_end,
                self.loop_iters,
            )
        )
        # Zipf-flavoured function choice: low indices much hotter.
        index = min(
            int(self.rng.paretovariate(1.2)) - 1, len(self._functions) - 1
        )
        self.pc = self._functions[index]
        self.loop_iters = 0  # the callee starts fresh

    def _do_return(self) -> None:
        return_pc, saved_sp, loop_start, loop_end, loop_iters = (
            self.call_stack.pop()
        )
        for i in range(self.spec.return_read_count):
            self.pending.append((RefKind.READ, self._clamp_stack(self.sp + i * 4)))
        self.pc = return_pc
        self.sp = saved_sp
        self.loop_start = loop_start
        self.loop_end = loop_end
        self.loop_iters = loop_iters

    def _next_instr(self) -> int:
        addr = self.pc
        self.pc += 4
        if self.loop_iters > 0 and self.pc >= self.loop_end:
            self.loop_iters -= 1
            self.pc = self.loop_start
        self._clamp_pc()

        roll = self.rng.random()
        spec = self.spec
        if roll < spec.call_rate:
            if len(self.call_stack) < spec.max_call_depth:
                self._do_call()
            elif self.call_stack:
                self._do_return()
        elif roll < spec.call_rate * 2:
            if self.call_stack:
                self._do_return()
        elif roll < spec.call_rate * 2 + spec.loop_rate and self.loop_iters == 0:
            self._start_loop()
        return addr

    # -- data engine ----------------------------------------------------

    def _hot_block(self, n_blocks: int, mean: float) -> int:
        """A block index concentrated near 0 (geometric with *mean*)."""
        index = int(self.rng.expovariate(1.0 / mean))
        return index if index < n_blocks else self.rng.randrange(n_blocks)

    def _shared_addr(self) -> int:
        spec = self.spec
        seg = self.rng.choice(self.segs.shared)
        n_blocks = seg.size // spec.data_block_size
        if self.rng.random() < spec.shared_hot_prob:
            block = self._hot_block(n_blocks, spec.shared_hot_mean)
        else:
            block = self.rng.randrange(n_blocks)
        return seg.base_vaddr + block * spec.data_block_size

    def _alias_addr(self) -> int:
        seg = self.segs.alias_a if self.rng.random() < 0.5 else self.segs.alias_b
        n_blocks = seg.size // self.spec.data_block_size
        block = self._hot_block(n_blocks, self.spec.alias_hot_mean)
        return seg.base_vaddr + block * self.spec.data_block_size

    _SNAPSHOT_PERIOD = 1024

    def _touch_lru(self, base: int) -> None:
        stack = self.lru_stack
        if base in stack:
            stack.move_to_end(base)
        else:
            stack[base] = None
            if len(stack) > self.spec.reuse_window_blocks:
                stack.popitem(last=False)

    def _private_addr(self) -> int:
        spec = self.spec
        self._refs_since_snapshot += 1
        if (
            self._refs_since_snapshot >= self._SNAPSHOT_PERIOD
            or not self._lru_snapshot
        ):
            self._lru_snapshot = list(self.lru_stack)
            self._refs_since_snapshot = 0
        snapshot = self._lru_snapshot
        recent = self._recent
        if recent and self.rng.random() < spec.data_reuse_prob:
            if self.rng.random() < spec.reuse_long_prob:
                depth = int(self.rng.expovariate(1.0 / spec.reuse_long_mean))
                if depth >= len(snapshot):
                    depth = len(snapshot) - 1
                base = snapshot[len(snapshot) - 1 - depth]
            else:
                depth = int(self.rng.expovariate(1.0 / spec.reuse_mean_depth))
                if depth >= len(recent):
                    depth = len(recent) - 1
                base = recent[len(recent) - 1 - depth]
        else:
            self.data_frontier += spec.data_block_size
            if self.data_frontier >= self.segs.data.end_vaddr:
                self.data_frontier = self.segs.data.base_vaddr
            base = self.data_frontier
        self._touch_lru(base)
        recent.append(base)
        return base + (self.rng.randrange(self.spec.data_block_size // 4) * 4)

    def _clamp_stack(self, addr: int) -> int:
        stack = self.segs.stack
        return min(max(addr, stack.base_vaddr), stack.end_vaddr - 4)

    def _next_data(self) -> int:
        spec = self.spec
        roll = self.rng.random()
        if roll < spec.stack_ref_frac:
            return self._clamp_stack(self.sp + self.rng.randrange(-8, 24) * 4)
        roll -= spec.stack_ref_frac
        if roll < spec.shared_ref_frac:
            return self._shared_addr()
        roll -= spec.shared_ref_frac
        if roll < spec.alias_ref_frac:
            return self._alias_addr()
        return self._private_addr()

    # -- main step -------------------------------------------------------

    def next_event(self) -> tuple[RefKind, int]:
        """Produce the next (kind, vaddr) event for this process."""
        if self.pending:
            kind, addr = self.pending.popleft()
        else:
            kind = self._pick_kind()
            if kind is RefKind.INSTR:
                addr = self._next_instr()
            else:
                addr = self._next_data()
        if kind.is_memory:
            self.counts[kind] += 1
            self.total += 1
        return kind, addr


class SyntheticWorkload:
    """A complete machine workload: address spaces plus trace stream.

    Iterating yields :class:`TraceRecord` events, round-robin across
    CPUs, one memory reference per CPU turn, with CSWITCH markers
    injected per the switch schedule.  The workload owns the
    :class:`MemoryLayout` the simulator translates against.

    >>> spec = WorkloadSpec(name="tiny", total_refs=100, context_switches=1)
    >>> workload = SyntheticWorkload(spec)
    >>> records = list(workload)
    >>> sum(1 for r in records if r.is_memory)
    100
    """

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.layout = MemoryLayout(spec.page_size)
        self._machine_rng = random.Random(spec.seed)
        self._engines: dict[int, _ProcessEngine] = {}
        self._cpu_processes: list[list[int]] = []
        self._build_address_spaces()

    # -- construction ------------------------------------------------------

    def _build_address_spaces(self) -> None:
        spec = self.spec
        layout = self.layout
        pids_by_cpu: list[list[int]] = []
        next_pid = 1
        for _cpu in range(spec.n_cpus):
            pids = []
            for _ in range(spec.processes_per_cpu):
                pids.append(next_pid)
                next_pid += 1
            pids_by_cpu.append(pids)
        all_pids = [pid for pids in pids_by_cpu for pid in pids]

        # Shared segments: one physical region, per-process virtual base.
        shared_by_pid: dict[int, list[Segment]] = {pid: [] for pid in all_pids}
        for s in range(spec.n_shared_segments):
            mappings = [
                (pid, _SHARED_BASE + s * _SHARED_SEG_STRIDE
                 + pid * _SHARED_PID_STRIDE)
                for pid in all_pids
            ]
            segments = layout.add_shared_segment(
                f"shm{s}", mappings, spec.shared_pages
            )
            for segment in segments:
                shared_by_pid[segment.pid].append(segment)

        for cpu, pids in enumerate(pids_by_cpu):
            for pid in pids:
                text = layout.add_private_segment(
                    pid, "text", _TEXT_BASE, spec.text_pages
                )
                data = layout.add_private_segment(
                    pid, "data", _DATA_BASE, spec.data_pages
                )
                stack = layout.add_private_segment(
                    pid, "stack", _STACK_BASE, spec.stack_pages
                )
                alias_a, alias_b = layout.add_shared_segment(
                    f"alias-p{pid}",
                    [(pid, _ALIAS_BASE_A), (pid, _ALIAS_BASE_B)],
                    spec.alias_pages,
                )
                segs = _ProcessSegments(
                    text=text, data=data, stack=stack,
                    alias_a=alias_a, alias_b=alias_b,
                    shared=shared_by_pid[pid],
                )
                rng = random.Random((spec.seed << 16) ^ (pid * 2_654_435_761))
                self._engines[pid] = _ProcessEngine(pid, spec, segs, rng)
        self._cpu_processes = pids_by_cpu

    def _switch_schedule(self) -> list[list[int]]:
        """Per-CPU sorted switch points, in per-CPU memory-ref counts."""
        spec = self.spec
        per_cpu_refs = spec.total_refs // spec.n_cpus
        schedule: list[list[int]] = [[] for _ in range(spec.n_cpus)]
        if spec.context_switches == 0 or per_cpu_refs < 2:
            return schedule
        for j in range(spec.context_switches):
            cpu = j % spec.n_cpus
            slot = j // spec.n_cpus
            switches_on_cpu = (
                spec.context_switches + spec.n_cpus - 1 - cpu
            ) // spec.n_cpus
            span = per_cpu_refs / (switches_on_cpu + 1)
            jitter = self._machine_rng.uniform(-span / 4, span / 4)
            point = int((slot + 1) * span + jitter)
            schedule[cpu].append(min(max(point, 1), per_cpu_refs - 1))
        for points in schedule:
            points.sort()
        return schedule

    # -- iteration ----------------------------------------------------------

    def __iter__(self) -> Iterator[TraceRecord]:
        spec = self.spec
        n_cpus = spec.n_cpus
        per_cpu = [spec.total_refs // n_cpus] * n_cpus
        for i in range(spec.total_refs - sum(per_cpu)):
            per_cpu[i] += 1

        schedule = self._switch_schedule()
        current = [0] * n_cpus  # index into the CPU's process list
        emitted = [0] * n_cpus
        switch_pos = [0] * n_cpus

        active = list(range(n_cpus))
        while active:
            for cpu in list(active):
                if emitted[cpu] >= per_cpu[cpu]:
                    active.remove(cpu)
                    continue
                points = schedule[cpu]
                if (switch_pos[cpu] < len(points)
                        and emitted[cpu] >= points[switch_pos[cpu]]):
                    switch_pos[cpu] += 1
                    current[cpu] = (current[cpu] + 1) % len(
                        self._cpu_processes[cpu]
                    )
                    pid = self._cpu_processes[cpu][current[cpu]]
                    yield TraceRecord(cpu, pid, RefKind.CSWITCH)
                pid = self._cpu_processes[cpu][current[cpu]]
                engine = self._engines[pid]
                # Emit until one memory reference has gone out (markers
                # such as CALL don't count against the budget).
                while True:
                    kind, addr = engine.next_event()
                    yield TraceRecord(cpu, pid, kind, addr)
                    if kind.is_memory:
                        emitted[cpu] += 1
                        break

    def records(self) -> list[TraceRecord]:
        """Materialise the whole trace (convenient for small traces)."""
        return list(self)
