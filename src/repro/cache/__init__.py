"""Cache substrate: geometry, tag stores, replacement, write buffers."""

from .block import CacheBlock
from .config import CacheConfig
from .replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from .tagstore import TagStore
from .write_buffer import WriteBuffer, WriteBufferEntry

__all__ = [
    "CacheBlock",
    "CacheConfig",
    "FIFOPolicy",
    "LRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "TagStore",
    "WriteBuffer",
    "WriteBufferEntry",
    "make_policy",
]
