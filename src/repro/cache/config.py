"""Cache geometry: sizes, blocks, sets and address slicing.

A :class:`CacheConfig` is shared by every cache in the simulator —
virtual or physical, level 1 or level 2 — because geometry is
independent of what kind of address indexes the cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ConfigurationError
from ..common.params import format_size, log2_exact, parse_size


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache.

    Attributes:
        size: total data capacity in bytes.
        block_size: bytes per block (line).
        associativity: ways per set (1 = direct mapped).

    >>> cfg = CacheConfig.create("16K", block_size=16)
    >>> cfg.n_sets, cfg.n_blocks
    (1024, 1024)
    """

    size: int
    block_size: int
    associativity: int = 1

    @classmethod
    def create(
        cls,
        size: int | str,
        block_size: int | str = 16,
        associativity: int = 1,
    ) -> "CacheConfig":
        """Build a config accepting "16K"-style size spellings."""
        return cls(parse_size(size), parse_size(block_size), associativity)

    def __post_init__(self) -> None:
        log2_exact(self.size, "cache size")
        log2_exact(self.block_size, "block size")
        if self.associativity < 1:
            raise ConfigurationError(
                f"associativity must be >= 1, got {self.associativity}"
            )
        if self.block_size > self.size:
            raise ConfigurationError(
                f"block size {self.block_size} exceeds cache size {self.size}"
            )
        if self.n_blocks % self.associativity:
            raise ConfigurationError(
                f"associativity {self.associativity} does not divide "
                f"{self.n_blocks} blocks"
            )

    # -- derived geometry ----------------------------------------------

    @property
    def n_blocks(self) -> int:
        """Total number of blocks."""
        return self.size // self.block_size

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.n_blocks // self.associativity

    @property
    def block_bits(self) -> int:
        """log2(block size) — the offset field width."""
        return self.block_size.bit_length() - 1

    @property
    def set_bits(self) -> int:
        """log2(number of sets) — the index field width."""
        return self.n_sets.bit_length() - 1

    # -- address slicing -------------------------------------------------

    def block_number(self, addr: int) -> int:
        """The block-aligned address identifier (address >> block bits)."""
        return addr >> self.block_bits

    def block_base(self, addr: int) -> int:
        """First byte address of the block containing *addr*."""
        return addr & ~(self.block_size - 1)

    def set_index(self, addr: int) -> int:
        """Set selected by *addr*."""
        return self.block_number(addr) & (self.n_sets - 1)

    def tag(self, addr: int) -> int:
        """Tag field of *addr* (block number with the index stripped)."""
        return self.block_number(addr) >> self.set_bits

    def address_of(self, tag: int, set_index: int) -> int:
        """Reconstruct the block base address from (tag, set)."""
        return ((tag << self.set_bits) | set_index) << self.block_bits

    def describe(self) -> str:
        """Short human-readable geometry string like '16K/16B 2-way'."""
        way = "direct-mapped" if self.associativity == 1 else f"{self.associativity}-way"
        return f"{format_size(self.size)}/{self.block_size}B {way}"
