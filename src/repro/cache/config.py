"""Cache geometry: sizes, blocks, sets and address slicing.

A :class:`CacheConfig` is shared by every cache in the simulator —
virtual or physical, level 1 or level 2 — because geometry is
independent of what kind of address indexes the cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import ConfigurationError
from ..common.params import format_size, log2_exact, parse_size


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache.

    Attributes:
        size: total data capacity in bytes.
        block_size: bytes per block (line).
        associativity: ways per set (1 = direct mapped).

    >>> cfg = CacheConfig.create("16K", block_size=16)
    >>> cfg.n_sets, cfg.n_blocks
    (1024, 1024)
    """

    size: int
    block_size: int
    associativity: int = 1

    @classmethod
    def create(
        cls,
        size: int | str,
        block_size: int | str = 16,
        associativity: int = 1,
    ) -> "CacheConfig":
        """Build a config accepting "16K"-style size spellings."""
        return cls(parse_size(size), parse_size(block_size), associativity)

    # Derived geometry, precomputed once: address slicing runs on
    # every simulated reference, so the shift/mask constants live as
    # plain attributes rather than per-call div/mod properties.
    n_blocks: int = field(init=False, repr=False, compare=False)
    n_sets: int = field(init=False, repr=False, compare=False)
    block_bits: int = field(init=False, repr=False, compare=False)
    set_bits: int = field(init=False, repr=False, compare=False)
    set_mask: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        log2_exact(self.size, "cache size")
        log2_exact(self.block_size, "block size")
        if self.associativity < 1:
            raise ConfigurationError(
                f"associativity must be >= 1, got {self.associativity}"
            )
        if self.block_size > self.size:
            raise ConfigurationError(
                f"block size {self.block_size} exceeds cache size {self.size}"
            )
        n_blocks = self.size // self.block_size
        if n_blocks % self.associativity:
            raise ConfigurationError(
                f"associativity {self.associativity} does not divide "
                f"{n_blocks} blocks"
            )
        n_sets = n_blocks // self.associativity
        object.__setattr__(self, "n_blocks", n_blocks)
        object.__setattr__(self, "n_sets", n_sets)
        object.__setattr__(self, "block_bits", self.block_size.bit_length() - 1)
        object.__setattr__(self, "set_bits", n_sets.bit_length() - 1)
        object.__setattr__(self, "set_mask", n_sets - 1)

    # -- address slicing -------------------------------------------------

    def block_number(self, addr: int) -> int:
        """The block-aligned address identifier (address >> block bits)."""
        return addr >> self.block_bits

    def block_base(self, addr: int) -> int:
        """First byte address of the block containing *addr*."""
        return addr & ~(self.block_size - 1)

    def set_index(self, addr: int) -> int:
        """Set selected by *addr*."""
        return (addr >> self.block_bits) & self.set_mask

    def tag(self, addr: int) -> int:
        """Tag field of *addr* (block number with the index stripped)."""
        return addr >> self.block_bits >> self.set_bits

    def address_of(self, tag: int, set_index: int) -> int:
        """Reconstruct the block base address from (tag, set)."""
        return ((tag << self.set_bits) | set_index) << self.block_bits

    def describe(self) -> str:
        """Short human-readable geometry string like '16K/16B 2-way'."""
        way = "direct-mapped" if self.associativity == 1 else f"{self.associativity}-way"
        return f"{format_size(self.size)}/{self.block_size}B {way}"
