"""Replacement policies for set-associative tag stores.

A policy keeps per-set recency/arrival state and answers two
questions: which way to victimise, and how to update state on an
access or install.  Policies are deliberately decoupled from the tag
store so the R-cache's inclusion-aware victim selection (prefer ways
with all inclusion bits clear) can be layered on top via the
*candidates* argument of :meth:`ReplacementPolicy.choose`.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Sequence

from ..common.errors import ConfigurationError


class ReplacementPolicy(ABC):
    """Replacement state for every set of one cache."""

    __slots__ = ("n_sets", "associativity")

    def __init__(self, n_sets: int, associativity: int) -> None:
        self.n_sets = n_sets
        self.associativity = associativity

    @abstractmethod
    def on_access(self, set_index: int, way: int) -> None:
        """Record a hit on (set, way)."""

    @abstractmethod
    def on_install(self, set_index: int, way: int) -> None:
        """Record a fill into (set, way)."""

    @abstractmethod
    def choose(self, set_index: int, candidates: Sequence[int]) -> int:
        """Pick a victim way among *candidates* (never empty)."""

    @abstractmethod
    def export_state(self) -> object:
        """Checkpointable snapshot of the per-set policy state."""

    @abstractmethod
    def restore_state(self, state: object) -> None:
        """Replace the policy state with a snapshot's."""


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used: the paper's default at both levels."""

    __slots__ = ("_order",)

    def __init__(self, n_sets: int, associativity: int) -> None:
        super().__init__(n_sets, associativity)
        # Per set, ways ordered LRU-first.
        self._order = [list(range(associativity)) for _ in range(n_sets)]

    def _touch(self, set_index: int, way: int) -> None:
        order = self._order[set_index]
        order.remove(way)
        order.append(way)

    def on_access(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def on_install(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def choose(self, set_index: int, candidates: Sequence[int]) -> int:
        allowed = frozenset(candidates)
        for way in self._order[set_index]:
            if way in allowed:
                return way
        raise ConfigurationError("victim requested with no candidate ways")

    def recency_order(self, set_index: int) -> list[int]:
        """Ways LRU-first, exposed for tests."""
        return list(self._order[set_index])

    def export_state(self) -> object:
        return [list(order) for order in self._order]

    def restore_state(self, state: object) -> None:
        self._order = [list(order) for order in state]  # type: ignore[union-attr]


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: order set at install time only."""

    __slots__ = ("_order",)

    def __init__(self, n_sets: int, associativity: int) -> None:
        super().__init__(n_sets, associativity)
        self._order = [list(range(associativity)) for _ in range(n_sets)]

    def on_access(self, set_index: int, way: int) -> None:
        pass

    def on_install(self, set_index: int, way: int) -> None:
        order = self._order[set_index]
        order.remove(way)
        order.append(way)

    def choose(self, set_index: int, candidates: Sequence[int]) -> int:
        allowed = frozenset(candidates)
        for way in self._order[set_index]:
            if way in allowed:
                return way
        raise ConfigurationError("victim requested with no candidate ways")

    def export_state(self) -> object:
        return [list(order) for order in self._order]

    def restore_state(self, state: object) -> None:
        self._order = [list(order) for order in state]  # type: ignore[union-attr]


class RandomPolicy(ReplacementPolicy):
    """Seeded random choice, as the paper's R-cache fallback rule uses."""

    __slots__ = ("_rng",)

    def __init__(self, n_sets: int, associativity: int, seed: int = 0) -> None:
        super().__init__(n_sets, associativity)
        self._rng = random.Random(seed)

    def on_access(self, set_index: int, way: int) -> None:
        pass

    def on_install(self, set_index: int, way: int) -> None:
        pass

    def choose(self, set_index: int, candidates: Sequence[int]) -> int:
        if not candidates:
            raise ConfigurationError("victim requested with no candidate ways")
        return self._rng.choice(list(candidates))

    def export_state(self) -> object:
        return self._rng.getstate()

    def restore_state(self, state: object) -> None:
        self._rng.setstate(state)  # type: ignore[arg-type]


_POLICIES = {"lru": LRUPolicy, "fifo": FIFOPolicy, "random": RandomPolicy}


def make_policy(
    name: str, n_sets: int, associativity: int, seed: int = 0
) -> ReplacementPolicy:
    """Instantiate a policy by name ("lru", "fifo" or "random")."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    if cls is RandomPolicy:
        return RandomPolicy(n_sets, associativity, seed)
    return cls(n_sets, associativity)
