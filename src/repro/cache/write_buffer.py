"""FIFO write buffer between the V-cache and the R-cache.

When the V-cache evicts a dirty block, the block's data parks here
until the R-cache absorbs it; the matching R-cache subentry keeps a
*buffer bit* set so coherence and synonym lookups know where the only
up-to-date copy lives.  Bus-induced flushes and invalidations must
therefore be able to search the buffer by physical block.

The paper shows (Table 3) that with swapped write-backs a single-entry
buffer suffices; capacity is configurable so that claim can be tested.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..common.stats import CounterBag


@dataclass(slots=True)
class WriteBufferEntry:
    """One dirty block awaiting write-back.

    Attributes:
        pblock: physical block number of the data.
        version: data version stamp being written back.
        swapped: True when the eviction was of a swapped-valid block
            (a lazy context-switch write-back).
    """

    pblock: int
    version: int
    swapped: bool = False


class WriteBuffer:
    """Bounded FIFO of :class:`WriteBufferEntry`.

    >>> buf = WriteBuffer(capacity=2)
    >>> buf.push(WriteBufferEntry(pblock=7, version=1))
    >>> buf.full
    False
    """

    __slots__ = ("capacity", "stats", "_entries")

    def __init__(self, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"write buffer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = CounterBag()
        self._entries: deque[WriteBufferEntry] = deque()

    @property
    def full(self) -> bool:
        """True when a push would stall the processor."""
        return len(self._entries) >= self.capacity

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, entry: WriteBufferEntry) -> None:
        """Queue *entry*.  The caller must make room first when full.

        The hierarchy drains the oldest entry synchronously (a
        processor stall, counted there) before pushing into a full
        buffer, so overflow here is a programming error.
        """
        if self.full:
            raise RuntimeError("write buffer overflow: drain before pushing")
        self._entries.append(entry)
        self.stats.add("pushes")
        if entry.swapped:
            self.stats.add("swapped_pushes")

    def pop_oldest(self) -> WriteBufferEntry:
        """Retire the oldest entry (its data reaches the R-cache)."""
        entry = self._entries.popleft()
        self.stats.add("retires")
        return entry

    def drain(self) -> list[WriteBufferEntry]:
        """Retire every entry, oldest first."""
        out = []
        while self._entries:
            out.append(self.pop_oldest())
        return out

    def find(self, pblock: int) -> WriteBufferEntry | None:
        """The entry holding physical block *pblock*, if any."""
        for entry in self._entries:
            if entry.pblock == pblock:
                return entry
        return None

    def remove(self, pblock: int) -> WriteBufferEntry | None:
        """Remove and return the entry for *pblock* (flush or cancel)."""
        for i, entry in enumerate(self._entries):
            if entry.pblock == pblock:
                del self._entries[i]
                self.stats.add("removals")
                return entry
        return None

    def entries(self) -> list[WriteBufferEntry]:
        """Snapshot of queued entries, oldest first."""
        return list(self._entries)

    def export_state(self) -> dict:
        """Checkpointable snapshot (contents and statistics)."""
        return {
            "entries": [
                (e.pblock, e.version, e.swapped) for e in self._entries
            ],
            "stats": self.stats.export_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Replace buffer contents with a snapshot's (no stats side
        effects beyond restoring the snapshot's own counters).

        The deque is mutated in place — the hierarchy's fast path
        holds a direct reference to it.
        """
        self._entries.clear()
        self._entries.extend(
            WriteBufferEntry(pblock, version, swapped)
            for pblock, version, swapped in state["entries"]
        )
        self.stats.restore_state(state["stats"])
