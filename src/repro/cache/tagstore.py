"""The set-associative tag store both cache levels build on.

A :class:`TagStore` is policy-free about *what* the blocks mean: it
slices addresses per a :class:`CacheConfig`, finds matching blocks,
chooses victims and maintains replacement state.  The V-cache and
R-cache wrap it with their own semantics (swapped-valid handling,
subentries, inclusion).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence

from ..common.errors import ConfigurationError
from .block import CacheBlock
from .config import CacheConfig
from .replacement import ReplacementPolicy, make_policy

BlockFactory = Callable[[int, int], CacheBlock]


class TagStore:
    """Tag array + replacement state for one cache.

    The *block_factory* lets a subsystem substitute a richer block
    class (the R-cache does); it must accept ``(set_index, way)``.

    >>> store = TagStore(CacheConfig.create("1K", block_size=16, associativity=2))
    >>> store.find(0x40) is None
    True
    """

    __slots__ = (
        "config",
        "policy",
        "_sets",
        "_block_bits",
        "_set_bits",
        "_set_mask",
        "_multiway",
    )

    def __init__(
        self,
        config: CacheConfig,
        block_factory: BlockFactory = CacheBlock,
        replacement: str | ReplacementPolicy = "lru",
        seed: int = 0,
    ) -> None:
        self.config = config
        if isinstance(replacement, str):
            self.policy = make_policy(
                replacement, config.n_sets, config.associativity, seed
            )
        else:
            if (
                replacement.n_sets != config.n_sets
                or replacement.associativity != config.associativity
            ):
                raise ConfigurationError("replacement policy geometry mismatch")
            self.policy = replacement
        self._sets: list[list[CacheBlock]] = [
            [block_factory(s, w) for w in range(config.associativity)]
            for s in range(config.n_sets)
        ]
        # Hot-loop constants: address slicing runs on every access, so
        # the shifts/masks are cached here, and replacement bookkeeping
        # is skipped entirely for direct-mapped stores (every policy is
        # a no-op over a single way).
        self._block_bits = config.block_bits
        self._set_bits = config.set_bits
        self._set_mask = config.set_mask
        self._multiway = config.associativity > 1

    # -- lookup ----------------------------------------------------------

    def ways(self, set_index: int) -> list[CacheBlock]:
        """The blocks of one set (all ways, present or not)."""
        return self._sets[set_index]

    def find(self, addr: int, include_swapped: bool = False) -> CacheBlock | None:
        """Tag-match *addr*; no replacement-state side effects.

        With *include_swapped* the search also matches blocks whose
        data is physically present but invalidated by a context switch
        (swapped-valid).
        """
        block_number = addr >> self._block_bits
        tag = block_number >> self._set_bits
        for block in self._sets[block_number & self._set_mask]:
            if block.tag == tag and (
                block.valid or (include_swapped and block.swapped_valid)
            ):
                return block
        return None

    def access(self, addr: int) -> CacheBlock | None:
        """Like :meth:`find`, but marks the block most recently used."""
        block_number = addr >> self._block_bits
        set_index = block_number & self._set_mask
        tag = block_number >> self._set_bits
        for block in self._sets[set_index]:
            if block.tag == tag and block.valid:
                if self._multiway:
                    self.policy.on_access(set_index, block.way)
                return block
        return None

    def touch(self, block: CacheBlock) -> None:
        """Mark *block* most recently used."""
        if self._multiway:
            self.policy.on_access(block.set_index, block.way)

    # -- victim selection --------------------------------------------------

    def victim(
        self,
        addr: int,
        prefer: Callable[[CacheBlock], bool] | None = None,
    ) -> CacheBlock:
        """Choose the slot *addr* will fill.

        Empty (non-present) ways win outright.  Otherwise, when
        *prefer* is given and some present ways satisfy it, the
        replacement policy chooses only among those — this implements
        the R-cache's relaxed inclusion rule (prefer ways whose
        inclusion bits are all clear).  When no way satisfies
        *prefer*, the policy chooses among all ways.
        """
        set_index = (addr >> self._block_bits) & self._set_mask
        ways = self._sets[set_index]
        for block in ways:
            if not block.present:
                return block
        if not self._multiway:
            return ways[0]
        candidates: Sequence[int] = range(len(ways))
        if prefer is not None:
            preferred = [block.way for block in ways if prefer(block)]
            if preferred:
                candidates = preferred
        way = self.policy.choose(set_index, candidates)
        return ways[way]

    def note_install(self, block: CacheBlock) -> None:
        """Record that *block* was just filled (replacement bookkeeping)."""
        if self._multiway:
            self.policy.on_install(block.set_index, block.way)

    # -- iteration / maintenance --------------------------------------------

    def __iter__(self) -> Iterator[CacheBlock]:
        for ways in self._sets:
            yield from ways

    def present_blocks(self) -> Iterator[CacheBlock]:
        """Iterate blocks whose data is physically present."""
        return (block for block in self if block.present)

    def invalidate_all(self) -> int:
        """Drop every block; returns how many were present."""
        dropped = 0
        for block in self:
            if block.present:
                block.invalidate()
                dropped += 1
        return dropped

    def swap_out_all(self) -> int:
        """Context switch: demote every valid block to swapped-valid.

        Returns the number of blocks demoted.
        """
        demoted = 0
        for block in self:
            if block.valid:
                block.swap_out()
                demoted += 1
        return demoted
