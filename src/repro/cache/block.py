"""Tag-store entries.

:class:`CacheBlock` carries the union of the fields the paper's
Figure 3 puts in a *V-cache* tag entry (tag, r-pointer, dirty, valid,
swapped-valid) plus a data *version stamp* used by the simulator to
verify write-back and coherence correctness without storing bytes.

The R-cache's richer entries (per-sub-block inclusion/buffer/state
bits and v-pointers) are built in ``repro.hierarchy.rcache`` on top of
this class.
"""

from __future__ import annotations


class CacheBlock:
    """One way of one set in a tag store.

    A block is *addressable* (its data physically present and findable
    by the second level) when ``valid or swapped_valid``; it is
    *hittable* by the processor only when ``valid``.  The distinction
    implements the paper's swapped-valid bit: a context switch turns
    valid blocks into swapped-valid ones whose dirty data survives
    until the slot is reused.
    """

    __slots__ = (
        "set_index",
        "way",
        "valid",
        "swapped_valid",
        "dirty",
        "tag",
        "r_pointer",
        "version",
    )

    def __init__(self, set_index: int, way: int) -> None:
        self.set_index = set_index
        self.way = way
        self.valid = False
        self.swapped_valid = False
        self.dirty = False
        self.tag = 0
        self.r_pointer = 0
        self.version = 0

    @property
    def present(self) -> bool:
        """True when the slot physically holds a block (valid or swapped)."""
        return self.valid or self.swapped_valid

    def invalidate(self) -> None:
        """Drop the block entirely (data discarded)."""
        self.valid = False
        self.swapped_valid = False
        self.dirty = False

    def swap_out(self) -> None:
        """Context switch: valid -> swapped-valid, data retained.

        A block that is already swapped-valid stays swapped-valid; an
        invalid slot is untouched.
        """
        if self.valid:
            self.valid = False
            self.swapped_valid = True

    def fill(self, tag: int, r_pointer: int, version: int) -> None:
        """Load a clean block into this slot."""
        self.tag = tag
        self.r_pointer = r_pointer
        self.version = version
        self.valid = True
        self.swapped_valid = False
        self.dirty = False

    def __repr__(self) -> str:
        flags = "".join(
            ch
            for ch, on in (
                ("V", self.valid),
                ("S", self.swapped_valid),
                ("D", self.dirty),
            )
            if on
        )
        return (
            f"CacheBlock(set={self.set_index}, way={self.way}, "
            f"tag={self.tag:#x}, flags={flags or '-'})"
        )
