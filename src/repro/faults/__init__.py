"""Fault injection, runtime invariant guarding, and checkpoint/resume.

The robustness harness for the simulator: a seeded
:class:`FaultInjector` corrupts cache metadata, TLB entries and bus
transactions; an :class:`InvariantGuard` detects the damage with the
incremental checkers and recovers per a :class:`GuardPolicy`; and the
checkpoint module makes long trace replays interruptible and
resumable with bit-identical results.  :class:`ChaosConfig` extends
the same discipline to the *orchestrator*: seeded worker kills, hangs
and raises prove the runner's supervisor recovers from process-level
failures.
"""

from .bus import FaultyBus
from .chaos import ChaosConfig
from .checkpoint import (
    export_hierarchy,
    export_machine,
    load_checkpoint,
    restore_hierarchy,
    restore_machine,
    run_checkpointed,
    save_checkpoint,
)
from .guard import GuardedHierarchy, GuardPolicy, InvariantGuard
from .injector import FaultConfig, FaultEvent, FaultInjector, FaultKind

__all__ = [
    "ChaosConfig",
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultyBus",
    "GuardPolicy",
    "GuardedHierarchy",
    "InvariantGuard",
    "export_hierarchy",
    "export_machine",
    "load_checkpoint",
    "restore_hierarchy",
    "restore_machine",
    "run_checkpointed",
    "save_checkpoint",
]
