"""A snooping bus that survives injected transaction faults.

:class:`FaultyBus` consults the shared :class:`FaultInjector` before
every transaction attempt:

* **Dropped** transactions are retried with exponential backoff
  (1, 2, 4, … modelled bus slots, counted as ``backoff_cycles``);
  after ``max_retries`` consecutive drops a :class:`BusFaultError`
  escapes to the caller — a hard bus failure, not a protocol bug.
* **Duplicated** transactions complete twice.  The snooping protocol
  is idempotent at this granularity (a second invalidation finds no
  copy, a second read-miss is served from the now-clean state), so the
  duplicate perturbs statistics but not correctness — which the
  invariant guard verifies.
* **Delayed** transactions are counted and then complete normally;
  the atomic-bus model has no timing to perturb, so a delay is pure
  bookkeeping (it feeds the timing model's contention terms).

The coherence-boundary observer fires exactly once per *logical*
transaction, after the last attempt, so the invariant guard sees the
settled state even under duplication.
"""

from __future__ import annotations

from ..coherence.bus import Bus, MainMemory
from ..coherence.messages import BusOp, BusResult, BusTransaction
from ..common.errors import BusFaultError
from .injector import FaultInjector, FaultKind


class FaultyBus(Bus):
    """Drop-in :class:`Bus` replacement with injected transaction faults."""

    def __init__(
        self,
        injector: FaultInjector,
        memory: MainMemory | None = None,
        max_retries: int = 8,
    ) -> None:
        super().__init__(memory)
        self.injector = injector
        self.max_retries = max_retries

    def _faulted(self, op_value: str, pblock: int, action):
        """Run *action* under the injector's drop/dup/delay decisions."""
        drops = 0
        while True:
            fault = self.injector.bus_fault(op_value, pblock)
            if fault is FaultKind.DROP_TXN:
                self.stats.add("faults_dropped")
                drops += 1
                if drops > self.max_retries:
                    raise BusFaultError(
                        f"{op_value} transaction dropped {drops} times; "
                        f"retries exhausted",
                        pblock=pblock,
                        retries=self.max_retries,
                    )
                self.stats.add("retries")
                self.stats.add("backoff_cycles", 1 << drops)
                continue
            if fault is FaultKind.DUP_TXN:
                self.stats.add("faults_duplicated")
                result = action()
                action()
                return result
            if fault is FaultKind.DELAY_TXN:
                self.stats.add("faults_delayed")
            return action()

    def issue(self, txn: BusTransaction) -> BusResult:
        """As :meth:`Bus.issue`, under injected transaction faults."""
        result = self._faulted(
            txn.op.value, txn.pblock, lambda: self._complete(txn)
        )
        if self.observer is not None:
            self.observer(txn)
        return result

    def write_back(self, pblock: int, version: int) -> None:
        """As :meth:`Bus.write_back`, under injected transaction faults."""

        def action() -> None:
            Bus.write_back(self, pblock, version)

        self._faulted(BusOp.WRITE_BACK.value, pblock, action)
