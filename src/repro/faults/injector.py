"""Seeded, deterministic fault injection for cache-hierarchy metadata.

The paper's organisation lives or dies by a web of small metadata
fields — inclusion bits, v-/r-pointers, dirty bits, TLB entries — so
those are exactly what the injector corrupts.  Faults come in two
families:

* **Metadata faults** mutate a hierarchy's tag-store or TLB state in
  place (a simulated bit-flip).  They are applied between accesses by
  :meth:`FaultInjector.tick`.
* **Bus faults** drop, duplicate or delay coherence transactions.
  They are consulted per transaction attempt by the fault-injecting
  bus (``repro.faults.bus.FaultyBus``).

Determinism: the injector draws from one seeded
:class:`random.Random`, consuming draws in a fixed order (sorted fault
kinds, then target choice).  Because the simulation itself is
deterministic, the same seed and fault configuration produce an
identical fault schedule — :attr:`FaultInjector.events` — on every
run, which the test suite verifies.
"""

from __future__ import annotations

import enum
import random
from collections.abc import Mapping
from dataclasses import dataclass, field

from ..common.errors import ConfigurationError
from ..common.stats import CounterBag
from ..hierarchy.twolevel import TwoLevelHierarchy


class FaultKind(enum.Enum):
    """The corruptions the injector can apply."""

    # Metadata bit-flips and pointer corruption.
    FLIP_INCLUSION = "flip-inclusion"
    FLIP_VDIRTY = "flip-vdirty"
    FLIP_L1_DIRTY = "flip-l1-dirty"
    FLIP_SWAPPED_VALID = "flip-swapped-valid"
    CORRUPT_V_POINTER = "corrupt-v-pointer"
    CORRUPT_R_POINTER = "corrupt-r-pointer"
    CORRUPT_TLB = "corrupt-tlb"
    # Bus transaction faults.
    DROP_TXN = "drop-txn"
    DUP_TXN = "dup-txn"
    DELAY_TXN = "delay-txn"

    @property
    def is_bus(self) -> bool:
        """True for faults applied to bus transactions."""
        return self in _BUS_KINDS


_BUS_KINDS = frozenset(
    {FaultKind.DROP_TXN, FaultKind.DUP_TXN, FaultKind.DELAY_TXN}
)
#: Metadata kinds in the deterministic draw order.
METADATA_KINDS = tuple(
    k for k in sorted(FaultKind, key=lambda k: k.value) if not k.is_bus
)
#: Bus kinds in the deterministic draw order.
BUS_KINDS = tuple(k for k in sorted(FaultKind, key=lambda k: k.value) if k.is_bus)


@dataclass(frozen=True)
class FaultConfig:
    """What to inject, how often, and with which seed.

    Attributes:
        probabilities: per-access (metadata kinds) or per-transaction
            (bus kinds) injection probability for each fault kind.
        schedule: forced injections as ``(access_index, kind)`` pairs —
            the fault fires just before that memory reference,
            regardless of probabilities.  Bus kinds cannot be
            scheduled by access index.
        seed: seed of the injector's private RNG.
    """

    probabilities: Mapping[FaultKind, float] = field(default_factory=dict)
    schedule: tuple[tuple[int, FaultKind], ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for kind, prob in self.probabilities.items():
            if not isinstance(kind, FaultKind):
                raise ConfigurationError(f"not a FaultKind: {kind!r}")
            if not 0.0 <= prob <= 1.0:
                raise ConfigurationError(
                    f"probability for {kind.value} must be in [0, 1]: {prob}"
                )
        for index, kind in self.schedule:
            if kind.is_bus:
                raise ConfigurationError(
                    f"bus fault {kind.value} cannot be scheduled by access index"
                )
            if index < 1:
                raise ConfigurationError(
                    f"scheduled access index must be >= 1, got {index}"
                )


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for the deterministic schedule log.

    Attributes:
        access_index: memory reference before which the fault fired
            (0 for bus faults, which are keyed by transaction order).
        kind: what was injected.
        detail: target description, e.g. ``"l2[3,1,0]"`` or
            ``"txn read-miss 0x40"``.
    """

    access_index: int
    kind: FaultKind
    detail: str


class FaultInjector:
    """Applies a :class:`FaultConfig` to a running simulation.

    One injector serves one machine (any number of hierarchies); the
    caller threads it through ``Multiprocessor.run(injector=...)`` and
    builds the bus as a ``FaultyBus`` sharing the same injector.
    """

    def __init__(self, config: FaultConfig) -> None:
        from ..obs import get_tracer

        self.config = config
        self.events: list[FaultEvent] = []
        self.stats = CounterBag()
        tracer = get_tracer()
        # Pre-resolved "fault" category slot (see TwoLevelHierarchy
        # .set_tracer for the pattern): None when untraced.
        self._tracer = (
            tracer if tracer is not None and tracer.wants("fault") else None
        )
        self._rng = random.Random(config.seed)
        self._metadata_kinds = tuple(
            k for k in METADATA_KINDS if config.probabilities.get(k, 0.0) > 0.0
        )
        self._bus_kinds = tuple(
            k for k in BUS_KINDS if config.probabilities.get(k, 0.0) > 0.0
        )
        self._scheduled: dict[int, list[FaultKind]] = {}
        for index, kind in config.schedule:
            self._scheduled.setdefault(index, []).append(kind)

    # -- per-access metadata faults -----------------------------------------

    def tick(self, hier: TwoLevelHierarchy, access_index: int) -> None:
        """Decide and apply metadata faults before one access."""
        for kind in self._scheduled.get(access_index, ()):
            self._apply(hier, access_index, kind)
        for kind in self._metadata_kinds:
            if self._rng.random() < self.config.probabilities[kind]:
                self._apply(hier, access_index, kind)

    # -- per-transaction bus faults -------------------------------------------

    def bus_fault(self, op_value: str, pblock: int) -> FaultKind | None:
        """Decide one bus fault for a transaction attempt (or None)."""
        for kind in self._bus_kinds:
            if self._rng.random() < self.config.probabilities[kind]:
                self._record(0, kind, f"txn {op_value} {pblock:#x}")
                return kind
        return None

    # -- fault application ------------------------------------------------------

    def _record(self, access_index: int, kind: FaultKind, detail: str) -> None:
        self.events.append(FaultEvent(access_index, kind, detail))
        self.stats.add(f"injected_{kind.value}")
        if self._tracer is not None:
            self._tracer.emit(
                "fault",
                kind.value.replace("-", "_"),
                access_index=access_index,
                detail=detail,
            )

    def _apply(
        self, hier: TwoLevelHierarchy, access_index: int, kind: FaultKind
    ) -> None:
        applied = {
            FaultKind.FLIP_INCLUSION: self._flip_inclusion,
            FaultKind.FLIP_VDIRTY: self._flip_vdirty,
            FaultKind.FLIP_L1_DIRTY: self._flip_l1_dirty,
            FaultKind.FLIP_SWAPPED_VALID: self._flip_swapped_valid,
            FaultKind.CORRUPT_V_POINTER: self._corrupt_v_pointer,
            FaultKind.CORRUPT_R_POINTER: self._corrupt_r_pointer,
            FaultKind.CORRUPT_TLB: self._corrupt_tlb,
        }[kind](hier)
        if applied is None:
            self.stats.add(f"no_target_{kind.value}")
        else:
            self._record(access_index, kind, applied)

    def _pick_subentry(self, hier: TwoLevelHierarchy, want_child: bool = False):
        """A random valid subentry as (rblock, index, sub), or None."""
        candidates = [
            (rblock, index, sub)
            for rblock in hier.rcache.blocks()
            for index, sub in enumerate(rblock.subentries)
            if sub.valid and (sub.inclusion or not want_child)
        ]
        if not candidates:
            return None
        return self._rng.choice(candidates)

    def _pick_l1_block(self, hier: TwoLevelHierarchy):
        """A random present level-1 block as (l1, block), or None."""
        candidates = [
            (l1, block)
            for l1 in hier.l1_caches
            for block in l1.store.present_blocks()
        ]
        if not candidates:
            return None
        return self._rng.choice(candidates)

    def _flip_inclusion(self, hier: TwoLevelHierarchy) -> str | None:
        found = self._pick_subentry(hier)
        if found is None:
            return None
        rblock, index, sub = found
        sub.inclusion = not sub.inclusion
        return f"l2[{rblock.set_index},{rblock.way},{index}].inclusion"

    def _flip_vdirty(self, hier: TwoLevelHierarchy) -> str | None:
        found = self._pick_subentry(hier)
        if found is None:
            return None
        rblock, index, sub = found
        sub.vdirty = not sub.vdirty
        return f"l2[{rblock.set_index},{rblock.way},{index}].vdirty"

    def _flip_l1_dirty(self, hier: TwoLevelHierarchy) -> str | None:
        found = self._pick_l1_block(hier)
        if found is None:
            return None
        l1, block = found
        block.dirty = not block.dirty
        return f"{l1.name}[{block.set_index},{block.way}].dirty"

    def _flip_swapped_valid(self, hier: TwoLevelHierarchy) -> str | None:
        found = self._pick_l1_block(hier)
        if found is None:
            return None
        l1, block = found
        if block.valid:
            # Spurious demotion: the processor will miss on it next time.
            block.valid = False
            block.swapped_valid = True
        else:
            # Spurious resurrection of a swapped-out block.
            block.swapped_valid = False
            block.valid = True
        return f"{l1.name}[{block.set_index},{block.way}].swapped_valid"

    def _corrupt_v_pointer(self, hier: TwoLevelHierarchy) -> str | None:
        found = self._pick_subentry(hier, want_child=True)
        if found is None:
            return None
        rblock, index, sub = found
        cache_index = self._rng.randrange(len(hier.l1_caches))
        config = hier.l1_caches[cache_index].config
        sub.v_pointer = (
            cache_index,
            self._rng.randrange(config.n_sets),
            self._rng.randrange(config.associativity),
        )
        return f"l2[{rblock.set_index},{rblock.way},{index}].v_pointer"

    def _corrupt_r_pointer(self, hier: TwoLevelHierarchy) -> str | None:
        found = self._pick_l1_block(hier)
        if found is None:
            return None
        l1, block = found
        config = hier.rcache.config
        block.r_pointer = (
            self._rng.randrange(config.n_sets),
            self._rng.randrange(config.associativity),
            self._rng.randrange(hier.rcache.n_subentries),
        )
        return f"{l1.name}[{block.set_index},{block.way}].r_pointer"

    # -- checkpointing ---------------------------------------------------------

    def export_state(self) -> dict:
        """Checkpointable snapshot: RNG state, event log, counters."""
        return {
            "rng": self._rng.getstate(),
            "events": [
                (e.access_index, e.kind.value, e.detail) for e in self.events
            ],
            "stats": self.stats.export_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Resume injecting exactly where a checkpointed run stopped."""
        self._rng.setstate(state["rng"])
        self.events = [
            FaultEvent(index, FaultKind(kind), detail)
            for index, kind, detail in state["events"]
        ]
        self.stats.restore_state(state["stats"])

    def _corrupt_tlb(self, hier: TwoLevelHierarchy) -> str | None:
        entries = hier.tlb.entries()
        if not entries:
            return None
        pid, vpage, frame = self._rng.choice(entries)
        # XOR a random low bit into the frame number — never a no-op.
        corrupted = frame ^ (1 << self._rng.randrange(8))
        hier.tlb.poison(pid, vpage, corrupted)
        return f"tlb[{pid},{vpage:#x}]"
