"""Deterministic chaos injection for the *orchestrator* (not the simulator).

PR 1's fault injector proves the simulated hardware survives corrupted
metadata; this module proves the **experiment supervisor** survives a
misbehaving worker.  A :class:`ChaosConfig` travels with each job to
the worker process, where :meth:`ChaosConfig.apply` may — under seeded
control — kill the process outright (``SIGKILL``, which the parent
sees as a ``BrokenProcessPool``), hang past the supervisor's job
timeout, or raise a :class:`ChaosError` mid-job.

Determinism is the whole point: the decision for a given job attempt
is a pure function of ``(seed, job digest, attempt)``, so every
supervisor behaviour — retry, pool rebuild, timeout kill, quarantine —
is *provable* in tests instead of hoped-for.  Because a chaotic
attempt either dies before simulating or raises without writing any
result, surviving results are bit-identical to a chaos-free run.

Two knobs shape the failure model:

* ``first_attempts`` — chaos only strikes attempts ``<= first_attempts``
  (default 1), so with retries enabled every job eventually heals.
  Raise it past the supervisor's attempt budget to model persistent
  failures.
* ``poison_one_in`` — every job whose digest hashes to
  ``0 (mod poison_one_in)`` raises on *every* attempt, modelling a
  genuinely poisonous job that must end in quarantine.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass

from ..common.errors import ChaosError, ConfigurationError

#: The misbehaviours :meth:`ChaosConfig.decide` can pick.
ACTIONS = ("kill", "hang", "raise")


@dataclass(frozen=True)
class ChaosConfig:
    """What a chaotic worker may do, how often, and with which seed.

    Attributes:
        kill_rate: probability the worker SIGKILLs itself before the job.
        hang_rate: probability the worker sleeps ``hang_s`` seconds
            before the job (tripping any supervisor timeout).
        raise_rate: probability the worker raises :class:`ChaosError`.
        hang_s: how long a hang lasts (make it exceed the job timeout).
        seed: seed of the per-attempt decision draw.
        first_attempts: attempts beyond this index run clean, so
            retried jobs heal (default 1: only first attempts misbehave).
        poison_one_in: when > 0, jobs whose digest hashes to
            ``0 (mod poison_one_in)`` raise on every attempt.
    """

    kill_rate: float = 0.0
    hang_rate: float = 0.0
    raise_rate: float = 0.0
    hang_s: float = 30.0
    seed: int = 0
    first_attempts: int = 1
    poison_one_in: int = 0

    def __post_init__(self) -> None:
        for name in ("kill_rate", "hang_rate", "raise_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be a probability in [0, 1]: {rate}"
                )
        if self.kill_rate + self.hang_rate + self.raise_rate > 1.0:
            raise ConfigurationError(
                "chaos rates must sum to at most 1.0: "
                f"{self.kill_rate} + {self.hang_rate} + {self.raise_rate}"
            )
        if self.hang_s < 0:
            raise ConfigurationError(f"hang_s must be >= 0: {self.hang_s}")
        if self.first_attempts < 0:
            raise ConfigurationError(
                f"first_attempts must be >= 0: {self.first_attempts}"
            )
        if self.poison_one_in < 0:
            raise ConfigurationError(
                f"poison_one_in must be >= 0: {self.poison_one_in}"
            )

    @property
    def active(self) -> bool:
        """True when any misbehaviour can ever fire."""
        return (
            self.kill_rate > 0.0
            or self.hang_rate > 0.0
            or self.raise_rate > 0.0
            or self.poison_one_in > 0
        )

    def is_poisoned(self, digest: str) -> bool:
        """True when *digest* names a job that fails on every attempt."""
        return (
            self.poison_one_in > 0
            and int(digest[:8], 16) % self.poison_one_in == 0
        )

    def decide(self, digest: str, attempt: int) -> str | None:
        """The misbehaviour for this ``(job, attempt)``, or None.

        A pure function of ``(seed, digest, attempt)``: the same triple
        always yields the same action, and distinct attempts draw
        independently, so a job killed on attempt 1 can succeed on
        attempt 2.
        """
        if self.is_poisoned(digest):
            return "raise"
        if attempt > self.first_attempts:
            return None
        draw = random.Random(f"{self.seed}:{digest}:{attempt}").random()
        if draw < self.kill_rate:
            return "kill"
        if draw < self.kill_rate + self.hang_rate:
            return "hang"
        if draw < self.kill_rate + self.hang_rate + self.raise_rate:
            return "raise"
        return None

    def apply(self, digest: str, attempt: int) -> None:
        """Carry out :meth:`decide`'s verdict in the worker process.

        ``kill`` never returns (SIGKILL); ``hang`` sleeps then falls
        through to normal execution (the supervisor's watchdog is
        expected to have killed the pool first); ``raise`` raises
        :class:`ChaosError`; None returns immediately.
        """
        action = self.decide(digest, attempt)
        if action is None:
            return
        if action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif action == "hang":
            time.sleep(self.hang_s)
        else:
            raise ChaosError(
                "chaos-injected worker failure",
                job=digest,
                attempt=attempt,
            )
