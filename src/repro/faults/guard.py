"""Runtime invariant guard with configurable recovery policies.

The guard watches a running machine and periodically re-establishes
the structural invariants of DESIGN.md §5 using the incremental scans
in ``repro.hierarchy.checker``:

* after every access it marks the level-1 and level-2 sets the access
  touched; every ``check_every`` accesses it scans the accumulated
  sets (plus the cheap global invariants: buffer bits and the TLB),
  and every ``full_every``-th such check it sweeps the whole
  hierarchy;
* at every coherence-transaction boundary (via ``Bus.observer``) it
  scans the affected level-2 set of every *remote* hierarchy
  immediately; the *originating* hierarchy is mid-access — its tag
  state is legitimately half-updated — so its set is only marked
  pending and scanned at the next access boundary.

On detection the configured :class:`GuardPolicy` applies:

``fail-fast``
    raise :class:`IntegrityError` carrying the access index, the
    faulting address, every violation and a snapshot of the affected
    tag-store sets.
``repair``
    surgically detach the corrupted linkage — invalidate affected
    level-1 children, clear inclusion bits (converting a claimed
    vdirty into rdirty so dirtiness is never silently dropped),
    reconcile buffer bits against the write buffer, scrub poisoned
    TLB entries — then re-scan to prove the repair took (escalating
    to :class:`IntegrityError` if not) and replay the access.
``log``
    record the violations (``logging`` channel ``repro.faults`` and
    the :attr:`InvariantGuard.incidents` list) and continue.
"""

from __future__ import annotations

import enum
from typing import Any

from ..coherence.bus import Bus
from ..coherence.messages import BusTransaction
from ..common.errors import InclusionError, IntegrityError, ProtocolError
from ..hierarchy.checker import (
    Violation,
    scan_buffer_bits,
    scan_hierarchy,
    scan_l1_set,
    scan_l2_set,
    scan_single_copy,
    scan_tlb,
)
from ..hierarchy.twolevel import AccessResult, TwoLevelHierarchy
from ..obs import get_tracer
from ..obs.log import get_logger
from ..trace.record import RefKind

logger = get_logger("faults")


class GuardPolicy(enum.Enum):
    """What the guard does when it detects an invariant violation."""

    FAIL_FAST = "fail-fast"
    REPAIR = "repair"
    LOG = "log"


class InvariantGuard:
    """Incremental invariant checking with recovery for one machine.

    One guard serves every hierarchy on the bus; install it with
    :meth:`watch` (``Multiprocessor.run(guard=...)`` does this for
    you).

    Attributes:
        incidents: ``(access_index, Violation)`` pairs recorded under
            the ``log`` policy (and kept under ``repair`` too, as an
            audit trail of what was fixed).
    """

    def __init__(
        self,
        policy: GuardPolicy | str = GuardPolicy.FAIL_FAST,
        check_every: int = 1000,
        full_every: int = 16,
    ) -> None:
        if not isinstance(policy, GuardPolicy):
            policy = GuardPolicy(policy)
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        if full_every < 1:
            raise ValueError(f"full_every must be >= 1, got {full_every}")
        self.policy = policy
        self.check_every = check_every
        self.full_every = full_every
        self.incidents: list[tuple[int, Violation]] = []
        tracer = get_tracer()
        # Pre-resolved "guard" category slot (see TwoLevelHierarchy
        # .set_tracer for the pattern): None when untraced.
        self._tr_guard = (
            tracer if tracer is not None and tracer.wants("guard") else None
        )
        self._hierarchies: dict[int, TwoLevelHierarchy] = {}
        # Per-CPU accumulators between due checks.
        self._touched: dict[int, set[tuple]] = {}
        self._counts: dict[int, int] = {}
        self._checks: dict[int, int] = {}

    # -- installation -------------------------------------------------------

    def watch(self, bus: Bus, hierarchies: list[TwoLevelHierarchy]) -> None:
        """Attach to *bus* and *hierarchies* (idempotent)."""
        for hier in hierarchies:
            self._hierarchies[hier.cpu] = hier
            # setdefault: a resumed run restores pacing state *before*
            # watch() runs again, and must not have it clobbered.
            self._touched.setdefault(hier.cpu, set())
            self._counts.setdefault(hier.cpu, 0)
            self._checks.setdefault(hier.cpu, 0)
        bus.observer = self._on_transaction

    # -- coherence-boundary checks ------------------------------------------

    def _on_transaction(self, txn: BusTransaction) -> None:
        for cpu, hier in self._hierarchies.items():
            address = txn.pblock * hier.rcache.sub_block_size
            l2_set = hier.rcache.config.set_index(address)
            if cpu == txn.origin:
                # The origin is mid-access; check at the next boundary.
                self._touched[cpu].add(("l2", l2_set))
                continue
            violations = scan_l2_set(hier, l2_set)
            violations.extend(self._scan_buffer_block(hier, txn.pblock))
            if violations:
                self._handle(hier, violations, None, address)

    @staticmethod
    def _scan_buffer_block(
        hier: TwoLevelHierarchy, pblock: int
    ) -> list[Violation]:
        """Buffer-bit/write-buffer agreement for one block only.

        The full :func:`scan_buffer_bits` sweeps every level-2 block —
        far too expensive per bus transaction; the transaction can only
        have disturbed its own block, so check just that one.
        """
        found = hier.rcache.lookup_sub_block(pblock)
        flagged = found is not None and found[1].buffer
        buffered = hier.write_buffer.find(pblock) is not None
        if flagged == buffered:
            return []
        return [
            Violation(
                "buffer",
                ("buffer", pblock),
                f"buffer bits disagree with write-buffer contents for "
                f"block {pblock:#x} (bit={flagged}, buffered={buffered})",
            )
        ]

    # -- access-boundary checks -----------------------------------------------

    def after_access(
        self,
        hier: TwoLevelHierarchy,
        pid: int,
        vaddr: int,
        kind: RefKind,
        access_index: int,
    ) -> AccessResult | None:
        """Mark the touched sets and run any due check.

        Returns a replacement :class:`AccessResult` when the ``repair``
        policy replayed the access, else None.
        """
        cpu = hier.cpu
        touched = self._touched.setdefault(cpu, set())
        l1 = hier.l1_for(kind)
        if hier.kind.virtual_l1:
            key = vaddr | (pid << 48) if hier.config.l1_pid_tags else vaddr
        else:
            key = hier.layout.translate(pid, vaddr)
        touched.add(("l1", l1.index, l1.config.set_index(key)))
        paddr = hier.layout.translate(pid, vaddr)
        touched.add(("l2", hier.rcache.config.set_index(paddr)))

        self._counts[cpu] = self._counts.get(cpu, 0) + 1
        if self._counts[cpu] % self.check_every:
            return None
        self._checks[cpu] = self._checks.get(cpu, 0) + 1
        if self._checks[cpu] % self.full_every == 0:
            violations = scan_hierarchy(hier)
        else:
            violations = self._scan_sites(hier, touched)
            violations.extend(scan_buffer_bits(hier))
            violations.extend(scan_tlb(hier))
        touched.clear()
        if not violations:
            return None
        repaired = self._handle(hier, violations, access_index, vaddr)
        if not repaired:
            return None
        hier.stats.counters.add("repair_replays")
        if self._tr_guard is not None:
            self._tr_guard.emit(
                "guard", "replay", cpu=hier.cpu, access_index=access_index
            )
        return hier.access(pid, vaddr, kind)

    def on_access_error(
        self,
        hier: TwoLevelHierarchy,
        pid: int,
        vaddr: int,
        kind: RefKind,
        access_index: int,
    ) -> AccessResult | None:
        """Recover from a structural error the hierarchy itself raised.

        Corruption injected between two guard checks can be tripped
        over by the hierarchy's own runtime validation (an
        :class:`InclusionError` or :class:`ProtocolError` mid-access)
        before the guard's next scheduled scan.  The trap may even
        fire in a *remote* hierarchy snooping the origin's bus
        transaction, so under the ``repair`` policy this sweeps every
        watched hierarchy, repairs, and replays the failed access;
        other policies return None and the caller re-raises the
        original error.
        """
        if self.policy is not GuardPolicy.REPAIR:
            return None
        targets = list(self._hierarchies.values())
        if hier not in targets:
            targets.append(hier)
        # The replay itself may trip a second corruption (injected into
        # a different hierarchy than the one the sweep just repaired
        # reached first), so sweep-and-replay is retried a few times
        # before giving up.
        for attempt in range(3):
            for target in targets:
                violations = scan_hierarchy(target)
                if not violations:
                    continue
                target.stats.counters.add("guard_violations", len(violations))
                self._note_violations(target, violations, access_index)
                for violation in violations:
                    self.incidents.append((access_index, violation))
                self._repair(target, violations)
                remaining = self._rescan(target, violations)
                if remaining:
                    raise IntegrityError(
                        f"repair failed; {len(remaining)} violation(s) "
                        f"persist: {remaining[0].message}",
                        access_index=access_index,
                        address=vaddr,
                        violations=remaining,
                        snapshot=self._snapshot(target, remaining),
                    )
            hier.stats.counters.add("repair_replays")
            if self._tr_guard is not None:
                self._tr_guard.emit(
                    "guard", "replay", cpu=hier.cpu, access_index=access_index
                )
            try:
                return hier.access(pid, vaddr, kind)
            except (InclusionError, ProtocolError):
                if attempt == 2:
                    raise
        return None  # pragma: no cover - loop always returns or raises

    def _scan_sites(
        self, hier: TwoLevelHierarchy, sites: set[tuple]
    ) -> list[Violation]:
        out: list[Violation] = []
        for site in sorted(sites):
            if site[0] == "l2":
                out.extend(scan_l2_set(hier, site[1]))
            else:
                _, cache_index, set_index = site
                out.extend(
                    scan_l1_set(hier, hier.l1_caches[cache_index], set_index)
                )
        return out

    # -- policy dispatch -------------------------------------------------------

    def _handle(
        self,
        hier: TwoLevelHierarchy,
        violations: list[Violation],
        access_index: int | None,
        address: int | None,
    ) -> bool:
        """Apply the policy; returns True when a replay is warranted."""
        hier.stats.counters.add("guard_violations", len(violations))
        self._note_violations(hier, violations, access_index)
        if self.policy is GuardPolicy.FAIL_FAST:
            raise IntegrityError(
                f"{len(violations)} invariant violation(s) detected: "
                f"{violations[0].message}",
                access_index=access_index,
                address=address,
                violations=violations,
                snapshot=self._snapshot(hier, violations),
            )
        index = access_index if access_index is not None else 0
        if self.policy is GuardPolicy.LOG:
            for violation in violations:
                logger.warning(
                    "invariant violation at access %s: %s", index, violation.message
                )
                self.incidents.append((index, violation))
            hier.stats.counters.add("guard_logged_violations", len(violations))
            return False
        # REPAIR
        for violation in violations:
            self.incidents.append((index, violation))
        self._repair(hier, violations)
        logger.info(
            "cpu %d: repaired %d violation(s) at access %s",
            hier.cpu,
            len(violations),
            index,
        )
        remaining = self._rescan(hier, violations)
        if remaining:
            raise IntegrityError(
                f"repair failed; {len(remaining)} violation(s) persist: "
                f"{remaining[0].message}",
                access_index=access_index,
                address=address,
                violations=remaining,
                snapshot=self._snapshot(hier, remaining),
            )
        return access_index is not None

    def _note_violations(
        self,
        hier: TwoLevelHierarchy,
        violations: list[Violation],
        access_index: int | None,
    ) -> None:
        """Emit one structured trace event per detected violation."""
        if self._tr_guard is None:
            return
        for violation in violations:
            self._tr_guard.emit(
                "guard",
                "violation",
                cpu=hier.cpu,
                access_index=access_index if access_index is not None else 0,
                site=str(violation.site),
            )

    # -- repair -----------------------------------------------------------------

    def _repair(
        self, hier: TwoLevelHierarchy, violations: list[Violation]
    ) -> None:
        for violation in violations:
            site = violation.site
            if site[0] == "l2":
                self._detach_subentry(hier, site[1], site[2], site[3])
            elif site[0] == "l1":
                self._drop_l1_block(hier, site[1], site[2], site[3])
            elif site[0] == "buffer":
                self._reconcile_buffer(hier, site[1])
            elif site[0] == "tlb":
                hier.tlb.scrub(site[1], site[2])
            hier.stats.counters.add("guard_repairs")
            if self._tr_guard is not None:
                self._tr_guard.emit(
                    "guard", "repair", cpu=hier.cpu, site=str(site)
                )

    def _detach_subentry(
        self, hier: TwoLevelHierarchy, set_index: int, way: int, sub_index: int
    ) -> None:
        """Break a corrupt forward linkage, preserving dirtiness at L2."""
        rblock = hier.rcache.store.ways(set_index)[way]
        sub = rblock.subentries[sub_index]  # type: ignore[attr-defined]
        child = self._deref_l1(hier, sub.v_pointer)
        if child is not None:
            back = (
                tuple(child.r_pointer)
                if isinstance(child.r_pointer, tuple)
                else None
            )
            if child.present and back == (set_index, way, sub_index):
                child.invalidate()
        if sub.vdirty:
            # The child's data is gone (or untrusted); keep the claim
            # that this hierarchy holds the block modified.
            sub.rdirty = True
            sub.vdirty = False
        sub.inclusion = False
        sub.v_pointer = None

    @staticmethod
    def _deref_l1(hier: TwoLevelHierarchy, pointer: object):
        """Dereference a v-pointer defensively; None when out of range."""
        if not (isinstance(pointer, tuple) and len(pointer) == 3):
            return None
        cache_index, set_index, way = pointer
        if not 0 <= cache_index < len(hier.l1_caches):
            return None
        l1 = hier.l1_caches[cache_index]
        if not (0 <= set_index < l1.config.n_sets and 0 <= way < l1.config.associativity):
            return None
        return l1.store.ways(set_index)[way]

    def _drop_l1_block(
        self, hier: TwoLevelHierarchy, cache_index: int, set_index: int, way: int
    ) -> None:
        """Drop an orphaned or duplicated level-1 block, detaching any
        parent subentry that still names it."""
        if not 0 <= cache_index < len(hier.l1_caches):
            return
        l1 = hier.l1_caches[cache_index]
        if not (0 <= set_index < l1.config.n_sets and 0 <= way < l1.config.associativity):
            return
        block = l1.store.ways(set_index)[way]
        pointer = (
            tuple(block.r_pointer) if isinstance(block.r_pointer, tuple) else None
        )
        if pointer is not None and len(pointer) == 3:
            r_set, r_way, r_sub = pointer
            config = hier.rcache.config
            if (
                0 <= r_set < config.n_sets
                and 0 <= r_way < config.associativity
                and 0 <= r_sub < hier.rcache.n_subentries
            ):
                rblock = hier.rcache.store.ways(r_set)[r_way]
                sub = rblock.subentries[r_sub]  # type: ignore[attr-defined]
                if (
                    sub.valid
                    and sub.inclusion
                    and sub.v_pointer == (cache_index, set_index, way)
                ):
                    if sub.vdirty:
                        sub.rdirty = True
                        sub.vdirty = False
                    sub.inclusion = False
                    sub.v_pointer = None
        block.invalidate()

    def _reconcile_buffer(self, hier: TwoLevelHierarchy, pblock: int) -> None:
        """Make the buffer bit for *pblock* match the write buffer."""
        entry = hier.write_buffer.find(pblock)
        found = hier.rcache.lookup_sub_block(pblock)
        if entry is not None and found is not None:
            found[1].buffer = True
        elif entry is not None:
            # Orphaned buffer entry: push the data to memory so the
            # write is not lost, then retire the entry.
            hier.write_buffer.remove(pblock)
            hier.bus.write_back(entry.pblock, entry.version)
        elif found is not None:
            found[1].buffer = False

    def _rescan(
        self, hier: TwoLevelHierarchy, violations: list[Violation]
    ) -> list[Violation]:
        """Re-run every scan a repair could have affected."""
        l2_sets = {v.site[1] for v in violations if v.site[0] == "l2"}
        l1_sets = {
            (v.site[1], v.site[2]) for v in violations if v.site[0] == "l1"
        }
        # A detached subentry names an L1 set; a dropped L1 block names
        # an L2 set.  Cheapest correct answer: re-scan both directions
        # for every named set plus the global invariants.
        out: list[Violation] = []
        for set_index in sorted(l2_sets):
            out.extend(scan_l2_set(hier, set_index))
        for cache_index, set_index in sorted(l1_sets):
            if 0 <= cache_index < len(hier.l1_caches):
                out.extend(
                    scan_l1_set(hier, hier.l1_caches[cache_index], set_index)
                )
        out.extend(scan_buffer_bits(hier))
        out.extend(scan_single_copy(hier))
        out.extend(scan_tlb(hier))
        return out

    # -- diagnostics -------------------------------------------------------------

    def _snapshot(
        self, hier: TwoLevelHierarchy, violations: list[Violation]
    ) -> dict[str, list[str]]:
        """Tag-store contents of every set a violation names."""
        snap: dict[str, list[str]] = {}
        for violation in violations:
            site = violation.site
            if site[0] == "l2" and 0 <= site[1] < hier.rcache.config.n_sets:
                snap[f"l2 set {site[1]}"] = [
                    f"{block!r} {block.subentries}"  # type: ignore[attr-defined]
                    for block in hier.rcache.store.ways(site[1])
                ]
            elif site[0] == "l1" and 0 <= site[1] < len(hier.l1_caches):
                l1 = hier.l1_caches[site[1]]
                if 0 <= site[2] < l1.config.n_sets:
                    snap[f"{l1.name} set {site[2]}"] = [
                        repr(block) for block in l1.store.ways(site[2])
                    ]
            elif site[0] == "buffer":
                snap["write buffer"] = [
                    repr(entry) for entry in hier.write_buffer.entries()
                ]
            elif site[0] == "tlb":
                snap.setdefault("tlb", [repr(hier.tlb.entries())])
        return snap

    # -- checkpointing -------------------------------------------------------------

    def export_state(self) -> dict:
        """Checkpointable snapshot of the guard's pacing state."""
        return {
            "touched": {cpu: sorted(sites) for cpu, sites in self._touched.items()},
            "counts": dict(self._counts),
            "checks": dict(self._checks),
            "incidents": list(self.incidents),
        }

    def restore_state(self, state: dict) -> None:
        """Restore pacing state so a resumed run checks at the same points."""
        self._touched = {
            cpu: {tuple(site) for site in sites}
            for cpu, sites in state["touched"].items()
        }
        self._counts = dict(state["counts"])
        self._checks = dict(state["checks"])
        self.incidents = list(state["incidents"])


class GuardedHierarchy:
    """A single hierarchy wrapped with fault injection and guarding.

    For unit-level experiments that drive one hierarchy directly
    (``Multiprocessor`` threads the injector and guard itself).
    Delegates every attribute to the wrapped hierarchy, so it can
    stand in wherever a :class:`TwoLevelHierarchy` is expected.
    """

    def __init__(
        self,
        hier: TwoLevelHierarchy,
        guard: InvariantGuard,
        injector: Any = None,
    ) -> None:
        self.inner = hier
        self.guard = guard
        self.injector = injector
        self._accesses = 0
        guard.watch(hier.bus, [hier])

    def access(self, pid: int, vaddr: int, kind: RefKind) -> AccessResult:
        """One guarded (and possibly fault-injected) access."""
        self._accesses += 1
        if self.injector is not None:
            self.injector.tick(self.inner, self._accesses)
        try:
            result = self.inner.access(pid, vaddr, kind)
        except (InclusionError, ProtocolError):
            recovered = self.guard.on_access_error(
                self.inner, pid, vaddr, kind, self._accesses
            )
            if recovered is None:
                raise
            result = recovered
        replay = self.guard.after_access(
            self.inner, pid, vaddr, kind, self._accesses
        )
        return replay if replay is not None else result

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)
