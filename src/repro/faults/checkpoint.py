"""Checkpoint/resume for long trace replays.

A checkpoint is a pickle of every piece of mutable simulation state —
tag stores (including replacement-policy order), subentry metadata,
TLB contents in LRU order, write buffers, statistics counters, the
version-stamped memory image, the global version counter, and the
trace position — plus an optional *key* identifying the run
configuration, so a checkpoint is never resumed into a different
experiment.

Because the simulator is deterministic, restoring all of that and
replaying the remaining records produces results bit-identical to an
uninterrupted run; ``tests/test_faults.py`` kills a run mid-trace and
proves it.

Files are written atomically (temp file + ``os.replace``) so an
interruption during the save leaves the previous checkpoint intact.
"""

from __future__ import annotations

import contextlib
import os
import pickle
from collections.abc import Callable, Sequence
from typing import Any

from ..cache.block import CacheBlock
from ..cache.tagstore import TagStore
from ..common.errors import CheckpointError
from ..hierarchy.rcache import RCacheBlock, SubEntry
from ..hierarchy.twolevel import TwoLevelHierarchy
from ..obs.log import get_logger
from ..system.multiprocessor import Multiprocessor, SimulationResult
from ..trace.record import TraceCursor, TraceRecord
from ..trace.stream import StreamCursor, TraceStream

logger = get_logger("faults.checkpoint")

FORMAT = "repro-checkpoint"
VERSION = 1

#: Top-level fields :func:`restore_machine` dereferences.  Validated up
#: front so a structurally damaged checkpoint is rejected *before* any
#: machine state is mutated — a mid-restore ``KeyError`` would leave
#: the machine half-overwritten.
_REQUIRED_FIELDS = (
    "key",
    "position",
    "refs",
    "next_version",
    "memory",
    "bus_stats",
    "hierarchies",
)


# -- per-component snapshots ---------------------------------------------------


def _export_block(block: CacheBlock) -> tuple:
    return (
        block.valid,
        block.swapped_valid,
        block.dirty,
        block.tag,
        block.r_pointer,
        block.version,
    )


def _restore_block(block: CacheBlock, state: tuple) -> None:
    (
        block.valid,
        block.swapped_valid,
        block.dirty,
        block.tag,
        block.r_pointer,
        block.version,
    ) = state


def _export_sub(sub: SubEntry) -> tuple:
    return (
        sub.valid,
        sub.inclusion,
        sub.buffer,
        sub.state,
        sub.vdirty,
        sub.rdirty,
        sub.v_pointer,
        sub.version,
    )


def _restore_sub(sub: SubEntry, state: tuple) -> None:
    (
        sub.valid,
        sub.inclusion,
        sub.buffer,
        sub.state,
        sub.vdirty,
        sub.rdirty,
        sub.v_pointer,
        sub.version,
    ) = state


def _export_store(store: TagStore) -> dict:
    blocks = []
    for set_index in range(store.config.n_sets):
        for block in store.ways(set_index):
            entry: dict[str, Any] = {"block": _export_block(block)}
            if isinstance(block, RCacheBlock):
                entry["subentries"] = [_export_sub(s) for s in block.subentries]
            blocks.append(entry)
    return {"blocks": blocks, "policy": store.policy.export_state()}


def _restore_store(store: TagStore, state: dict) -> None:
    flat = iter(state["blocks"])
    for set_index in range(store.config.n_sets):
        for block in store.ways(set_index):
            entry = next(flat)
            _restore_block(block, entry["block"])
            if isinstance(block, RCacheBlock):
                for sub, sub_state in zip(block.subentries, entry["subentries"]):
                    _restore_sub(sub, sub_state)
    store.policy.restore_state(state["policy"])


def export_hierarchy(hier: TwoLevelHierarchy) -> dict:
    """Snapshot everything mutable in one hierarchy."""
    # _refs and _last_writeback_ref are the hierarchy's only private
    # scalars; the checkpointer is the one sanctioned reader.
    return {
        "refs": hier._refs,
        "last_writeback_ref": hier._last_writeback_ref,
        "counters": hier.stats.counters.export_state(),
        "writeback_intervals": hier.stats.writeback_intervals.export_state(),
        "tlb": hier.tlb.export_state(),
        "write_buffer": hier.write_buffer.export_state(),
        "l1s": [_export_store(l1.store) for l1 in hier.l1_caches],
        "l2": _export_store(hier.rcache.store),
    }


def restore_hierarchy(hier: TwoLevelHierarchy, state: dict) -> None:
    """Restore a hierarchy from :func:`export_hierarchy` output."""
    if len(state["l1s"]) != len(hier.l1_caches):
        raise CheckpointError(
            f"checkpoint has {len(state['l1s'])} level-1 caches, "
            f"machine has {len(hier.l1_caches)}"
        )
    hier._refs = state["refs"]
    hier._last_writeback_ref = state["last_writeback_ref"]
    # The drain countdown is derived state: it hits zero exactly at
    # references that are multiples of the drain period.
    hier._drain_countdown = (
        hier.drain_period - state["refs"] % hier.drain_period
    )
    hier.stats.counters.restore_state(state["counters"])
    hier.stats.writeback_intervals.restore_state(state["writeback_intervals"])
    hier.tlb.restore_state(state["tlb"])
    hier.write_buffer.restore_state(state["write_buffer"])
    for l1, l1_state in zip(hier.l1_caches, state["l1s"]):
        _restore_store(l1.store, l1_state)
    _restore_store(hier.rcache.store, state["l2"])


def export_machine(
    machine: Multiprocessor,
    position: int,
    refs: int,
    key: tuple | None = None,
    injector: Any = None,
    guard: Any = None,
) -> dict:
    """Snapshot a whole machine plus the trace position."""
    state = {
        "format": FORMAT,
        "version": VERSION,
        "key": key,
        "position": position,
        "refs": refs,
        "next_version": machine.version_counter.next_value,
        "memory": machine.bus.memory.export_state(),
        "bus_stats": machine.bus.stats.export_state(),
        "hierarchies": [export_hierarchy(h) for h in machine.hierarchies],
    }
    # Demand-mapped layouts (external traces) build their page tables
    # during the run, so the mapping is replay state: without it a
    # resume would re-allocate frames in resume order and diverge.
    if hasattr(machine.layout, "export_state"):
        state["layout"] = machine.layout.export_state()
    if injector is not None:
        state["injector"] = injector.export_state()
    if guard is not None:
        state["guard"] = guard.export_state()
    return state


def restore_machine(
    machine: Multiprocessor,
    state: dict,
    injector: Any = None,
    guard: Any = None,
) -> tuple[int, int]:
    """Restore *machine* in place; returns (trace position, refs done)."""
    if len(state["hierarchies"]) != machine.n_cpus:
        raise CheckpointError(
            f"checkpoint has {len(state['hierarchies'])} CPUs, "
            f"machine has {machine.n_cpus}"
        )
    machine.version_counter.next_value = state["next_version"]
    if "layout" in state and hasattr(machine.layout, "restore_state"):
        machine.layout.restore_state(state["layout"])
    machine.bus.memory.restore_state(state["memory"])
    machine.bus.stats.restore_state(state["bus_stats"])
    for hier, hier_state in zip(machine.hierarchies, state["hierarchies"]):
        restore_hierarchy(hier, hier_state)
    if injector is not None and "injector" in state:
        injector.restore_state(state["injector"])
    if guard is not None and "guard" in state:
        guard.restore_state(state["guard"])
    return state["position"], state["refs"]


# -- files -------------------------------------------------------------------


def save_checkpoint(path: str, state: dict) -> None:
    """Write *state* atomically (temp file + rename)."""
    directory = os.path.dirname(os.path.abspath(path))
    tmp = os.path.join(directory, f".{os.path.basename(path)}.tmp")
    try:
        with open(tmp, "wb") as handle:
            pickle.dump(state, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from exc
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)


def load_checkpoint(path: str) -> dict:
    """Read and validate a checkpoint file.

    Any unreadable file raises :class:`CheckpointError` — never a raw
    decode error.  A truncated or corrupt pickle raises essentially
    anything (``UnpicklingError``, ``EOFError``, ``AttributeError``,
    ``IndexError``, ``MemoryError`` on a torn length prefix, …), so
    the net is deliberately wide; structural validation then rejects
    well-formed pickles that are not complete checkpoints before any
    restore touches machine state.
    """
    try:
        with open(path, "rb") as handle:
            state = pickle.load(handle)
    except Exception as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not isinstance(state, dict) or state.get("format") != FORMAT:
        raise CheckpointError(f"{path} is not a repro checkpoint")
    if state.get("version") != VERSION:
        raise CheckpointError(
            f"checkpoint version {state.get('version')} unsupported "
            f"(expected {VERSION})"
        )
    missing = [field for field in _REQUIRED_FIELDS if field not in state]
    if missing:
        raise CheckpointError(
            f"checkpoint {path} is incomplete: missing {', '.join(missing)}"
        )
    if not isinstance(state["hierarchies"], list):
        raise CheckpointError(f"checkpoint {path} is incomplete: bad hierarchies")
    return state


# -- the resumable driver -------------------------------------------------------


def run_checkpointed(
    machine: Multiprocessor,
    records: Sequence[TraceRecord] | TraceStream,
    path: str,
    key: tuple | None = None,
    chunk: int = 50_000,
    check_values: bool = False,
    injector: Any = None,
    guard: Any = None,
    on_chunk: Callable[[int], None] | None = None,
) -> SimulationResult:
    """Replay *records* with a checkpoint after every *chunk* records.

    *records* is either a materialised sequence or a
    :class:`~repro.trace.stream.TraceStream` — a stream is consumed
    through a :class:`~repro.trace.stream.StreamCursor`, so only one
    batch is ever held in memory and a resume re-enters the stream at
    the checkpointed absolute position.

    If *path* exists, the run resumes from it (validating *key*, a
    tuple identifying the experiment configuration, against the saved
    one).  A corrupt or truncated checkpoint file is logged, discarded
    and the run restarts from the trace beginning; only a *valid*
    checkpoint recorded under a different key is a hard error.  On
    successful completion the checkpoint file is deleted.
    *on_chunk* is called with the trace position after each saved
    chunk — the test suite uses it to kill the run mid-trace.
    """
    if chunk < 1:
        raise CheckpointError(f"chunk must be >= 1, got {chunk}")
    position = 0
    refs_done = 0
    if os.path.exists(path):
        state = None
        try:
            state = load_checkpoint(path)
        except CheckpointError as exc:
            # A corrupt or truncated checkpoint (crashed writer, torn
            # disk) must not kill the run it exists to protect: log,
            # discard, restart from the trace beginning.  The machine
            # is untouched — load_checkpoint validates structure before
            # restore_machine mutates anything.
            logger.warning(
                "discarding unusable checkpoint: path=%s error=%s "
                "action=restart-from-beginning",
                path,
                exc,
            )
            with contextlib.suppress(OSError):
                os.remove(path)
        if state is not None:
            if key is not None and tuple(state["key"]) != tuple(key):
                # A *valid* checkpoint for a different run is a caller
                # error, not corruption: resuming it would silently
                # produce the wrong experiment's numbers.
                raise CheckpointError(
                    f"checkpoint {path} belongs to a different run: "
                    f"{state['key']} != {key}"
                )
            position, refs_done = restore_machine(
                machine, state, injector=injector, guard=guard
            )
    cursor: TraceCursor | StreamCursor
    if isinstance(records, TraceStream):
        cursor = StreamCursor(records, position)
    else:
        cursor = TraceCursor(records, position)
    while batch := cursor.take(chunk):
        result = machine.run(
            batch,
            check_values=check_values,
            injector=injector,
            guard=guard,
            ref_offset=refs_done,
        )
        refs_done += result.refs_processed
        save_checkpoint(
            path,
            export_machine(
                machine,
                cursor.position,
                refs_done,
                key=key,
                injector=injector,
                guard=guard,
            ),
        )
        if on_chunk is not None:
            on_chunk(cursor.position)
    if os.path.exists(path):
        os.remove(path)
    return SimulationResult(
        per_cpu=[hier.stats for hier in machine.hierarchies],
        bus_transactions=machine.bus.stats.as_dict(),
        refs_processed=refs_done,
        tlb_per_cpu=[
            hier.tlb.stats.as_dict() for hier in machine.hierarchies
        ],
    )
