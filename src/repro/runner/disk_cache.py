"""Persistent on-disk cache of :class:`SimulationResult` objects.

The cache fronts the per-process simulation memo in
``repro.experiments.base``: a simulation that already ran — in this
process, another worker, or a previous invocation — is loaded from
disk instead of being replayed, so re-running ``repro-all`` after a
code-irrelevant change is near-instant.

Entries are **content-keyed**: the file name is a digest of every
parameter that affects the result (trace, scale, geometry, hierarchy
kind, seed, config overrides, and the guard/fault options).  The whole
cache is **versioned by a schema hash** — a digest of the source text
of every package the simulation outcome depends on — so any change to
the simulator's behaviour lands in a fresh subdirectory and stale
entries self-invalidate.  Old schema directories are pruned lazily.

Results are stored with :mod:`pickle` (they are plain stats
containers), written atomically (temp file + ``os.replace``) so
concurrent workers and interrupted runs never leave a torn entry.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import shutil
from pathlib import Path
from typing import Any

from ..obs import get_logger

logger = get_logger("runner.disk_cache")

#: Subpackages whose source determines simulation results.  Changes to
#: the experiments/runner/perf layers (rendering, planning, plotting)
#: do not invalidate cached simulations.
_SCHEMA_PACKAGES = (
    "cache",
    "coherence",
    "common",
    "faults",
    "hierarchy",
    "mmu",
    "system",
    "trace",
)

_schema_hash: str | None = None


def schema_hash() -> str:
    """Digest of the simulation-relevant source (memoised per process)."""
    global _schema_hash
    if _schema_hash is None:
        import repro

        digest = hashlib.sha256()
        root = Path(repro.__file__).parent
        for package in _SCHEMA_PACKAGES:
            for path in sorted((root / package).rglob("*.py")):
                digest.update(str(path.relative_to(root)).encode())
                digest.update(path.read_bytes())
        _schema_hash = digest.hexdigest()[:16]
    return _schema_hash


def default_cache_dir() -> str:
    """Where the cache lives unless overridden.

    ``$REPRO_CACHE_DIR`` wins; in a source checkout (a ``pyproject.toml``
    three levels above the package) the cache sits next to the benchmark
    artefacts in ``benchmarks/results/cache``; an installed package
    falls back to ``~/.cache/repro``.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    import repro

    repo_root = Path(repro.__file__).resolve().parents[2]
    if (repo_root / "pyproject.toml").is_file():
        return str(repo_root / "benchmarks" / "results" / "cache")
    return str(Path.home() / ".cache" / "repro")


def key_digest(parts: tuple[Any, ...]) -> str:
    """Stable digest of a simulation key tuple.

    Every element is rendered with ``repr`` — the keys are built from
    primitives, enums and option dataclasses whose reprs are stable
    and unambiguous.
    """
    text = "\x1f".join(repr(part) for part in parts)
    return hashlib.sha256(text.encode()).hexdigest()[:32]


class ResultCache:
    """One cache root, bound to the current schema hash."""

    def __init__(self, root: str) -> None:
        self.root = Path(root)
        self.schema_dir = self.root / schema_hash()
        self._pruned = False

    def _path(self, parts: tuple[Any, ...]) -> Path:
        return self.schema_dir / f"{key_digest(parts)}.pkl"

    def load(self, parts: tuple[Any, ...]) -> Any | None:
        """The cached result for *parts*, or None.

        A torn or unreadable entry is treated as a miss and removed, so
        the caller re-executes and overwrites it.  Writers are atomic
        (``os.replace``), but a cache directory shared by concurrent
        runs can still surface entries damaged by crashed writers on
        non-atomic filesystems, truncation, or plain disk corruption —
        and a corrupt pickle raises essentially anything
        (``UnpicklingError``, ``EOFError``, ``AttributeError``,
        ``IndexError``, ``ImportError``, ``MemoryError`` on a bogus
        length prefix, …).  A cache must never let any of those escape
        as a crash, so everything except process-fatal exceptions is a
        miss.
        """
        path = self._path(parts)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Another process may have deleted the same corrupt entry
            # between our read and unlink; both orders are fine.
            with contextlib.suppress(OSError):
                path.unlink()
            return None

    def store(self, parts: tuple[Any, ...], result: Any) -> None:
        """Persist *result* under *parts*, atomically.

        Best-effort under concurrency: a sibling process running
        :meth:`clear` can sweep the schema directory (tmp file and
        all) between our write and rename, so the write is retried
        once into a recreated directory rather than crashing the run
        that produced the result.
        """
        self._prune_stale_schemas()
        path = self._path(parts)
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        for attempt in range(2):
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(f".{path.name}.{os.getpid()}.{attempt}.tmp")
            try:
                tmp.write_bytes(payload)
                os.replace(tmp, path)
                return
            except FileNotFoundError:
                continue  # directory swept mid-write; recreate and retry
            finally:
                # Unconditional unlink: an exists()-then-unlink() pair
                # races with a concurrent cleaner between the two calls.
                with contextlib.suppress(FileNotFoundError):
                    tmp.unlink()
        # Both attempts lost the race with a concurrent clear(); the run
        # keeps its in-memory result, but a cache dir swept this often
        # never persists anything — make that observable.
        logger.warning(
            "cache store dropped after repeated directory sweeps: %s", path
        )

    def clear(self) -> int:
        """Delete every entry (all schema versions); returns files removed."""
        removed = 0
        if self.root.is_dir():
            removed = sum(1 for _ in self.root.rglob("*.pkl"))
            shutil.rmtree(self.root, ignore_errors=True)
        return removed

    def entry_count(self) -> int:
        """Entries stored under the current schema."""
        if not self.schema_dir.is_dir():
            return 0
        return sum(1 for _ in self.schema_dir.glob("*.pkl"))

    def _prune_stale_schemas(self) -> None:
        """Drop sibling schema directories from older code (once)."""
        if self._pruned:
            return
        self._pruned = True
        if not self.root.is_dir():
            return
        # sorted(): the sweep's removal order is observable (logs,
        # crash timing under concurrent clears); keep it deterministic.
        for entry in sorted(self.root.iterdir()):
            if entry.is_dir() and entry.name != self.schema_dir.name:
                shutil.rmtree(entry, ignore_errors=True)


_caches: dict[str, ResultCache] = {}


def get_cache(root: str) -> ResultCache:
    """A per-process singleton cache per root directory."""
    cache = _caches.get(root)
    if cache is None:
        cache = _caches[root] = ResultCache(root)
    return cache
