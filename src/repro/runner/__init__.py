"""Parallel experiment runner: job planning, worker pool, disk cache.

This package turns a list of experiment ids into a deduplicated set
of simulation jobs, fans the jobs out across worker processes, and
persists every result in a content-keyed on-disk cache so repeated
runs only pay for what actually changed.

The layering is strict: ``repro.experiments`` knows nothing about
processes — runners call :func:`repro.experiments.base.simulate`,
which transparently hits the memo (pre-seeded by the pool) and the
disk cache.  The runner only *pre-computes* what the runners would
compute anyway.

For unattended grids, :func:`run_jobs` accepts a
:class:`SupervisorConfig` that turns the bare pool into a supervising
executor — retries with seeded backoff, per-job wall-clock timeouts,
broken-pool recovery, poison-job quarantine, and an append-only run
journal that makes interrupted runs resumable.
"""

from .disk_cache import ResultCache, default_cache_dir, get_cache, schema_hash
from .planner import PLANNERS, SimJob, plan_jobs
from .pool import RunReport, run_jobs
from .supervisor import (
    AttemptRecord,
    FailureRecord,
    JournalEntry,
    RunJournal,
    Supervisor,
    SupervisorConfig,
    reset_runner_metrics,
    runner_metrics,
)

__all__ = [
    "PLANNERS",
    "AttemptRecord",
    "FailureRecord",
    "JournalEntry",
    "ResultCache",
    "RunJournal",
    "RunReport",
    "SimJob",
    "Supervisor",
    "SupervisorConfig",
    "default_cache_dir",
    "get_cache",
    "plan_jobs",
    "reset_runner_metrics",
    "run_jobs",
    "runner_metrics",
    "schema_hash",
]
