"""The worker pool: fan simulation jobs out across processes.

The parent first resolves every job against the in-process memo and
the disk cache; only true misses are submitted.  Workers receive the
*job description* — never trace records — and regenerate the trace
locally from its seed, which keeps the submission payload tiny and
the generation cost parallel too.  Each worker installs the parent's
:class:`RunOptions`, runs :func:`repro.experiments.base.simulate`
(writing the disk cache as a side effect), and ships the pickled
:class:`SimulationResult` back; the parent seeds the memo so the
experiment runners then find every simulation precomputed.

Simulations are deterministic and jobs are deduplicated upstream, so
results are bit-identical to a serial run and no two workers ever
race on the same cache entry.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from time import perf_counter

from ..experiments import base
from ..system.multiprocessor import SimulationResult
from .disk_cache import get_cache
from .planner import SimJob


@dataclass
class RunReport:
    """How a :func:`run_jobs` call was satisfied.

    ``executed`` counts simulations actually replayed (in workers or,
    for a single pending job, inline); the rest were cache hits.
    """

    total_jobs: int = 0
    memo_hits: int = 0
    disk_hits: int = 0
    executed: int = 0
    n_workers: int = 1
    elapsed_s: float = 0.0
    timings: dict[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        """One status line for the CLI."""
        return (
            f"{self.total_jobs} simulations: {self.executed} run "
            f"({self.n_workers} workers), {self.disk_hits} from disk cache, "
            f"{self.memo_hits} memoised [{self.elapsed_s:.1f}s]"
        )


def _execute_job(job: SimJob, options: base.RunOptions) -> tuple[SimJob, SimulationResult, int]:
    """Worker entry point: simulate *job* under *options*.

    Returns the job, its result, and how many simulations were
    actually replayed here (0 when another run's disk entry appeared
    in the meantime).
    """
    base.set_run_options(options)
    before = base.executed_simulations()
    result = base.simulate(
        job.trace,
        job.scale,
        job.l1,
        job.l2,
        job.kind,
        split_l1=job.split_l1,
        block_size=job.block_size,
        seed=job.seed,
        config_overrides=job.config_overrides,
    )
    return job, result, base.executed_simulations() - before


def run_jobs(jobs: list[SimJob], n_workers: int | None = None) -> RunReport:
    """Pre-compute *jobs* under the installed run options.

    After this returns, every job's result sits in the simulation
    memo (and on disk when a cache directory is configured), so the
    experiment runners replay nothing.  With ``n_workers <= 1`` or at
    most one pending job, everything runs in-process — same results,
    no pool overhead.
    """
    started = perf_counter()
    options = base.get_run_options()
    report = RunReport(
        total_jobs=len(jobs),
        n_workers=max(1, n_workers if n_workers is not None else os.cpu_count() or 1),
    )

    pending: list[SimJob] = []
    # Tracing bypasses the disk cache (see base.simulate): every event
    # must come from a real replay in this process.
    from ..obs import get_tracer

    use_disk = options.cache_dir is not None and get_tracer() is None
    disk = get_cache(options.cache_dir) if use_disk else None
    for job in jobs:
        key = job.key()
        if base.memo_get(key) is not None:
            report.memo_hits += 1
            continue
        if disk is not None:
            stored = disk.load(base.disk_key(key, options))
            if stored is not None:
                base.seed_memo(key, stored)
                report.disk_hits += 1
                continue
        pending.append(job)

    if report.n_workers <= 1 or len(pending) <= 1:
        for job in pending:
            _, _, executed = _execute_job(job, options)
            report.executed += executed
        report.elapsed_s = perf_counter() - started
        return report

    workers = min(report.n_workers, len(pending))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(_execute_job, job, options) for job in pending]
        for future in as_completed(futures):
            job, result, executed = future.result()
            base.seed_memo(job.key(), result)
            report.executed += executed
    report.elapsed_s = perf_counter() - started
    return report
