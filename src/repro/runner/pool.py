"""The worker pool: fan simulation jobs out across processes.

The parent first resolves every job against the in-process memo and
the disk cache; only true misses are submitted.  Workers receive the
*job description* — never trace records — and regenerate the trace
locally from its seed, which keeps the submission payload tiny and
the generation cost parallel too.  Each worker installs the parent's
:class:`RunOptions`, runs :func:`repro.experiments.base.simulate`
(writing the disk cache as a side effect), and ships the pickled
:class:`SimulationResult` back; the parent seeds the memo so the
experiment runners then find every simulation precomputed.

Simulations are deterministic and jobs are deduplicated upstream, so
results are bit-identical to a serial run and no two workers ever
race on the same cache entry.

Pass a :class:`~repro.runner.supervisor.SupervisorConfig` to run
under the fault-tolerant supervisor instead of the bare pool: per-job
timeouts, seeded retries, broken-pool recovery, quarantine and a
resumable run journal (see :mod:`repro.runner.supervisor`).  Chaotic
attempts either die before simulating or raise without producing a
result, so the surviving results stay bit-identical either way.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from time import perf_counter

from ..experiments import base
from ..faults.chaos import ChaosConfig
from ..system.multiprocessor import SimulationResult
from .disk_cache import get_cache, key_digest
from .planner import SimJob
from .supervisor import Supervisor, SupervisorConfig


@dataclass
class RunReport:
    """How a :func:`run_jobs` call was satisfied.

    ``executed`` counts simulations actually replayed (in workers or,
    for a single pending job, inline); the rest were cache hits.  The
    resilience fields stay zero outside supervised runs: ``retried``
    jobs succeeded after at least one failed attempt, ``timed_out`` /
    ``quarantined`` jobs were given up on (``quarantine_files`` holds
    their failure-record paths), ``skipped_quarantined`` jobs were
    dropped by ``--resume`` because a previous run quarantined them.
    ``outcomes`` maps each supervised job's digest to its terminal
    outcome (``ok`` / ``retried`` / ``timed_out`` / ``quarantined`` /
    ``skipped_quarantined``).
    """

    total_jobs: int = 0
    memo_hits: int = 0
    disk_hits: int = 0
    executed: int = 0
    n_workers: int = 1
    elapsed_s: float = 0.0
    retried: int = 0
    timed_out: int = 0
    quarantined: int = 0
    pool_rebuilds: int = 0
    skipped_quarantined: int = 0
    quarantine_files: list[str] = field(default_factory=list)
    outcomes: dict[str, str] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def healthy(self) -> bool:
        """True when every job reached a result (none given up on)."""
        return self.quarantined == 0 and self.skipped_quarantined == 0

    def describe(self) -> str:
        """One status line for the CLI."""
        line = (
            f"{self.total_jobs} simulations: {self.executed} run "
            f"({self.n_workers} workers), {self.disk_hits} from disk cache, "
            f"{self.memo_hits} memoised"
        )
        extras = []
        if self.retried:
            extras.append(f"{self.retried} retried")
        if self.timed_out:
            extras.append(f"{self.timed_out} timeout(s)")
        if self.quarantined:
            extras.append(f"{self.quarantined} quarantined")
        if self.pool_rebuilds:
            extras.append(f"{self.pool_rebuilds} pool rebuild(s)")
        if self.skipped_quarantined:
            extras.append(
                f"{self.skipped_quarantined} skipped (quarantined earlier)"
            )
        if extras:
            line += "; " + ", ".join(extras)
        return line + f" [{self.elapsed_s:.1f}s]"


def _execute_job(
    job: SimJob,
    options: base.RunOptions,
    chaos: ChaosConfig | None = None,
    attempt: int = 1,
) -> tuple[SimJob, SimulationResult, int]:
    """Worker entry point: simulate *job* under *options*.

    Returns the job, its result, and how many simulations were
    actually replayed here (0 when another run's disk entry appeared
    in the meantime).  A *chaos* config may kill, hang or fail this
    worker before any simulation state is touched — misbehaviour
    never corrupts a result, it only prevents one.
    """
    if chaos is not None and chaos.active:
        chaos.apply(key_digest(job.key()), attempt)
    base.set_run_options(options)
    before = base.executed_simulations()
    result = base.simulate(
        job.trace,
        job.scale,
        job.l1,
        job.l2,
        job.kind,
        split_l1=job.split_l1,
        block_size=job.block_size,
        seed=job.seed,
        config_overrides=job.config_overrides,
    )
    return job, result, base.executed_simulations() - before


def run_jobs(
    jobs: list[SimJob],
    n_workers: int | None = None,
    supervisor: SupervisorConfig | None = None,
) -> RunReport:
    """Pre-compute *jobs* under the installed run options.

    After this returns, every job's result sits in the simulation
    memo (and on disk when a cache directory is configured), so the
    experiment runners replay nothing.  With ``n_workers <= 1`` or at
    most one pending job, everything runs in-process — same results,
    no pool overhead.

    A *supervisor* config routes all pending jobs through the
    fault-tolerant :class:`~repro.runner.supervisor.Supervisor`
    (even single pending jobs: timeouts and chaos still apply).
    """
    started = perf_counter()
    options = base.get_run_options()
    report = RunReport(
        total_jobs=len(jobs),
        n_workers=max(1, n_workers if n_workers is not None else os.cpu_count() or 1),
    )

    pending: list[SimJob] = []
    # Tracing bypasses the disk cache (see base.simulate): every event
    # must come from a real replay in this process.
    from ..obs import get_tracer

    use_disk = options.cache_dir is not None and get_tracer() is None
    disk = get_cache(options.cache_dir) if use_disk else None
    for job in jobs:
        key = job.key()
        if base.memo_get(key) is not None:
            report.memo_hits += 1
            continue
        if disk is not None:
            stored = disk.load(base.disk_key(key, options))
            if stored is not None:
                base.seed_memo(key, stored)
                report.disk_hits += 1
                continue
        pending.append(job)

    if supervisor is not None and pending:
        workers = min(report.n_workers, len(pending))
        Supervisor(pending, options, workers, supervisor, _execute_job).run(report)
        report.elapsed_s = perf_counter() - started
        return report

    if report.n_workers <= 1 or len(pending) <= 1:
        for job in pending:
            _, _, executed = _execute_job(job, options)
            report.executed += executed
        report.elapsed_s = perf_counter() - started
        return report

    workers = min(report.n_workers, len(pending))
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        futures = [pool.submit(_execute_job, job, options) for job in pending]
        for future in as_completed(futures):
            job, result, executed = future.result()
            base.seed_memo(job.key(), result)
            report.executed += executed
    except KeyboardInterrupt:
        # Kill workers outright — a ^C must not block on stragglers —
        # then honour the CLI's exit-130 contract.
        from .supervisor import _terminate_workers

        _terminate_workers(pool)
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    else:
        pool.shutdown(wait=True)
    report.elapsed_s = perf_counter() - started
    return report
