"""The fault-tolerant experiment supervisor.

``repro.runner.pool`` used to call ``future.result()`` bare: one
worker exception — or one killed process — aborted the whole grid.
This module rebuilds that layer as a *supervising executor* so large
unattended sweeps degrade gracefully instead of aborting:

* **Retries with seeded backoff.**  A failed attempt is retried up to
  :attr:`SupervisorConfig.max_attempts` times with exponential backoff
  plus jitter; the jitter draw is a pure function of ``(run seed, job
  digest, attempt)``, so a rerun schedules identically.
* **Wall-clock watchdog.**  A job running past
  :attr:`SupervisorConfig.job_timeout_s` has its pool killed and is
  charged a ``timeout`` attempt; other in-flight jobs are requeued
  *without* penalty (the culprit is known).
* **``BrokenProcessPool`` recovery.**  A dead worker breaks the whole
  stdlib pool; the supervisor terminates the wreck, rebuilds a fresh
  pool (a bounded number of times) and requeues every in-flight job.
  A pool break cannot be attributed to a single job, so *each*
  in-flight job is charged a ``worker_lost`` attempt — the attempt
  history in the failure record keeps false charges diagnosable, and
  healthy jobs heal on retry.
* **Quarantine.**  A job that exhausts its attempts is quarantined: a
  structured :class:`FailureRecord` (job key, attempt history with
  tracebacks) is written atomically to the quarantine directory and
  the run carries on with the healthy jobs.
* **Run journal.**  Every finished job appends one JSONL line to an
  append-only journal (line-flushed, torn-tail tolerant), so a crashed
  or interrupted run knows on ``--resume`` what already completed and
  which jobs were quarantined — quarantined jobs are skipped instead
  of re-poisoning the pool, and completed results come straight from
  the disk cache.

Everything is observable: ``runner.retry`` / ``runner.timeout`` /
``runner.quarantine`` / ``runner.pool_rebuild`` counters in the
module registry (merged into ``--metrics-out`` snapshots) and a
``runner`` tracer category.
"""

from __future__ import annotations

import contextlib
import json
import os
import random
import traceback
from collections import deque
from collections.abc import Callable
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, fields
from pathlib import Path
from time import perf_counter, sleep
from typing import IO, TYPE_CHECKING, Any

from ..experiments import base
from ..faults.chaos import ChaosConfig
from ..obs import MetricsRegistry, get_logger, get_tracer
from ..system.multiprocessor import SimulationResult
from .disk_cache import key_digest, schema_hash
from .planner import SimJob

if TYPE_CHECKING:
    from .pool import RunReport

logger = get_logger("runner.supervisor")

#: Worker entry-point signature the supervisor submits to the pool.
WorkerFn = Callable[
    ["SimJob", base.RunOptions, "ChaosConfig | None", int],
    tuple[SimJob, SimulationResult, int],
]

#: Journal / failure-record format version.
JOURNAL_VERSION = 1

#: Terminal outcomes a resumed run refuses to retry.
_SKIP_ON_RESUME = frozenset({"quarantined", "timed_out"})


# -- supervisor-level metrics --------------------------------------------------

_metrics = MetricsRegistry()


def runner_metrics() -> MetricsRegistry:
    """The supervisor's own counters (``runner.*``), for this process.

    Counters are only minted when a resilience event actually fires,
    so a clean run contributes nothing to a merged snapshot and
    ``--jobs 1`` vs ``--jobs 4`` snapshots stay byte-identical.
    """
    return _metrics


def reset_runner_metrics() -> None:
    """Forget all supervisor counters (between CLI invocations)."""
    global _metrics
    _metrics = MetricsRegistry()


# -- configuration -------------------------------------------------------------


@dataclass(frozen=True)
class SupervisorConfig:
    """Policy knobs for one supervised :func:`~repro.runner.run_jobs`.

    Attributes:
        max_attempts: attempts per job before quarantine (>= 1).
        job_timeout_s: per-job wall-clock budget once the job is
            observed running; None disables the watchdog.
        backoff_base_s: delay before the first retry.
        backoff_factor: multiplier per further retry.
        backoff_max_s: cap on the un-jittered delay.
        backoff_jitter: jitter fraction added on top (0 disables).
        seed: seed of the deterministic jitter draw.
        max_pool_rebuilds: how many times a broken/timed-out pool is
            rebuilt before the remaining jobs are quarantined wholesale;
            None means ``max(4, pending jobs)``.
        quarantine_dir: where :class:`FailureRecord` JSON files land;
            None keeps records on the report only.
        journal_path: append-only JSONL journal of finished jobs;
            None disables journalling (and resume).
        resume: skip jobs the journal marks quarantined/timed out.
        chaos: seeded worker misbehaviour, for tests and chaos smokes.
        poll_interval_s: watchdog tick.
        job_deadline_s: per-job wall-clock budgets keyed by job digest,
            overriding ``job_timeout_s`` for those jobs — the serving
            layer injects client deadlines here so one slow request
            cannot hold a worker past what its client will wait for.
        on_outcome: called with ``(job digest, terminal outcome)`` the
            moment a job finishes, is quarantined or times out — before
            the rest of the batch completes.  The serving layer uses it
            to resolve coalesced request futures promptly; it runs on
            the supervisor's thread and must not block.
    """

    max_attempts: int = 3
    job_timeout_s: float | None = None
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    backoff_jitter: float = 0.1
    seed: int = 0
    max_pool_rebuilds: int | None = None
    quarantine_dir: str | None = None
    journal_path: str | None = None
    resume: bool = False
    chaos: ChaosConfig | None = None
    poll_interval_s: float = 0.05
    job_deadline_s: dict[str, float] | None = None
    on_outcome: Callable[[str, str], None] | None = None

    def deadline_for(self, digest: str) -> float | None:
        """The wall-clock budget for job *digest*, or None (unbounded).

        A per-job deadline wins over the run-wide ``job_timeout_s``.
        """
        if self.job_deadline_s is not None:
            specific = self.job_deadline_s.get(digest)
            if specific is not None:
                return specific
        return self.job_timeout_s

    @property
    def any_deadline(self) -> bool:
        """True when at least one job runs under a wall-clock budget."""
        return self.job_timeout_s is not None or bool(self.job_deadline_s)

    def backoff_delay(self, digest: str, failures: int) -> float:
        """Seconds to wait before retry number *failures* of *digest*.

        Deterministic: the jitter is drawn from a RNG seeded with
        ``(seed, digest, failures)``, never from shared state.
        """
        delay = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** max(0, failures - 1),
        )
        jitter = random.Random(f"{self.seed}:{digest}:{failures}").random()
        return delay * (1.0 + self.backoff_jitter * jitter)


# -- structured failure records ------------------------------------------------


@dataclass(frozen=True)
class AttemptRecord:
    """One failed attempt at a job.

    ``outcome`` is ``"raise"`` (the job raised in the worker),
    ``"timeout"`` (watchdog expiry) or ``"worker_lost"`` (the pool
    broke while the job was in flight — not necessarily its fault).
    """

    attempt: int
    outcome: str
    elapsed_s: float
    error: str = ""
    traceback: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "attempt": self.attempt,
            "outcome": self.outcome,
            "elapsed_s": round(self.elapsed_s, 3),
            "error": self.error,
            "traceback": self.traceback,
        }


@dataclass(frozen=True)
class FailureRecord:
    """Why one job was quarantined, with its full attempt history."""

    key: str
    job: dict[str, Any]
    reason: str
    attempts: tuple[AttemptRecord, ...]
    schema: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "v": JOURNAL_VERSION,
            "key": self.key,
            "job": self.job,
            "reason": self.reason,
            "attempts": [attempt.to_dict() for attempt in self.attempts],
            "schema": self.schema,
        }

    def write(self, directory: str) -> Path:
        """Persist this record as ``<directory>/<key>.json``, atomically."""
        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        path = root / f"{self.key}.json"
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(
                json.dumps(self.to_dict(), indent=2, sort_keys=True, default=str)
                + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, path)
        finally:
            with contextlib.suppress(FileNotFoundError):
                tmp.unlink()
        return path

    @classmethod
    def from_file(cls, path: str | Path) -> "FailureRecord":
        """Rebuild a record from :meth:`write` output."""
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls(
            key=data["key"],
            job=data["job"],
            reason=data["reason"],
            attempts=tuple(
                AttemptRecord(
                    attempt=raw["attempt"],
                    outcome=raw["outcome"],
                    elapsed_s=raw["elapsed_s"],
                    error=raw.get("error", ""),
                    traceback=raw.get("traceback", ""),
                )
                for raw in data["attempts"]
            ),
            schema=data["schema"],
        )


def _job_payload(job: SimJob) -> dict[str, Any]:
    """A JSON-friendly rendering of a job's identifying fields."""
    out: dict[str, Any] = {}
    for spec in fields(job):
        value = getattr(job, spec.name)
        out[spec.name] = value if isinstance(value, (int, float, bool)) else str(value)
    return out


# -- the run journal -----------------------------------------------------------


@dataclass(frozen=True)
class JournalEntry:
    """One finished job: its digest and how it ended.

    ``position`` is the trace position (records consumed) the job
    reached — for successful jobs the full trace length, echoing the
    chunk offsets the checkpoint layer saves, so a resume can report
    where each interrupted run will re-enter its trace.
    """

    key: str
    outcome: str
    attempts: int
    options: str
    schema: str
    elapsed_s: float
    position: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "v": JOURNAL_VERSION,
            "key": self.key,
            "outcome": self.outcome,
            "attempts": self.attempts,
            "options": self.options,
            "schema": self.schema,
            "elapsed_s": round(self.elapsed_s, 3),
            "position": self.position,
        }


class RunJournal:
    """Append-only JSONL log of finished jobs.

    Each line is flushed as it is written (the same crash discipline
    as ``repro.faults.checkpoint``: an interrupted parent loses at
    most the in-flight jobs, never a completed one), and the loader
    tolerates a torn final line, so a journal is always resumable.
    """

    def __init__(self, path: str) -> None:
        self.path = Path(path)
        self._handle: IO[str] | None = None

    def append(self, entry: JournalEntry) -> None:
        """Record one finished job, durably."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @staticmethod
    def load(
        path: str, schema: str, options_digest: str
    ) -> dict[str, JournalEntry]:
        """Finished jobs recorded at *path*, last entry per key winning.

        Lines from another schema hash or options profile are ignored
        (stale journals self-invalidate, like the disk cache), as are
        torn or malformed lines.
        """
        entries: dict[str, JournalEntry] = {}
        journal = Path(path)
        if not journal.is_file():
            return entries
        with open(journal, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    raw = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail from a crashed writer
                if not isinstance(raw, dict) or raw.get("v") != JOURNAL_VERSION:
                    continue
                if raw.get("schema") != schema or raw.get("options") != options_digest:
                    continue
                try:
                    entry = JournalEntry(
                        key=raw["key"],
                        outcome=raw["outcome"],
                        attempts=int(raw["attempts"]),
                        options=raw["options"],
                        schema=raw["schema"],
                        elapsed_s=float(raw["elapsed_s"]),
                        position=int(raw.get("position", 0)),
                    )
                except (KeyError, TypeError, ValueError):
                    continue
                entries[entry.key] = entry
        return entries


# -- the supervisor ------------------------------------------------------------


class _JobState:
    """Supervisor-side bookkeeping for one pending job."""

    __slots__ = ("job", "digest", "attempts", "not_before", "started_at", "enqueued")

    def __init__(self, job: SimJob) -> None:
        self.job = job
        self.digest = key_digest(job.key())
        self.attempts: list[AttemptRecord] = []
        self.not_before = 0.0
        self.started_at: float | None = None
        self.enqueued = perf_counter()


def _terminate_workers(pool: ProcessPoolExecutor) -> None:
    """SIGKILL every worker of *pool* (hung workers ignore less)."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        with contextlib.suppress(OSError):
            process.kill()


class Supervisor:
    """Drives one set of pending jobs to completion or quarantine.

    The supervisor owns the :class:`ProcessPoolExecutor` (and replaces
    it when it breaks), seeds the simulation memo with every result,
    journals completions, and fills the caller's
    :class:`~repro.runner.pool.RunReport` with per-job outcomes.
    """

    def __init__(
        self,
        pending: list[SimJob],
        options: base.RunOptions,
        n_workers: int,
        config: SupervisorConfig,
        worker: WorkerFn,
    ) -> None:
        self.options = options
        self.n_workers = max(1, n_workers)
        self.config = config
        self.worker = worker
        self._states = [_JobState(job) for job in pending]
        self._options_digest = key_digest(options.result_key_parts())
        self._rebuilds = 0
        self._rebuild_budget = (
            config.max_pool_rebuilds
            if config.max_pool_rebuilds is not None
            else max(4, len(pending))
        )
        self._journal: RunJournal | None = (
            RunJournal(config.journal_path)
            if config.journal_path is not None
            else None
        )
        tracer = get_tracer()
        self._tr_runner = (
            tracer if tracer is not None and tracer.wants("runner") else None
        )

    # -- outcome handling ------------------------------------------------------

    def _journal_entry(
        self, state: _JobState, outcome: str, attempts: int, position: int = 0
    ) -> None:
        if self._journal is None:
            return
        self._journal.append(
            JournalEntry(
                key=state.digest,
                outcome=outcome,
                attempts=attempts,
                options=self._options_digest,
                schema=schema_hash(),
                # elapsed_s is timing *metadata* about the attempt, not
                # part of the journal entry's identity; --resume keys
                # only on (key, outcome, options, schema).
                elapsed_s=perf_counter() - state.enqueued,  # rps: ignore[RPS102]
                position=position,
            )
        )

    def _succeed(
        self,
        report: "RunReport",
        state: _JobState,
        result: SimulationResult,
        executed: int,
    ) -> None:
        base.seed_memo(state.job.key(), result)
        report.executed += executed
        outcome = "retried" if state.attempts else "ok"
        if state.attempts:
            report.retried += 1
        report.outcomes[state.digest] = outcome
        self._journal_entry(
            state, outcome, len(state.attempts) + 1, result.refs_processed
        )
        if self.config.on_outcome is not None:
            self.config.on_outcome(state.digest, outcome)

    def _quarantine(
        self, report: "RunReport", state: _JobState, reason: str
    ) -> None:
        last = state.attempts[-1] if state.attempts else None
        outcome = (
            "timed_out" if last is not None and last.outcome == "timeout"
            else "quarantined"
        )
        report.quarantined += 1
        report.outcomes[state.digest] = outcome
        _metrics.inc("runner.quarantine")
        if self._tr_runner is not None:
            self._tr_runner.emit(
                "runner",
                "quarantine",
                job=state.digest,
                attempts=len(state.attempts),
                reason=reason,
            )
        record = FailureRecord(
            key=state.digest,
            job=_job_payload(state.job),
            reason=reason,
            attempts=tuple(state.attempts),
            schema=schema_hash(),
        )
        if self.config.quarantine_dir is not None:
            path = record.write(self.config.quarantine_dir)
            report.quarantine_files.append(str(path))
            logger.warning(
                "quarantined job %s after %d attempt(s): %s (%s)",
                state.digest[:12],
                len(state.attempts),
                reason,
                path,
            )
        else:
            logger.warning(
                "quarantined job %s after %d attempt(s): %s",
                state.digest[:12],
                len(state.attempts),
                reason,
            )
        self._journal_entry(state, outcome, len(state.attempts))
        if self.config.on_outcome is not None:
            self.config.on_outcome(state.digest, outcome)

    def _fail(
        self,
        report: "RunReport",
        state: _JobState,
        kind: str,
        exc: BaseException | None,
        queue: "deque[_JobState]",
    ) -> None:
        """Charge *state* one failed attempt; retry or quarantine."""
        now = perf_counter()
        elapsed = now - state.started_at if state.started_at is not None else 0.0
        state.attempts.append(
            AttemptRecord(
                attempt=len(state.attempts) + 1,
                outcome=kind,
                elapsed_s=elapsed,
                error=repr(exc) if exc is not None else "",
                traceback="".join(
                    traceback.format_exception(type(exc), exc, exc.__traceback__)
                )
                if exc is not None
                else "",
            )
        )
        state.started_at = None
        if len(state.attempts) >= self.config.max_attempts:
            self._quarantine(report, state, f"exhausted attempts ({kind})")
            return
        failures = len(state.attempts)
        delay = self.config.backoff_delay(state.digest, failures)
        state.not_before = now + delay
        queue.append(state)
        _metrics.inc("runner.retry")
        if self._tr_runner is not None:
            self._tr_runner.emit(
                "runner",
                "retry",
                job=state.digest,
                attempt=failures,
                kind=kind,
                delay_s=round(delay, 4),
            )
        logger.info(
            "retrying job %s (attempt %d/%d failed: %s; backoff %.2fs)",
            state.digest[:12],
            failures,
            self.config.max_attempts,
            kind,
            delay,
        )

    def _discard_pool(
        self, pool: ProcessPoolExecutor, report: "RunReport", why: str
    ) -> None:
        """Kill *pool*'s workers and account one rebuild."""
        _terminate_workers(pool)
        pool.shutdown(wait=False, cancel_futures=True)
        self._rebuilds += 1
        report.pool_rebuilds += 1
        _metrics.inc("runner.pool_rebuild")
        if self._tr_runner is not None:
            self._tr_runner.emit(
                "runner", "pool_rebuild", rebuild=self._rebuilds, why=why
            )
        logger.warning(
            "worker pool %s: rebuilding (%d/%d)",
            why,
            self._rebuilds,
            self._rebuild_budget,
        )

    # -- the main loop ---------------------------------------------------------

    def run(self, report: "RunReport") -> None:
        """Run every pending job to a terminal outcome, filling *report*."""
        queue = self._resume_filter(report)
        if not queue:
            return
        workers = min(self.n_workers, len(queue))
        inflight: dict[Future[tuple[SimJob, SimulationResult, int]], _JobState] = {}
        pool: ProcessPoolExecutor | None = None
        try:
            while queue or inflight:
                if pool is None:
                    pool = ProcessPoolExecutor(max_workers=workers)
                now = perf_counter()
                deferred: deque[_JobState] = deque()
                while queue:
                    state = queue.popleft()
                    if state.not_before > now:
                        deferred.append(state)
                        continue
                    attempt = len(state.attempts) + 1
                    future = pool.submit(
                        self.worker,
                        state.job,
                        self.options,
                        self.config.chaos,
                        attempt,
                    )
                    inflight[future] = state
                queue = deferred
                if not inflight:
                    wake = min(state.not_before for state in queue)
                    sleep(max(0.0, min(self.config.poll_interval_s, wake - now)))
                    continue
                done, _ = wait(
                    set(inflight),
                    timeout=self.config.poll_interval_s,
                    return_when=FIRST_COMPLETED,
                )
                broken: list[_JobState] = []
                for future in done:
                    state = inflight.pop(future)
                    try:
                        _, result, executed = future.result()
                    except BrokenProcessPool:
                        broken.append(state)
                    except KeyboardInterrupt:
                        raise
                    except Exception as exc:
                        self._fail(report, state, "raise", exc, queue)
                    else:
                        self._succeed(report, state, result, executed)
                if broken:
                    # The whole pool is gone: every other in-flight job
                    # is equally lost and equally suspect.
                    broken.extend(inflight.values())
                    inflight.clear()
                    self._discard_pool(pool, report, "broken (worker died)")
                    pool = None
                    for state in broken:
                        self._fail(report, state, "worker_lost", None, queue)
                    if self._over_rebuild_budget(report, queue):
                        return
                    continue
                if self.config.any_deadline and inflight:
                    queue, inflight, pool = self._watchdog(
                        report, queue, inflight, pool
                    )
                    if self._over_rebuild_budget(report, queue):
                        return
        except KeyboardInterrupt:
            # Completed jobs are already journalled (one flushed line
            # each); kill the workers so the CLI's exit-130 contract
            # is honoured promptly, leaving the grid resumable.
            if pool is not None:
                _terminate_workers(pool)
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
            logger.warning(
                "interrupted: %d job(s) journalled, %d in flight abandoned",
                len(report.outcomes),
                len(inflight),
            )
            raise
        finally:
            if self._journal is not None:
                self._journal.close()
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    # -- helpers ---------------------------------------------------------------

    def _resume_filter(self, report: "RunReport") -> "deque[_JobState]":
        """Drop jobs a resumed journal says not to retry."""
        if not (self.config.resume and self.config.journal_path is not None):
            return deque(self._states)
        prior = RunJournal.load(
            self.config.journal_path, schema_hash(), self._options_digest
        )
        kept: deque[_JobState] = deque()
        for state in self._states:
            entry = prior.get(state.digest)
            if entry is not None and entry.outcome in _SKIP_ON_RESUME:
                report.skipped_quarantined += 1
                report.outcomes[state.digest] = "skipped_quarantined"
                logger.info(
                    "resume: skipping job %s (journalled %s)",
                    state.digest[:12],
                    entry.outcome,
                )
            else:
                kept.append(state)
        return kept

    def _over_rebuild_budget(
        self, report: "RunReport", queue: "deque[_JobState]"
    ) -> bool:
        """Quarantine everything left once the rebuild budget is spent."""
        if self._rebuilds <= self._rebuild_budget:
            return False
        logger.error(
            "pool rebuild budget exhausted (%d); quarantining %d remaining job(s)",
            self._rebuild_budget,
            len(queue),
        )
        while queue:
            self._quarantine(
                report, queue.popleft(), "pool rebuild budget exhausted"
            )
        return True

    def _watchdog(
        self,
        report: "RunReport",
        queue: "deque[_JobState]",
        inflight: dict[Future[tuple[SimJob, SimulationResult, int]], _JobState],
        pool: ProcessPoolExecutor,
    ) -> tuple[
        "deque[_JobState]",
        dict[Future[tuple[SimJob, SimulationResult, int]], _JobState],
        ProcessPoolExecutor | None,
    ]:
        """Kill the pool when any running job exceeds its deadline.

        Each job's budget comes from :meth:`SupervisorConfig.deadline_for`
        — the run-wide ``job_timeout_s`` unless a per-job deadline was
        injected (the serving layer propagates client deadlines this
        way).  The expired job is charged a ``timeout`` attempt; other
        in-flight jobs are requeued without penalty — unlike a pool
        break, the culprit is known here.
        """
        now = perf_counter()
        expired: list[_JobState] = []
        survivors: list[_JobState] = []
        for future, state in inflight.items():
            if state.started_at is None and future.running():
                state.started_at = now
                continue
            limit = self.config.deadline_for(state.digest)
            if (
                limit is not None
                and state.started_at is not None
                and now - state.started_at > limit
            ):
                expired.append(state)
            else:
                survivors.append(state)
        if not expired:
            return queue, inflight, pool
        inflight = {}
        self._discard_pool(pool, report, "hung (job timeout)")
        for state in survivors:
            state.started_at = None
            queue.append(state)
        for state in expired:
            report.timed_out += 1
            _metrics.inc("runner.timeout")
            if self._tr_runner is not None:
                self._tr_runner.emit(
                    "runner",
                    "timeout",
                    job=state.digest,
                    attempt=len(state.attempts) + 1,
                    limit_s=self.config.deadline_for(state.digest),
                )
            self._fail(report, state, "timeout", None, queue)
        return queue, inflight, None
