"""Job planning: experiment ids -> the deduplicated simulation set.

Each planner mirrors the ``simulate`` calls its experiment runner
makes, so the pool pre-computes exactly what the runner will ask for;
a job the planner missed is not an error — the runner just simulates
it serially on first use.  Planning is cheap (no traces are built),
so the CLI always plans before running.

Several experiments share simulations (Table 6, Figures 4-6 and
Tables 11-13 all use the VR/RR grid), which is why planning goes
through a set: the union over ids is typically much smaller than the
sum of the parts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..experiments import ablation
from ..experiments.base import SIZE_PAIRS, SMALL_SIZE_PAIRS, simulation_key
from ..hierarchy.config import HierarchyKind
from ..trace.workloads import get_spec, workload_names


@dataclass(frozen=True)
class SimJob:
    """One simulation the pool can execute: the arguments of
    :func:`repro.experiments.base.simulate`, frozen and hashable."""

    trace: str
    scale: float
    l1: str
    l2: str
    kind: HierarchyKind
    split_l1: bool = False
    block_size: int = 16
    seed: int = 0
    config_overrides: tuple[tuple[str, object], ...] = ()

    def key(self) -> tuple[Any, ...]:
        """The memo/disk identity (see :func:`simulation_key`)."""
        return simulation_key(
            self.trace,
            self.scale,
            self.l1,
            self.l2,
            self.kind,
            self.split_l1,
            self.block_size,
            self.seed,
            self.config_overrides,
        )

    def cost(self) -> int:
        """Rough relative cost, for longest-job-first scheduling.

        Trace length dominates; the no-inclusion organisation pays
        roughly double (every bus transaction percolates to level 1).
        """
        refs = get_spec(self.trace, self.scale).total_refs
        if self.kind is HierarchyKind.RR_NO_INCLUSION:
            refs *= 2
        return refs


def _grid_jobs(
    scale: float,
    size_pairs: list[tuple[str, str]],
    kinds: tuple[HierarchyKind, ...],
    split_values: tuple[bool, ...] = (False,),
) -> list[SimJob]:
    return [
        SimJob(trace, scale, l1, l2, kind, split_l1=split)
        for trace in workload_names()
        for l1, l2 in size_pairs
        for kind in kinds
        for split in split_values
    ]


def _plan_table6(scale: float) -> list[SimJob]:
    return _grid_jobs(
        scale, SIZE_PAIRS, (HierarchyKind.VR, HierarchyKind.RR_INCLUSION)
    )


def _plan_table7(scale: float) -> list[SimJob]:
    return _grid_jobs(
        scale, SMALL_SIZE_PAIRS, (HierarchyKind.VR, HierarchyKind.RR_INCLUSION)
    )


def _plan_table8_10(scale: float) -> list[SimJob]:
    return _grid_jobs(
        scale, SIZE_PAIRS, (HierarchyKind.VR,), split_values=(True, False)
    )


def _plan_table11_13(scale: float) -> list[SimJob]:
    return _grid_jobs(
        scale,
        SIZE_PAIRS,
        (
            HierarchyKind.VR,
            HierarchyKind.RR_INCLUSION,
            HierarchyKind.RR_NO_INCLUSION,
        ),
    )


def _plan_ablation(scale: float) -> list[SimJob]:
    return [
        SimJob(trace, scale, "16K", "256K", kind, config_overrides=overrides)
        for trace, kind, overrides in ablation.simulation_cases(scale)
    ]


#: Experiment id -> planner.  Ids absent here (table1/2/3/5: trace
#: statistics and closed-form models, no machine simulations) plan to
#: nothing and run serially as before.
PLANNERS = {
    "table6": _plan_table6,
    "table7": _plan_table7,
    "figures": _plan_table6,  # figures reuse the Table 6 grid
    "table8_10": _plan_table8_10,
    "table11_13": _plan_table11_13,
    "ablation": _plan_ablation,
}


def plan_jobs(experiment_ids: list[str], scale: float) -> list[SimJob]:
    """The deduplicated jobs behind *experiment_ids*, costliest first.

    Longest-job-first keeps the pool's tail short: the biggest
    simulations start immediately instead of serialising at the end.
    """
    jobs: set[SimJob] = set()
    for experiment_id in experiment_ids:
        planner = PLANNERS.get(experiment_id)
        if planner is not None:
            jobs.update(planner(scale))
    return sorted(jobs, key=lambda job: (-job.cost(), repr(job)))
