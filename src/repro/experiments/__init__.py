"""Experiment runners: one per paper table/figure.

Use :func:`get_runner` (or the ``repro-experiment`` CLI) to regenerate
any artefact of the paper's evaluation section::

    from repro.experiments import get_runner
    result = get_runner("table6")(scale=0.05)
    print(result.render())
"""

from __future__ import annotations

from collections.abc import Callable

from ..common.errors import ConfigurationError
from . import (
    ablation,
    figures,
    table1,
    table2,
    table3,
    table5,
    table6,
    table8_10,
    table11_13,
)
from .base import (
    SIZE_PAIRS,
    SMALL_SIZE_PAIRS,
    ExperimentResult,
    RunOptions,
    clear_caches,
    default_scale,
    get_run_options,
    set_run_options,
    simulate,
    trace_records,
)

#: Registry of experiment ids to runner callables.
RUNNERS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table5": table5.run,
    "table6": table6.run,
    "table7": table6.run_small,
    "table8_10": table8_10.run,
    "table11_13": table11_13.run,
    "figures": figures.run,
    "ablation": ablation.run,
}


def experiment_ids() -> list[str]:
    """All experiment ids, in paper order."""
    return list(RUNNERS)


def get_runner(experiment_id: str) -> Callable[..., ExperimentResult]:
    """The runner for *experiment_id*, or raise ConfigurationError."""
    try:
        return RUNNERS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {experiment_ids()}"
        ) from None


__all__ = [
    "ExperimentResult",
    "RUNNERS",
    "RunOptions",
    "SIZE_PAIRS",
    "SMALL_SIZE_PAIRS",
    "clear_caches",
    "default_scale",
    "experiment_ids",
    "get_run_options",
    "get_runner",
    "set_run_options",
    "simulate",
    "trace_records",
]
