"""Tables 8-10: split I/D vs unified first-level caches.

For each trace and size pair, the V-R hierarchy runs once with a
unified level 1 and once split into equal-size I and D halves; hit
ratios are reported per reference class and overall, matching the
rows of the paper's Tables 8 (thor), 9 (pops) and 10 (abaqus).
"""

from __future__ import annotations

from ..hierarchy.config import HierarchyKind
from ..perf.tables import render, render_ratio
from ..trace.record import RefKind
from ..trace.workloads import workload_names
from .base import SIZE_PAIRS, ExperimentResult, default_scale, simulate


def split_vs_unified(trace: str, scale: float) -> dict[str, dict[str, float]]:
    """Per-class level-1 hit ratios for split and unified L1.

    Returns ``result["4K/64K"] = {"read_split": ..., "read_unified":
    ..., "write_split": ..., ..., "overall_unified": ...}``.
    """
    out: dict[str, dict[str, float]] = {}
    for l1, l2 in SIZE_PAIRS:
        cell: dict[str, float] = {}
        for split in (True, False):
            result = simulate(
                trace, scale, l1, l2, HierarchyKind.VR, split_l1=split
            )
            stats = result.aggregate()
            suffix = "split" if split else "unified"
            cell[f"read_{suffix}"] = stats.l1_hit_ratio(RefKind.READ)
            cell[f"write_{suffix}"] = stats.l1_hit_ratio(RefKind.WRITE)
            cell[f"instr_{suffix}"] = stats.l1_hit_ratio(RefKind.INSTR)
            cell[f"overall_{suffix}"] = stats.l1_hit_ratio()
        out[f"{l1}/{l2}"] = cell
    return out


_ROWS = (
    ("read", "data read"),
    ("write", "data write"),
    ("instr", "instruction"),
    ("overall", "overall"),
)


def _render_trace(trace: str, cells: dict[str, dict[str, float]]) -> str:
    headers = [trace] + [pair for pair in cells]
    rows = []
    for key, label in _ROWS:
        for suffix in ("split", "unified"):
            row: list[object] = [f"{label} {suffix}"]
            for pair in cells:
                row.append(render_ratio(cells[pair][f"{key}_{suffix}"]))
            rows.append(row)
    return render(headers, rows)


def run(scale: float | None = None) -> ExperimentResult:
    """Tables 8-10 for all three traces."""
    scale = default_scale() if scale is None else scale
    data = {}
    sections = []
    table_number = 8
    for trace in workload_names():
        cells = split_vs_unified(trace, scale)
        data[trace] = cells
        sections.append(
            f"Table {table_number}: hit ratios of level 1 caches "
            f"for the {trace} trace\n{_render_trace(trace, cells)}"
        )
        table_number += 1
    return ExperimentResult(
        experiment_id="table8_10",
        title="Split I/D vs unified level-1 hit ratios",
        text="\n\n".join(sections),
        data=data,
        scale=scale,
    )
