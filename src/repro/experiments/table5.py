"""Table 5: characteristics of the (surrogate) traces."""

from __future__ import annotations

from ..perf.tables import render
from ..trace.analyze import summarize
from ..trace.workloads import workload_names
from .base import ExperimentResult, default_scale, trace_records


def run(scale: float | None = None) -> ExperimentResult:
    """Characterise all three surrogate traces (paper Table 5 columns)."""
    scale = default_scale() if scale is None else scale
    rows = []
    data = {}
    for name in workload_names():
        records, _ = trace_records(name, scale)
        summary = summarize(records, name)
        rows.append(
            [
                name,
                summary.n_cpus,
                f"{summary.total_refs // 1000}k",
                f"{summary.instr_count // 1000}k",
                f"{summary.data_read // 1000}k",
                f"{summary.data_write // 1000}k",
                summary.context_switches,
            ]
        )
        data[name] = {
            "n_cpus": summary.n_cpus,
            "total_refs": summary.total_refs,
            "instr_count": summary.instr_count,
            "data_read": summary.data_read,
            "data_write": summary.data_write,
            "context_switches": summary.context_switches,
        }
    table = render(
        [
            "trace",
            "num. of cpus",
            "total refs",
            "instr count",
            "data read",
            "data write",
            "context switch count",
        ],
        rows,
        title="Table 5: characteristics of traces",
    )
    return ExperimentResult(
        experiment_id="table5",
        title="Characteristics of traces",
        text=table,
        data=data,
        scale=scale,
    )
