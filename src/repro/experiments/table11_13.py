"""Tables 11-13: coherence messages percolating to the level-1 cache.

For each trace, size pair and CPU, the number of coherence messages
the level-2 cache sent down to level 1 is reported for the three
organisations: V-R, R-R with inclusion, and R-R without inclusion
(which must forward every bus coherence transaction).
"""

from __future__ import annotations

from ..hierarchy.config import HierarchyKind
from ..obs.metrics import COHERENCE_TO_L1_METRICS
from ..perf.tables import render
from ..trace.workloads import get_spec, workload_names
from .base import SIZE_PAIRS, ExperimentResult, default_scale, simulate

_KINDS = (
    (HierarchyKind.VR, "VR"),
    (HierarchyKind.RR_INCLUSION, "RR(incl)"),
    (HierarchyKind.RR_NO_INCLUSION, "RR(no incl)"),
)


def coherence_messages(trace: str, scale: float) -> dict[str, dict[str, list[int]]]:
    """Per-CPU coherence-message counts to level 1.

    Returns ``result["4K/64K"]["VR"] = [cpu0, cpu1, ...]``.
    """
    out: dict[str, dict[str, list[int]]] = {}
    for l1, l2 in SIZE_PAIRS:
        cell: dict[str, list[int]] = {}
        for kind, label in _KINDS:
            result = simulate(trace, scale, l1, l2, kind)
            cell[label] = [
                result.metrics(cpu).total(*COHERENCE_TO_L1_METRICS)
                for cpu in range(len(result.per_cpu))
            ]
        out[f"{l1}/{l2}"] = cell
    return out


def _render_trace(trace: str, cells: dict[str, dict[str, list[int]]]) -> str:
    n_cpus = len(next(iter(cells.values()))["VR"])
    headers = ["cpu"] + [
        f"{pair} {label}" for pair in cells for _, label in _KINDS
    ]
    rows = []
    for cpu in range(n_cpus):
        row: list[object] = [cpu]
        for pair in cells:
            for _, label in _KINDS:
                row.append(cells[pair][label][cpu])
        rows.append(row)
    return render(headers, rows)


def run(scale: float | None = None) -> ExperimentResult:
    """Tables 11 (pops), 12 (thor) and 13 (abaqus)."""
    scale = default_scale() if scale is None else scale
    data = {}
    sections = []
    # The paper numbers these pops=11, thor=12, abaqus=13.
    order = [("pops", 11), ("thor", 12), ("abaqus", 13)]
    assert {name for name, _ in order} == set(workload_names())
    for trace, number in order:
        cells = coherence_messages(trace, scale)
        data[trace] = cells
        n_cpus = get_spec(trace, scale).n_cpus
        sections.append(
            f"Table {number}: coherence messages to the first-level cache "
            f"({trace}, {n_cpus} cpus)\n{_render_trace(trace, cells)}"
        )
    return ExperimentResult(
        experiment_id="table11_13",
        title="Coherence messages to the first-level cache",
        text="\n\n".join(sections),
        data=data,
        scale=scale,
    )
