"""Shared infrastructure for the per-table experiment runners.

Several paper tables draw on the same simulations (Table 6, Figures
4–6 and Tables 11–13 all use the VR/RR runs over three size pairs),
so results are memoised per process, keyed by every parameter that
affects them.  Generated traces are memoised too (below a size cap)
because one trace feeds many configurations.

The default trace scale is intentionally far below the paper's 3.3M
references so that the whole suite runs in minutes of pure Python;
set the ``REPRO_SCALE`` environment variable (or pass ``scale=``) to
raise it — 1.0 reproduces the full trace lengths.
"""

from __future__ import annotations

import os
import re
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from time import perf_counter

from ..faults import (
    FaultConfig,
    FaultInjector,
    FaultKind,
    FaultyBus,
    InvariantGuard,
    run_checkpointed,
)
from ..hierarchy.config import HierarchyConfig, HierarchyKind
from ..mmu.address_space import MemoryLayout
from ..obs import get_tracer
from ..obs.recorder import get_recorder
from ..system.multiprocessor import Multiprocessor, SimulationResult
from ..trace.record import TraceRecord
from ..trace.workloads import get_spec, make_workload

#: The paper's three main size pairs (L1/L2), Table 6.
SIZE_PAIRS: list[tuple[str, str]] = [("4K", "64K"), ("8K", "128K"), ("16K", "256K")]
#: The small-first-level pairs of Table 7.
SMALL_SIZE_PAIRS: list[tuple[str, str]] = [
    (".5K", "64K"),
    ("1K", "128K"),
    ("2K", "256K"),
]

#: Traces above this many references are regenerated instead of cached.
_TRACE_CACHE_LIMIT = 600_000

#: Distinct (trace, scale) record lists kept in memory at once.  A run
#: walks traces one at a time, each feeding many configurations, so a
#: handful of slots gives full reuse while bounding resident memory.
_TRACE_CACHE_ENTRIES = 4


def default_scale() -> float:
    """The trace scale experiments run at unless overridden."""
    return float(os.environ.get("REPRO_SCALE", "0.1"))


@dataclass
class ExperimentResult:
    """What one experiment runner returns.

    Attributes:
        experiment_id: paper artefact id, e.g. ``"table6"``.
        title: the paper's caption.
        text: rendered tables/series, ready to print.
        data: raw numbers keyed by meaningful names, consumed by the
            test suite and by EXPERIMENTS.md generation.
        scale: trace scale the experiment ran at.
    """

    experiment_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)
    scale: float = 1.0

    def render(self) -> str:
        """The printable report."""
        header = f"== {self.experiment_id}: {self.title} (scale={self.scale:g}) =="
        return f"{header}\n{self.text}"


@dataclass(frozen=True)
class RunOptions:
    """Cross-cutting options applied to every simulation of a run.

    Set from the CLI (``--check-every``, ``--guard-policy``,
    ``--checkpoint`` …) via :func:`set_run_options`; the defaults are
    a plain unguarded run, so existing callers are unaffected.

    Attributes:
        check_every: run the invariant guard every N accesses
            (None disables the guard).
        guard_policy: "fail-fast", "repair" or "log".
        fault_rate: per-access probability for each metadata fault
            kind (0 disables injection).
        fault_seed: seed of the fault injector's RNG.
        checkpoint_dir: directory for checkpoint files; enables
            resumable replay (None disables it).
        checkpoint_every: trace records replayed between checkpoints.
        cache_dir: root of the persistent result cache; None disables
            disk caching (the in-process memo still applies).
        engine: replay core — "object" (the reference hierarchy) or
            "soa" (the struct-of-arrays core, DESIGN §13).
        stream: replay synthetic traces through the bounded-chunk
            stream layer (DESIGN §14) instead of materialising them.
        trace_provenance: ``(format, version, digest)`` of an external
            trace feeding the run; :func:`simulate` fills it in for
            ``file:`` traces so cached results are pinned to the exact
            file bytes they were computed from.
    """

    check_every: int | None = None
    guard_policy: str = "fail-fast"
    fault_rate: float = 0.0
    fault_seed: int = 0
    checkpoint_dir: str | None = None
    checkpoint_every: int = 50_000
    cache_dir: str | None = None
    engine: str = "object"
    stream: bool = False
    trace_provenance: tuple | None = None

    def result_key_parts(self) -> tuple:
        """The option fields that can affect simulation *results*.

        Used for the disk-cache key: ``cache_dir`` (where results go)
        and the checkpoint directory path (not whether checkpointing
        is on) are excluded, so runs differing only in bookkeeping
        locations share cached results.
        """
        return (
            self.check_every,
            self.guard_policy,
            self.fault_rate,
            self.fault_seed,
            self.checkpoint_dir is not None,
            self.checkpoint_every,
            # The engines are bit-identical by construction, but keyed
            # apart so a cached object-engine result can never mask an
            # SoA regression (the differential harness depends on both
            # actually running).
            self.engine,
            # Same reasoning for streamed replay: provably identical
            # to in-memory replay, but keyed apart so the streaming
            # equivalence checks always exercise the stream path.
            self.stream,
            self.trace_provenance,
        )


_run_options = RunOptions()


def set_run_options(options: RunOptions) -> RunOptions:
    """Install *options* for subsequent simulations; returns the old ones."""
    global _run_options
    previous = _run_options
    _run_options = options
    return previous


def get_run_options() -> RunOptions:
    """The options currently applied to simulations."""
    return _run_options


#: Metadata fault kinds --fault-rate spreads its probability over.
_INJECTED_KINDS = (
    FaultKind.FLIP_INCLUSION,
    FaultKind.FLIP_VDIRTY,
    FaultKind.FLIP_L1_DIRTY,
    FaultKind.CORRUPT_V_POINTER,
    FaultKind.CORRUPT_TLB,
)


_trace_cache: OrderedDict[
    tuple[str, float], tuple[list[TraceRecord], MemoryLayout]
] = OrderedDict()
_sim_cache: dict[tuple, SimulationResult] = {}

#: Simulations actually replayed (not served from memo or disk) since
#: the last :func:`clear_caches`.  The runner's warm-cache tests and
#: the pool's run report both read this.
_executed_simulations = 0


def executed_simulations() -> int:
    """How many simulations were replayed (cache misses) so far."""
    return _executed_simulations


def clear_caches() -> None:
    """Drop memoised traces and simulations (tests use this).

    When the installed options name a disk cache, its entries are
    removed too, so "clear" means the next simulation really runs.
    """
    global _executed_simulations
    _trace_cache.clear()
    _sim_cache.clear()
    _executed_simulations = 0
    get_recorder().clear()
    if _run_options.cache_dir is not None:
        from ..runner.disk_cache import get_cache

        get_cache(_run_options.cache_dir).clear()


def trace_records(
    name: str, scale: float
) -> tuple[list[TraceRecord], MemoryLayout]:
    """The surrogate trace *name* at *scale*, with its address layout.

    Cached traces are kept in a small LRU (``_TRACE_CACHE_ENTRIES``
    slots, each at most ``_TRACE_CACHE_LIMIT`` references) so a long
    multi-trace run cannot grow memory without bound.
    """
    key = (name, scale)
    cached = _trace_cache.get(key)
    if cached is not None:
        _trace_cache.move_to_end(key)
        return cached
    workload = make_workload(name, scale)
    records = workload.records()
    result = (records, workload.layout)
    if get_spec(name, scale).total_refs <= _TRACE_CACHE_LIMIT:
        _trace_cache[key] = result
        while len(_trace_cache) > _TRACE_CACHE_ENTRIES:
            _trace_cache.popitem(last=False)
    return result


def trace_stream(name: str, scale: float):
    """A bounded-memory trace stream for *name*, with layout and CPUs.

    ``file:<path>`` names open an external trace file or directory
    (format sniffed by :func:`repro.trace.formats.open_trace`) over a
    demand-mapped layout; any other name streams the synthetic
    workload at *scale* without materialising it.  Returns
    ``(stream, layout, n_cpus)``.
    """
    from ..mmu.address_space import DemandLayout
    from ..trace.formats import open_trace
    from ..trace.stream import SyntheticTraceStream

    if name.startswith("file:"):
        stream = open_trace(name[len("file:") :])
        return stream, DemandLayout(), stream.n_cpus or 2
    spec = get_spec(name, scale)
    synthetic = SyntheticTraceStream(spec)
    return synthetic, synthetic.layout, spec.n_cpus


def simulation_key(
    trace_name: str,
    scale: float,
    l1_size: str,
    l2_size: str,
    kind: HierarchyKind,
    split_l1: bool = False,
    block_size: str | int = 16,
    seed: int = 0,
    config_overrides: tuple[tuple[str, object], ...] = (),
) -> tuple:
    """The identity of one simulation, minus the run options.

    The planner, pool and memo all key on this; appending the
    installed options' identity gives the memo key, and appending
    their :meth:`RunOptions.result_key_parts` gives the disk key.
    """
    return (
        trace_name,
        scale,
        l1_size,
        l2_size,
        kind,
        split_l1,
        block_size,
        seed,
        config_overrides,
    )


def disk_key(key: tuple, options: RunOptions) -> tuple:
    """The persistent-cache key for *key* under *options*."""
    return key + options.result_key_parts()


def memo_get(key: tuple) -> SimulationResult | None:
    """The memoised result for *key* under the installed options."""
    return _sim_cache.get(key + (_run_options,))


def seed_memo(key: tuple, result: SimulationResult) -> None:
    """Install a precomputed result so :func:`simulate` reuses it.

    The pool calls this with worker-produced results; the key must
    come from :func:`simulation_key` under the same installed options.
    """
    cache_key = key + (_run_options,)
    _sim_cache[cache_key] = result
    get_recorder().record(cache_key, result)


def forget_memo(key: tuple) -> None:
    """Drop *key*'s memoised result and its recorder entry (if any).

    The serving layer evicts each result once its response is
    delivered: the disk cache still answers repeats, while the
    in-process memo and recorder stay bounded over a process that
    serves requests indefinitely.
    """
    cache_key = key + (_run_options,)
    _sim_cache.pop(cache_key, None)
    get_recorder().forget(cache_key)


def simulate(
    trace_name: str,
    scale: float,
    l1_size: str,
    l2_size: str,
    kind: HierarchyKind,
    split_l1: bool = False,
    block_size: str | int = 16,
    seed: int = 0,
    config_overrides: tuple[tuple[str, object], ...] = (),
) -> SimulationResult:
    """Run (or reuse) one full-machine simulation.

    Honours the installed :class:`RunOptions`: an invariant guard
    every ``check_every`` accesses, seeded metadata fault injection,
    checkpointed (resumable) replay, and — when ``cache_dir`` is set —
    a persistent result cache fronted by the in-process memo.  The
    memo key includes the options, so guarded and unguarded results
    never mix.

    *config_overrides* is a sorted tuple of ``(field, value)`` pairs
    applied on top of :meth:`HierarchyConfig.sized` — the ablation
    studies use it to vary associativity, write policy and buffering
    while still sharing traces and the caches.
    """
    global _executed_simulations
    options = _run_options
    streaming = options.stream or trace_name.startswith("file:")
    stream = None
    stream_layout = None
    stream_cpus = 0
    if streaming:
        stream, stream_layout, stream_cpus = trace_stream(trace_name, scale)
        # Pin the cached result to the exact trace bytes/spec it was
        # computed from, so one file can never answer for another.
        provenance = stream.provenance()
        if provenance != options.trace_provenance:
            options = replace(options, trace_provenance=provenance)
    key = simulation_key(
        trace_name,
        scale,
        l1_size,
        l2_size,
        kind,
        split_l1,
        block_size,
        seed,
        config_overrides,
    )
    cache_key = key + (options,)
    cached = _sim_cache.get(cache_key)
    if cached is not None:
        get_recorder().record(cache_key, cached)
        return cached
    disk = None
    # With a tracer attached, the disk cache is bypassed entirely: the
    # event stream only exists when the simulation actually replays, so
    # a disk hit would leave trace counts short of the metrics counts
    # (and storing a traced run would be redundant with an untraced one).
    if options.cache_dir is not None and get_tracer() is None:
        from ..runner.disk_cache import get_cache

        disk = get_cache(options.cache_dir)
        stored = disk.load(disk_key(key, options))
        if stored is not None:
            _sim_cache[cache_key] = stored
            get_recorder().record(cache_key, stored)
            return stored
    gen_started = perf_counter()
    if streaming:
        records: object = stream
        layout = stream_layout
        n_cpus = stream_cpus
    else:
        records, layout = trace_records(trace_name, scale)
        n_cpus = get_spec(trace_name, scale).n_cpus
    trace_gen_s = perf_counter() - gen_started
    config = HierarchyConfig.sized(
        l1_size,
        l2_size,
        block_size=block_size,
        kind=kind,
        split_l1=split_l1,
        **dict(config_overrides),
    )

    injector = None
    bus = None
    if options.fault_rate > 0.0:
        injector = FaultInjector(
            FaultConfig(
                probabilities={
                    k: options.fault_rate for k in _INJECTED_KINDS
                },
                seed=options.fault_seed,
            )
        )
        bus = FaultyBus(injector)
    guard = None
    if options.check_every is not None:
        guard = InvariantGuard(options.guard_policy, options.check_every)

    machine = Multiprocessor(
        layout, n_cpus, config, seed=seed, bus=bus, engine=options.engine
    )
    if options.checkpoint_dir is not None:
        os.makedirs(options.checkpoint_dir, exist_ok=True)
        stem = "-".join(
            str(part.value if isinstance(part, HierarchyKind) else part)
            for part in key
        )
        # "file:/path/to.rtb" trace names carry path separators that
        # must not leak into the checkpoint file name.
        stem = re.sub(r"[^A-Za-z0-9._-]+", "_", stem)
        path = os.path.join(options.checkpoint_dir, f"{stem}.ckpt")
        result = run_checkpointed(
            machine,
            records,
            path,
            key=tuple(repr(part) for part in key),
            chunk=options.checkpoint_every,
            injector=injector,
            guard=guard,
        )
    else:
        result = machine.run(records, injector=injector, guard=guard)
    result.timings["trace_gen_s"] = trace_gen_s
    _executed_simulations += 1
    _sim_cache[cache_key] = result
    get_recorder().record(cache_key, result)
    if disk is not None:
        disk.store(disk_key(key, options), result)
    return result
