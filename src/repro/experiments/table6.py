"""Tables 6 and 7: hit ratios of V-R vs R-R two-level hierarchies.

For every trace and size pair, both organisations are simulated with
direct-mapped caches at both levels (the paper's setup) and the four
ratios h1VR, h1RR, h2VR, h2RR are reported.  Table 7 repeats the
comparison with small first-level caches.
"""

from __future__ import annotations

from ..hierarchy.config import HierarchyKind
from ..perf.tables import render, render_ratio
from ..trace.workloads import workload_names
from .base import (
    SIZE_PAIRS,
    SMALL_SIZE_PAIRS,
    ExperimentResult,
    default_scale,
    simulate,
)


def hit_ratio_grid(
    scale: float, size_pairs: list[tuple[str, str]]
) -> dict[str, dict[str, dict[str, float]]]:
    """h1/h2 for VR and RR(incl) per trace and size pair.

    Returns ``grid[trace]["4K/64K"] = {"h1_vr": ..., "h1_rr": ...,
    "h2_vr": ..., "h2_rr": ...}``.
    """
    grid: dict[str, dict[str, dict[str, float]]] = {}
    for trace in workload_names():
        grid[trace] = {}
        for l1, l2 in size_pairs:
            vr = simulate(trace, scale, l1, l2, HierarchyKind.VR)
            rr = simulate(trace, scale, l1, l2, HierarchyKind.RR_INCLUSION)
            grid[trace][f"{l1}/{l2}"] = {
                "h1_vr": vr.h1,
                "h1_rr": rr.h1,
                "h2_vr": vr.h2,
                "h2_rr": rr.h2,
            }
    return grid


def _render_grid(
    grid: dict[str, dict[str, dict[str, float]]],
    size_pairs: list[tuple[str, str]],
    title: str,
) -> str:
    # The paper lays traces side by side; rows are the four ratios.
    headers = ["ratio"]
    for trace in grid:
        for l1, l2 in size_pairs:
            headers.append(f"{trace} {l1}")
    rows = []
    for key, label in (
        ("h1_vr", "h1VR"),
        ("h1_rr", "h1RR"),
        ("h2_vr", "h2VR"),
        ("h2_rr", "h2RR"),
    ):
        row: list[object] = [label]
        for trace in grid:
            for l1, l2 in size_pairs:
                row.append(render_ratio(grid[trace][f"{l1}/{l2}"][key]))
        rows.append(row)
    return render(headers, rows, title=title)


def run(scale: float | None = None) -> ExperimentResult:
    """Table 6: the three main size pairs."""
    scale = default_scale() if scale is None else scale
    grid = hit_ratio_grid(scale, SIZE_PAIRS)
    return ExperimentResult(
        experiment_id="table6",
        title="Hit ratios (V-R vs R-R)",
        text=_render_grid(grid, SIZE_PAIRS, "Table 6: hit ratios"),
        data=grid,
        scale=scale,
    )


def run_small(scale: float | None = None) -> ExperimentResult:
    """Table 7: small first-level caches (.5K to 2K)."""
    scale = default_scale() if scale is None else scale
    grid = hit_ratio_grid(scale, SMALL_SIZE_PAIRS)
    return ExperimentResult(
        experiment_id="table7",
        title="Hit ratios for small first-level caches",
        text=_render_grid(
            grid, SMALL_SIZE_PAIRS, "Table 7: hit ratios for small L1"
        ),
        data=grid,
        scale=scale,
    )
