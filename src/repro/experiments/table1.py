"""Table 1: number of writes due to procedure calls (pops trace)."""

from __future__ import annotations

from ..perf.tables import render
from ..trace.analyze import profile_call_writes
from .base import ExperimentResult, default_scale, trace_records


def run(scale: float | None = None) -> ExperimentResult:
    """Profile call-induced write bursts in the pops surrogate."""
    scale = default_scale() if scale is None else scale
    records, _ = trace_records("pops", scale)
    profile = profile_call_writes(records)

    rows = [list(row) for row in profile.rows(max_burst=16)]
    table = render(
        ["no. of wr. per call", "count", "total writes"],
        rows,
        title="Table 1: writes due to procedure calls (pops)",
    )
    call_fraction = (
        profile.call_writes / profile.total_writes if profile.total_writes else 0.0
    )
    footer = (
        f"writes due to procedure calls: {profile.call_writes}\n"
        f"total writes:                  {profile.total_writes}\n"
        f"fraction due to calls:         {call_fraction:.2f} (paper: ~0.30)"
    )
    return ExperimentResult(
        experiment_id="table1",
        title="Number of writes due to procedure calls",
        text=f"{table}\n{footer}",
        data={
            "per_call": dict(profile.per_call),
            "call_writes": profile.call_writes,
            "total_writes": profile.total_writes,
            "call_fraction": call_fraction,
        },
        scale=scale,
    )
