"""Table 2: inter-write intervals under a write-through level-1 cache.

The paper feeds a 411,237-reference snapshot of pops through a 16K
direct-mapped cache with 16-byte blocks and write-through; the short
intervals between successive downstream writes motivate multiple
write buffers.
"""

from __future__ import annotations

from ..cache.config import CacheConfig
from ..coherence.protocol import WritePolicy
from ..hierarchy.single import SingleLevelCache
from ..perf.tables import render
from ..trace.record import RefKind
from .base import ExperimentResult, default_scale, trace_records

#: The paper's snapshot length, scaled with the trace.
PAPER_SNAPSHOT = 411_237


def run(scale: float | None = None, cpu: int = 0) -> ExperimentResult:
    """Replay a pops snapshot (one CPU) through a write-through cache."""
    scale = default_scale() if scale is None else scale
    records, _ = trace_records("pops", scale)
    snapshot_len = max(1000, int(PAPER_SNAPSHOT * scale))

    cache = SingleLevelCache(
        CacheConfig.create("16K", 16), write_policy=WritePolicy.WRITE_THROUGH
    )
    fed = feed_snapshot(cache, records, cpu, snapshot_len)

    rows = [list(row) for row in cache.write_intervals.rows()]
    table = render(
        ["interval", "count"],
        rows,
        title=(
            f"Table 2: inter-write intervals "
            f"(write-through, snapshot of {fed} references)"
        ),
    )
    short = sum(
        cache.write_intervals.count(i) for i in range(1, 10)
    )
    footer = (
        f"writes <10 refs apart: {short}  "
        f"(short intervals demand several write buffers)"
    )
    return ExperimentResult(
        experiment_id="table2",
        title="Inter-write intervals (write-through)",
        text=f"{table}\n{footer}",
        data={
            "intervals": dict(cache.write_intervals.rows()),
            "snapshot_refs": fed,
            "writes": cache.stats["writes"],
            "hit_ratio": cache.hit_ratio,
        },
        scale=scale,
    )


def feed_snapshot(
    cache: SingleLevelCache,
    records,
    cpu: int,
    snapshot_len: int,
    switch_aware: bool = False,
) -> int:
    """Feed one CPU's memory references (and optionally its context
    switches) into *cache*; returns references fed.  Shared with the
    Table 3 runner."""
    fed = 0
    for record in records:
        if record.cpu != cpu:
            continue
        if record.kind is RefKind.CSWITCH:
            if switch_aware:
                cache.context_switch()
            continue
        if not record.is_memory:
            continue
        cache.access(record.vaddr, record.kind)
        fed += 1
        if fed >= snapshot_len:
            break
    return fed
