"""Table 3: write-back intervals with the swapped-valid scheme.

The same pops snapshot as Table 2, but through a write-back cache
using the paper's lazy swapped write-back: a context switch demotes
blocks to swapped-valid, and each dirty one is written back only when
its slot is reused.  The resulting swapped write-backs are far apart,
so one write-back buffer suffices — contrast with the eager-flush
alternative, which must write back the whole dirty population at the
switch.
"""

from __future__ import annotations

from ..cache.config import CacheConfig
from ..coherence.protocol import WritePolicy
from ..hierarchy.single import SingleLevelCache
from ..perf.tables import render
from ..trace.record import RefKind, TraceRecord
from .base import ExperimentResult, default_scale, trace_records
from .table2 import PAPER_SNAPSHOT, feed_snapshot


def _with_midpoint_switch(records, cpu: int, snapshot_len: int):
    """Yield *records*, injecting one context switch halfway through
    the snapshot if the trace slice contains none.

    The paper's 411k-reference pops snapshot contains a context
    switch (pops averages one per ~470k references); small-scale
    surrogate slices may not, and without one there are no swapped
    write-backs to measure.
    """
    fed = 0
    injected = False
    saw_switch = False
    for record in records:
        if record.cpu == cpu:
            if record.kind is RefKind.CSWITCH:
                saw_switch = True
            elif record.is_memory:
                fed += 1
                if not saw_switch and not injected and fed == snapshot_len // 2:
                    injected = True
                    yield TraceRecord(cpu, record.pid, RefKind.CSWITCH)
        yield record


def run(scale: float | None = None, cpu: int = 0) -> ExperimentResult:
    """Measure swapped write-back spacing (lazy) vs eager flush cost."""
    scale = default_scale() if scale is None else scale
    records, _ = trace_records("pops", scale)
    snapshot_len = max(1000, int(PAPER_SNAPSHOT * scale))
    config = CacheConfig.create("16K", 16)

    lazy = SingleLevelCache(
        config, write_policy=WritePolicy.WRITE_BACK, lazy_swap=True
    )
    fed = feed_snapshot(
        lazy,
        _with_midpoint_switch(records, cpu, snapshot_len),
        cpu,
        snapshot_len,
        switch_aware=True,
    )

    eager = SingleLevelCache(
        config, write_policy=WritePolicy.WRITE_BACK, lazy_swap=False
    )
    feed_snapshot(
        eager,
        _with_midpoint_switch(records, cpu, snapshot_len),
        cpu,
        snapshot_len,
        switch_aware=True,
    )

    rows = [list(row) for row in lazy.swapped_write_intervals.rows()]
    table = render(
        ["interval", "count"],
        rows,
        title=(
            "Table 3: write interval with write-back and swapped "
            f"write-back (snapshot of {fed} references)"
        ),
    )
    footer = (
        f"swapped write-backs (lazy, spread over time): "
        f"{lazy.stats['swapped_downstream_writes']}\n"
        f"write-backs at switch time without the scheme (eager): "
        f"{eager.stats['switch_writebacks']} (paper: 'over a hundred')"
    )
    return ExperimentResult(
        experiment_id="table3",
        title="Write intervals with swapped write-back",
        text=f"{table}\n{footer}",
        data={
            "intervals": dict(lazy.swapped_write_intervals.rows()),
            "swapped_writebacks": lazy.stats["swapped_downstream_writes"],
            "eager_switch_writebacks": eager.stats["switch_writebacks"],
            "snapshot_refs": fed,
        },
        scale=scale,
    )
