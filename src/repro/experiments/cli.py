"""Command-line entry point: regenerate paper tables and figures.

Examples::

    repro-experiment table6
    repro-experiment figures --scale 0.1
    repro-all --jobs 8                                   # everything, parallel
    repro-experiment all --jobs 4 --profile              # with a profile

Simulations fan out across ``--jobs`` worker processes (default: all
cores) and results persist in an on-disk cache, so a re-run replays
only what changed; ``--no-cache`` forces everything to recompute.

Robustness options::

    repro-experiment table6 --check-every 100           # invariant guard
    repro-experiment table6 --fault-rate 1e-3 \\
        --check-every 100 --guard-policy repair          # inject + repair
    repro-experiment all --checkpoint /tmp/ckpt          # resumable replay

An interrupted run (Ctrl-C) exits with code 130 after flushing the
results of every experiment that completed; re-running with the same
``--checkpoint`` directory resumes mid-trace.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from ..common.errors import ConfigurationError
from ..obs import (
    EventTracer,
    RunManifest,
    configure,
    get_logger,
    get_recorder,
    parse_categories,
    set_tracer,
)
from ..obs.log import LEVELS
from ..obs.tracing import CATEGORIES
from . import (
    RunOptions,
    default_scale,
    experiment_ids,
    get_runner,
    set_run_options,
)

logger = get_logger("cli")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Regenerate tables and figures of 'Organization and "
            "Performance of a Two-Level Virtual-Real Cache Hierarchy' "
            "(Wang, Baer & Levy, ISCA 1989) from surrogate traces."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=experiment_ids() + ["all"],
        help="which artefact to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help=(
            "trace scale relative to the paper's trace lengths "
            f"(default {default_scale()} or $REPRO_SCALE; 1.0 = full)"
        ),
    )
    runner = parser.add_argument_group("execution")
    runner.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="worker processes for simulations (default: all cores)",
    )
    runner.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "root of the persistent result cache "
            "(default: benchmarks/results/cache or $REPRO_CACHE_DIR)"
        ),
    )
    runner.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the persistent result cache",
    )
    runner.add_argument(
        "--profile",
        action="store_true",
        help="profile the run and print the hottest functions",
    )
    guard = parser.add_argument_group("robustness")
    guard.add_argument(
        "--check-every",
        type=int,
        metavar="N",
        default=None,
        help="run the invariant guard every N accesses (off by default)",
    )
    guard.add_argument(
        "--guard-policy",
        choices=["fail-fast", "repair", "log"],
        default="fail-fast",
        help="what the guard does on a violation (default: fail-fast)",
    )
    guard.add_argument(
        "--fault-rate",
        type=float,
        metavar="P",
        default=0.0,
        help="inject each metadata fault kind with per-access probability P",
    )
    guard.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the fault injector's RNG (default: 0)",
    )
    guard.add_argument(
        "--checkpoint",
        metavar="DIR",
        default=None,
        help="checkpoint simulations into DIR and resume from it",
    )
    guard.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="N",
        default=50_000,
        help="trace records between checkpoints (default: 50000)",
    )
    obs = parser.add_argument_group("observability")
    obs.add_argument(
        "--trace",
        nargs="?",
        const="all",
        default=None,
        metavar="CATS",
        help=(
            "emit structured trace events to a JSONL file; CATS is a "
            f"comma list from {{{','.join(sorted(CATEGORIES))}}} "
            "(bare --trace = all). Forces --jobs 1 and bypasses the "
            "result cache so every event is really generated"
        ),
    )
    obs.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help=(
            "trace JSONL destination (default: derived from "
            "--metrics-out, else repro-trace.jsonl)"
        ),
    )
    obs.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help=(
            "write the run's merged metrics snapshot (JSON) here, "
            "plus a run manifest next to it"
        ),
    )
    obs.add_argument(
        "--log-level",
        choices=list(LEVELS),
        default="info",
        help="diagnostic verbosity on stderr (default: info)",
    )
    return parser


def _precompute(ids: list[str], scale: float, jobs: int) -> None:
    """Plan and pool-execute the simulations behind *ids*."""
    from ..runner import plan_jobs, run_jobs

    planned = plan_jobs(ids, scale)
    if not planned:
        return
    report = run_jobs(planned, jobs)
    logger.info("runner: %s", report.describe())


def _trace_destination(args: argparse.Namespace) -> Path:
    """Where the trace JSONL goes for this invocation."""
    if args.trace_out is not None:
        return Path(args.trace_out)
    if args.metrics_out is not None:
        return Path(args.metrics_out).with_suffix(".trace.jsonl")
    return Path("repro-trace.jsonl")


def _write_outputs(
    args: argparse.Namespace,
    ids: list[str],
    scale: float,
    options: RunOptions,
    timings: dict[str, float],
    tracer: EventTracer | None,
    trace_path: Path | None,
) -> None:
    """Write the metrics snapshot and the run manifest (if requested)."""
    recorder = get_recorder()
    snapshot = recorder.registry().snapshot()
    manifest_path: Path | None = None
    if args.metrics_out is not None:
        metrics_path = Path(args.metrics_out)
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        logger.info("metrics snapshot: %s", metrics_path)
        manifest_path = metrics_path.with_suffix(".manifest.json")
    elif trace_path is not None:
        manifest_path = trace_path.with_suffix(".manifest.json")
    if manifest_path is None:
        return
    trace_info: dict = {}
    if tracer is not None:
        trace_info = {
            "path": str(trace_path),
            "categories": sorted(tracer.categories),
            "events": tracer.counts.as_dict(),
            "emitted": tracer.emitted,
        }
    manifest = RunManifest.create(
        ids,
        scale,
        options=options,
        timings_s=timings,
        metrics=snapshot,
        trace=trace_info,
        simulations=len(recorder),
    )
    manifest.write(manifest_path)
    logger.info("run manifest: %s", manifest_path)


def main(argv: list[str] | None = None) -> int:
    """Run the CLI; returns a process exit code."""
    args = build_parser().parse_args(argv)
    configure(args.log_level)
    if args.check_every is not None and args.check_every < 1:
        logger.error("--check-every must be >= 1")
        return 2
    if args.checkpoint_every < 1:
        logger.error("--checkpoint-every must be >= 1")
        return 2
    if not 0.0 <= args.fault_rate <= 1.0:
        logger.error("--fault-rate must be a probability in [0, 1]")
        return 2
    if args.jobs is not None and args.jobs < 1:
        logger.error("--jobs must be >= 1")
        return 2
    tracer = None
    trace_path: Path | None = None
    if args.trace is not None:
        try:
            categories = parse_categories(args.trace)
        except ConfigurationError as exc:
            logger.error("%s", exc)
            return 2
        trace_path = _trace_destination(args)
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        sink = open(trace_path, "w", encoding="utf-8")
        tracer = EventTracer(categories, sink=sink)
    ids = experiment_ids() if args.experiment == "all" else [args.experiment]
    scale = args.scale if args.scale is not None else default_scale()
    cache_dir = args.cache_dir
    if args.no_cache:
        cache_dir = None
    elif cache_dir is None:
        from ..runner import default_cache_dir

        cache_dir = default_cache_dir()
    options = RunOptions(
        check_every=args.check_every,
        guard_policy=args.guard_policy,
        fault_rate=args.fault_rate,
        fault_seed=args.fault_seed,
        checkpoint_dir=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        cache_dir=cache_dir,
    )
    previous = set_run_options(options)
    set_tracer(tracer)
    get_recorder().clear()
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    completed = 0
    timings: dict[str, float] = {}
    run_started = time.time()
    try:
        jobs = args.jobs if args.jobs is not None else os.cpu_count() or 1
        if tracer is not None and jobs > 1:
            # One process, one replay per unique simulation: event
            # counts then provably equal the metrics counts.
            logger.info("tracing active: forcing --jobs 1")
            jobs = 1
        if jobs > 1:
            _precompute(ids, scale, jobs)
        for experiment_id in ids:
            started = time.time()
            result = get_runner(experiment_id)(scale=args.scale)
            elapsed = time.time() - started
            timings[experiment_id] = round(elapsed, 3)
            print(result.render())
            print()
            logger.info("%s completed in %.1fs", experiment_id, elapsed)
            completed += 1
        timings["total_s"] = round(time.time() - run_started, 3)
        if tracer is not None:
            tracer.close()
        _write_outputs(args, ids, scale, options, timings, tracer, trace_path)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0
    except KeyboardInterrupt:
        # Flush what finished, report, and exit with the conventional
        # SIGINT code.  Checkpointed simulations resume on re-run.
        sys.stdout.flush()
        logger.warning(
            "interrupted: %d/%d experiment(s) completed", completed, len(ids)
        )
        return 130
    finally:
        set_run_options(previous)
        if tracer is not None:
            set_tracer(None)
            tracer.close()
        if profiler is not None:
            import pstats

            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative")
            logger.info("profile (top 30 by cumulative time) follows")
            stats.print_stats(30)
    return 0


def main_all(argv: list[str] | None = None) -> int:
    """The ``repro-all`` entry point: every experiment, one command."""
    return main(["all"] + list(argv if argv is not None else sys.argv[1:]))


if __name__ == "__main__":
    sys.exit(main())
