"""Command-line entry point: regenerate paper tables and figures.

Examples::

    repro-experiment table6
    repro-experiment figures --scale 0.1
    repro-all --jobs 8                                   # everything, parallel
    repro-experiment all --jobs 4 --profile              # with a profile

Simulations fan out across ``--jobs`` worker processes (default: all
cores) and results persist in an on-disk cache, so a re-run replays
only what changed; ``--no-cache`` forces everything to recompute.

Robustness options::

    repro-experiment table6 --check-every 100           # invariant guard
    repro-experiment table6 --fault-rate 1e-3 \\
        --check-every 100 --guard-policy repair          # inject + repair
    repro-experiment all --checkpoint /tmp/ckpt          # resumable replay

Parallel runs execute under a fault-tolerant supervisor: failed jobs
retry with seeded backoff (``--retries``), jobs running past
``--job-timeout`` seconds are killed and retried, dead workers trigger
a pool rebuild, and jobs that keep failing are quarantined with a
structured failure record instead of aborting the grid.  Completed
jobs land in an append-only journal, so a crashed or interrupted grid
resumes with ``--resume``.  A partially failed run (some jobs
quarantined) exits with code 3.

An interrupted run (Ctrl-C) exits with code 130 after flushing the
results of every experiment that completed; re-running with the same
``--checkpoint`` directory resumes mid-trace.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from ..analysis.runtime import DeterminismViolation
from ..common.errors import ConfigurationError
from ..obs import (
    EventTracer,
    RunManifest,
    configure,
    get_logger,
    get_recorder,
    parse_categories,
    set_tracer,
)
from ..obs.log import LEVELS
from ..obs.tracing import CATEGORIES
from . import (
    RunOptions,
    default_scale,
    experiment_ids,
    get_runner,
    set_run_options,
)

logger = get_logger("cli")

#: Exit code when the run finished but some jobs were quarantined.
EXIT_PARTIAL = 3


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Regenerate tables and figures of 'Organization and "
            "Performance of a Two-Level Virtual-Real Cache Hierarchy' "
            "(Wang, Baer & Levy, ISCA 1989) from surrogate traces."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=experiment_ids() + ["all"],
        help="which artefact to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help=(
            "trace scale relative to the paper's trace lengths "
            f"(default {default_scale()} or $REPRO_SCALE; 1.0 = full)"
        ),
    )
    runner = parser.add_argument_group("execution")
    runner.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="worker processes for simulations (default: all cores)",
    )
    runner.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "root of the persistent result cache "
            "(default: benchmarks/results/cache or $REPRO_CACHE_DIR)"
        ),
    )
    runner.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the persistent result cache",
    )
    runner.add_argument(
        "--profile",
        action="store_true",
        help="profile the run and print the hottest functions",
    )
    runner.add_argument(
        "--engine",
        choices=["object", "soa"],
        default="object",
        help=(
            "replay core: the reference object hierarchy or the "
            "struct-of-arrays core (default: object)"
        ),
    )
    guard = parser.add_argument_group("robustness")
    guard.add_argument(
        "--check-every",
        type=int,
        metavar="N",
        default=None,
        help="run the invariant guard every N accesses (off by default)",
    )
    guard.add_argument(
        "--guard-policy",
        choices=["fail-fast", "repair", "log"],
        default="fail-fast",
        help="what the guard does on a violation (default: fail-fast)",
    )
    guard.add_argument(
        "--fault-rate",
        type=float,
        metavar="P",
        default=0.0,
        help="inject each metadata fault kind with per-access probability P",
    )
    guard.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the fault injector's RNG (default: 0)",
    )
    guard.add_argument(
        "--checkpoint",
        metavar="DIR",
        default=None,
        help="checkpoint simulations into DIR and resume from it",
    )
    guard.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="N",
        default=50_000,
        help="trace records between checkpoints (default: 50000)",
    )
    resil = parser.add_argument_group("resilience (supervised parallel runs)")
    resil.add_argument(
        "--retries",
        type=int,
        metavar="N",
        default=2,
        help="retries per failed job before quarantine (default: 2)",
    )
    resil.add_argument(
        "--job-timeout",
        type=float,
        metavar="S",
        default=None,
        help="kill and retry any job running longer than S seconds",
    )
    resil.add_argument(
        "--resume",
        action="store_true",
        help=(
            "skip jobs the run journal already marks finished or "
            "quarantined (requires a journal: --journal or a cache dir)"
        ),
    )
    resil.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help=(
            "append-only JSONL journal of completed jobs "
            "(default: <cache-dir>/journal.jsonl when caching)"
        ),
    )
    resil.add_argument(
        "--quarantine-dir",
        metavar="DIR",
        default=None,
        help=(
            "where failure records of quarantined jobs are written "
            "(default: <cache-dir>/quarantine when caching)"
        ),
    )
    chaos = parser.add_argument_group("chaos (deterministic fault drills)")
    chaos.add_argument(
        "--chaos-kill-rate",
        type=float,
        metavar="P",
        default=0.0,
        help="probability a worker SIGKILLs itself per attempt",
    )
    chaos.add_argument(
        "--chaos-hang-rate",
        type=float,
        metavar="P",
        default=0.0,
        help="probability a worker hangs past the job timeout",
    )
    chaos.add_argument(
        "--chaos-raise-rate",
        type=float,
        metavar="P",
        default=0.0,
        help="probability a worker raises mid-job",
    )
    chaos.add_argument(
        "--chaos-hang-s",
        type=float,
        metavar="S",
        default=30.0,
        help="how long a chaos hang sleeps (default: 30)",
    )
    chaos.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed of the chaos decision RNG (default: 0)",
    )
    chaos.add_argument(
        "--chaos-first-attempts",
        type=int,
        metavar="N",
        default=1,
        help="only the first N attempts of a job misbehave (default: 1)",
    )
    chaos.add_argument(
        "--chaos-poison-one-in",
        type=int,
        metavar="N",
        default=0,
        help="make roughly one job in N fail on every attempt (poison)",
    )
    obs = parser.add_argument_group("observability")
    obs.add_argument(
        "--trace",
        nargs="?",
        const="all",
        default=None,
        metavar="CATS",
        help=(
            "emit structured trace events to a JSONL file; CATS is a "
            f"comma list from {{{','.join(sorted(CATEGORIES))}}} "
            "(bare --trace = all). Forces --jobs 1 and bypasses the "
            "result cache so every event is really generated"
        ),
    )
    obs.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help=(
            "trace JSONL destination (default: derived from "
            "--metrics-out, else repro-trace.jsonl)"
        ),
    )
    obs.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help=(
            "write the run's merged metrics snapshot (JSON) here, "
            "plus a run manifest next to it"
        ),
    )
    obs.add_argument(
        "--log-level",
        choices=list(LEVELS),
        default="info",
        help="diagnostic verbosity on stderr (default: info)",
    )
    obs.add_argument(
        "--sanitize",
        action="store_true",
        help=(
            "run under the determinism guard: wall-clock/unseeded-random/"
            "uuid/urandom reads from simulation code raise instead of "
            "silently skewing keyed results (see repro-sanitize)"
        ),
    )
    return parser


def _chaos_config(args: argparse.Namespace):
    """The ChaosConfig the flags describe, or None when chaos is off."""
    if not (
        args.chaos_kill_rate
        or args.chaos_hang_rate
        or args.chaos_raise_rate
        or args.chaos_poison_one_in
    ):
        return None
    from ..faults import ChaosConfig

    return ChaosConfig(
        kill_rate=args.chaos_kill_rate,
        hang_rate=args.chaos_hang_rate,
        raise_rate=args.chaos_raise_rate,
        hang_s=args.chaos_hang_s,
        seed=args.chaos_seed,
        first_attempts=args.chaos_first_attempts,
        poison_one_in=args.chaos_poison_one_in,
    )


def _supervisor_config(args: argparse.Namespace, cache_dir: str | None):
    """The supervision policy for this invocation.

    The journal and quarantine directory default into the cache root
    so resumability needs no extra flags; ``--no-cache`` runs keep
    both off unless pointed somewhere explicitly.
    """
    from ..runner import SupervisorConfig

    journal = args.journal
    if journal is None and cache_dir is not None:
        journal = str(Path(cache_dir) / "journal.jsonl")
    quarantine = args.quarantine_dir
    if quarantine is None and cache_dir is not None:
        quarantine = str(Path(cache_dir) / "quarantine")
    return SupervisorConfig(
        max_attempts=args.retries + 1,
        job_timeout_s=args.job_timeout,
        seed=args.chaos_seed,
        quarantine_dir=quarantine,
        journal_path=journal,
        resume=args.resume,
        chaos=_chaos_config(args),
    )


def _precompute(ids: list[str], scale: float, jobs: int, supervisor):
    """Plan and pool-execute the simulations behind *ids*.

    Returns the :class:`~repro.runner.RunReport`, or None when there
    was nothing to plan.
    """
    from ..runner import plan_jobs, run_jobs

    planned = plan_jobs(ids, scale)
    if not planned:
        return None
    report = run_jobs(planned, jobs, supervisor=supervisor)
    logger.info("runner: %s", report.describe())
    return report


def _trace_destination(args: argparse.Namespace) -> Path:
    """Where the trace JSONL goes for this invocation."""
    if args.trace_out is not None:
        return Path(args.trace_out)
    if args.metrics_out is not None:
        return Path(args.metrics_out).with_suffix(".trace.jsonl")
    return Path("repro-trace.jsonl")


def _write_outputs(
    args: argparse.Namespace,
    ids: list[str],
    scale: float,
    options: RunOptions,
    timings: dict[str, float],
    tracer: EventTracer | None,
    trace_path: Path | None,
) -> None:
    """Write the metrics snapshot and the run manifest (if requested)."""
    from ..runner import runner_metrics

    recorder = get_recorder()
    registry = recorder.registry()
    # Fold the supervisor's counters (runner.retry, runner.timeout, …)
    # into the same registry before the single snapshot both the
    # metrics file and the manifest share, so they stay consistent.
    registry.merge(runner_metrics())
    snapshot = registry.snapshot()
    manifest_path: Path | None = None
    if args.metrics_out is not None:
        metrics_path = Path(args.metrics_out)
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        logger.info("metrics snapshot: %s", metrics_path)
        manifest_path = metrics_path.with_suffix(".manifest.json")
    elif trace_path is not None:
        manifest_path = trace_path.with_suffix(".manifest.json")
    if manifest_path is None:
        return
    trace_info: dict = {}
    if tracer is not None:
        trace_info = {
            "path": str(trace_path),
            "categories": sorted(tracer.categories),
            "events": tracer.counts.as_dict(),
            "emitted": tracer.emitted,
        }
    manifest = RunManifest.create(
        ids,
        scale,
        options=options,
        timings_s=timings,
        metrics=snapshot,
        trace=trace_info,
        simulations=len(recorder),
    )
    manifest.write(manifest_path)
    logger.info("run manifest: %s", manifest_path)


def main(argv: list[str] | None = None) -> int:
    """Run the CLI; returns a process exit code."""
    args = build_parser().parse_args(argv)
    configure(args.log_level)
    if args.check_every is not None and args.check_every < 1:
        logger.error("--check-every must be >= 1")
        return 2
    if args.checkpoint_every < 1:
        logger.error("--checkpoint-every must be >= 1")
        return 2
    if not 0.0 <= args.fault_rate <= 1.0:
        logger.error("--fault-rate must be a probability in [0, 1]")
        return 2
    if args.jobs is not None and args.jobs < 1:
        logger.error("--jobs must be >= 1")
        return 2
    if args.retries < 0:
        logger.error("--retries must be >= 0")
        return 2
    if args.job_timeout is not None and args.job_timeout <= 0:
        logger.error("--job-timeout must be > 0 seconds")
        return 2
    try:
        _chaos_config(args)
    except ConfigurationError as exc:
        logger.error("%s", exc)
        return 2
    tracer = None
    trace_path: Path | None = None
    if args.trace is not None:
        try:
            categories = parse_categories(args.trace)
        except ConfigurationError as exc:
            logger.error("%s", exc)
            return 2
        trace_path = _trace_destination(args)
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        sink = open(trace_path, "w", encoding="utf-8")
        tracer = EventTracer(categories, sink=sink)
    ids = experiment_ids() if args.experiment == "all" else [args.experiment]
    scale = args.scale if args.scale is not None else default_scale()
    cache_dir = args.cache_dir
    if args.no_cache:
        cache_dir = None
    elif cache_dir is None:
        from ..runner import default_cache_dir

        cache_dir = default_cache_dir()
    options = RunOptions(
        check_every=args.check_every,
        guard_policy=args.guard_policy,
        fault_rate=args.fault_rate,
        fault_seed=args.fault_seed,
        checkpoint_dir=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        cache_dir=cache_dir,
        engine=args.engine,
    )
    supervisor = _supervisor_config(args, cache_dir)
    if args.resume and supervisor.journal_path is None:
        logger.error("--resume needs a journal: pass --journal or enable caching")
        return 2
    previous = set_run_options(options)
    guard = None
    if args.sanitize:
        from ..analysis.runtime import DeterminismGuard

        # In-process only: parallel workers are separate interpreters and
        # run unguarded.  Good enough — every experiment also runs (and is
        # keyed) identically under --jobs 1.
        guard = DeterminismGuard()
        guard.__enter__()
    set_tracer(tracer)
    get_recorder().clear()
    from ..runner import reset_runner_metrics

    reset_runner_metrics()
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    completed = 0
    report = None
    timings: dict[str, float] = {}
    run_started = time.time()
    try:
        jobs = args.jobs if args.jobs is not None else os.cpu_count() or 1
        if tracer is not None and jobs > 1:
            # One process, one replay per unique simulation: event
            # counts then provably equal the metrics counts.
            logger.info("tracing active: forcing --jobs 1")
            jobs = 1
        supervised = (
            args.resume
            or args.job_timeout is not None
            or supervisor.chaos is not None
        )
        if jobs > 1 or (supervised and tracer is None):
            report = _precompute(ids, scale, jobs, supervisor)
        for experiment_id in ids:
            started = time.time()
            result = get_runner(experiment_id)(scale=args.scale)
            elapsed = time.time() - started
            timings[experiment_id] = round(elapsed, 3)
            print(result.render())
            print()
            logger.info("%s completed in %.1fs", experiment_id, elapsed)
            completed += 1
        timings["total_s"] = round(time.time() - run_started, 3)
        if tracer is not None:
            tracer.close()
        _write_outputs(args, ids, scale, options, timings, tracer, trace_path)
        if report is not None and not report.healthy:
            for path in report.quarantine_files:
                logger.warning("quarantined job record: %s", path)
            logger.warning(
                "partial run: %d quarantined, %d skipped as quarantined "
                "earlier — exit %d",
                report.quarantined,
                report.skipped_quarantined,
                EXIT_PARTIAL,
            )
            return EXIT_PARTIAL
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0
    except DeterminismViolation as exc:
        logger.error("determinism violation under --sanitize: %s", exc)
        return 2
    except KeyboardInterrupt:
        # Flush what finished, report, and exit with the conventional
        # SIGINT code.  Checkpointed simulations resume on re-run.
        sys.stdout.flush()
        logger.warning(
            "interrupted: %d/%d experiment(s) completed", completed, len(ids)
        )
        return 130
    finally:
        if guard is not None:
            guard.__exit__(None, None, None)
        set_run_options(previous)
        if tracer is not None:
            set_tracer(None)
            tracer.close()
        if profiler is not None:
            import pstats

            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative")
            logger.info("profile (top 30 by cumulative time) follows")
            stats.print_stats(30)
    return 0


def main_all(argv: list[str] | None = None) -> int:
    """The ``repro-all`` entry point: every experiment, one command."""
    return main(["all"] + list(argv if argv is not None else sys.argv[1:]))


if __name__ == "__main__":
    sys.exit(main())
