"""Command-line entry point: regenerate paper tables and figures.

Examples::

    repro-experiment table6
    repro-experiment figures --scale 0.1
    repro-all --jobs 8                                   # everything, parallel
    repro-experiment all --jobs 4 --profile              # with a profile

Simulations fan out across ``--jobs`` worker processes (default: all
cores) and results persist in an on-disk cache, so a re-run replays
only what changed; ``--no-cache`` forces everything to recompute.

Robustness options::

    repro-experiment table6 --check-every 100           # invariant guard
    repro-experiment table6 --fault-rate 1e-3 \\
        --check-every 100 --guard-policy repair          # inject + repair
    repro-experiment all --checkpoint /tmp/ckpt          # resumable replay

An interrupted run (Ctrl-C) exits with code 130 after flushing the
results of every experiment that completed; re-running with the same
``--checkpoint`` directory resumes mid-trace.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from . import (
    RunOptions,
    default_scale,
    experiment_ids,
    get_runner,
    set_run_options,
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Regenerate tables and figures of 'Organization and "
            "Performance of a Two-Level Virtual-Real Cache Hierarchy' "
            "(Wang, Baer & Levy, ISCA 1989) from surrogate traces."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=experiment_ids() + ["all"],
        help="which artefact to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help=(
            "trace scale relative to the paper's trace lengths "
            f"(default {default_scale()} or $REPRO_SCALE; 1.0 = full)"
        ),
    )
    runner = parser.add_argument_group("execution")
    runner.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="worker processes for simulations (default: all cores)",
    )
    runner.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "root of the persistent result cache "
            "(default: benchmarks/results/cache or $REPRO_CACHE_DIR)"
        ),
    )
    runner.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the persistent result cache",
    )
    runner.add_argument(
        "--profile",
        action="store_true",
        help="profile the run and print the hottest functions",
    )
    guard = parser.add_argument_group("robustness")
    guard.add_argument(
        "--check-every",
        type=int,
        metavar="N",
        default=None,
        help="run the invariant guard every N accesses (off by default)",
    )
    guard.add_argument(
        "--guard-policy",
        choices=["fail-fast", "repair", "log"],
        default="fail-fast",
        help="what the guard does on a violation (default: fail-fast)",
    )
    guard.add_argument(
        "--fault-rate",
        type=float,
        metavar="P",
        default=0.0,
        help="inject each metadata fault kind with per-access probability P",
    )
    guard.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the fault injector's RNG (default: 0)",
    )
    guard.add_argument(
        "--checkpoint",
        metavar="DIR",
        default=None,
        help="checkpoint simulations into DIR and resume from it",
    )
    guard.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="N",
        default=50_000,
        help="trace records between checkpoints (default: 50000)",
    )
    return parser


def _precompute(ids: list[str], scale: float, jobs: int) -> None:
    """Plan and pool-execute the simulations behind *ids*."""
    from ..runner import plan_jobs, run_jobs

    planned = plan_jobs(ids, scale)
    if not planned:
        return
    report = run_jobs(planned, jobs)
    print(f"[runner: {report.describe()}]", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    """Run the CLI; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.check_every is not None and args.check_every < 1:
        print("--check-every must be >= 1", file=sys.stderr)
        return 2
    if args.checkpoint_every < 1:
        print("--checkpoint-every must be >= 1", file=sys.stderr)
        return 2
    if not 0.0 <= args.fault_rate <= 1.0:
        print("--fault-rate must be a probability in [0, 1]", file=sys.stderr)
        return 2
    if args.jobs is not None and args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    ids = experiment_ids() if args.experiment == "all" else [args.experiment]
    cache_dir = args.cache_dir
    if args.no_cache:
        cache_dir = None
    elif cache_dir is None:
        from ..runner import default_cache_dir

        cache_dir = default_cache_dir()
    previous = set_run_options(
        RunOptions(
            check_every=args.check_every,
            guard_policy=args.guard_policy,
            fault_rate=args.fault_rate,
            fault_seed=args.fault_seed,
            checkpoint_dir=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            cache_dir=cache_dir,
        )
    )
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    completed = 0
    try:
        jobs = args.jobs if args.jobs is not None else os.cpu_count() or 1
        if jobs > 1:
            _precompute(ids, args.scale or default_scale(), jobs)
        for experiment_id in ids:
            started = time.time()
            result = get_runner(experiment_id)(scale=args.scale)
            elapsed = time.time() - started
            print(result.render())
            print(f"[{experiment_id} completed in {elapsed:.1f}s]")
            print()
            completed += 1
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0
    except KeyboardInterrupt:
        # Flush what finished, report, and exit with the conventional
        # SIGINT code.  Checkpointed simulations resume on re-run.
        sys.stdout.flush()
        print(
            f"\ninterrupted: {completed}/{len(ids)} experiment(s) completed",
            file=sys.stderr,
        )
        return 130
    finally:
        set_run_options(previous)
        if profiler is not None:
            import pstats

            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative")
            print("\n-- profile (top 30 by cumulative time) --", file=sys.stderr)
            stats.print_stats(30)
    return 0


def main_all(argv: list[str] | None = None) -> int:
    """The ``repro-all`` entry point: every experiment, one command."""
    return main(["all"] + list(argv if argv is not None else sys.argv[1:]))


if __name__ == "__main__":
    sys.exit(main())
