"""Command-line entry point: regenerate paper tables and figures.

Examples::

    repro-experiment table6
    repro-experiment figures --scale 0.1
    repro-experiment all --scale 0.02
"""

from __future__ import annotations

import argparse
import sys
import time

from . import default_scale, experiment_ids, get_runner


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Regenerate tables and figures of 'Organization and "
            "Performance of a Two-Level Virtual-Real Cache Hierarchy' "
            "(Wang, Baer & Levy, ISCA 1989) from surrogate traces."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=experiment_ids() + ["all"],
        help="which artefact to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help=(
            "trace scale relative to the paper's trace lengths "
            f"(default {default_scale()} or $REPRO_SCALE; 1.0 = full)"
        ),
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the CLI; returns a process exit code."""
    args = build_parser().parse_args(argv)
    ids = experiment_ids() if args.experiment == "all" else [args.experiment]
    try:
        for experiment_id in ids:
            started = time.time()
            result = get_runner(experiment_id)(scale=args.scale)
            elapsed = time.time() - started
            print(result.render())
            print(f"[{experiment_id} completed in {elapsed:.1f}s]")
            print()
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
