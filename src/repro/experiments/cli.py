"""Command-line entry point: regenerate paper tables and figures.

Examples::

    repro-experiment table6
    repro-experiment figures --scale 0.1
    repro-experiment all --scale 0.02

Robustness options::

    repro-experiment table6 --check-every 100           # invariant guard
    repro-experiment table6 --fault-rate 1e-3 \\
        --check-every 100 --guard-policy repair          # inject + repair
    repro-experiment all --checkpoint /tmp/ckpt          # resumable replay

An interrupted run (Ctrl-C) exits with code 130 after flushing the
results of every experiment that completed; re-running with the same
``--checkpoint`` directory resumes mid-trace.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    RunOptions,
    default_scale,
    experiment_ids,
    get_runner,
    set_run_options,
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Regenerate tables and figures of 'Organization and "
            "Performance of a Two-Level Virtual-Real Cache Hierarchy' "
            "(Wang, Baer & Levy, ISCA 1989) from surrogate traces."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=experiment_ids() + ["all"],
        help="which artefact to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help=(
            "trace scale relative to the paper's trace lengths "
            f"(default {default_scale()} or $REPRO_SCALE; 1.0 = full)"
        ),
    )
    guard = parser.add_argument_group("robustness")
    guard.add_argument(
        "--check-every",
        type=int,
        metavar="N",
        default=None,
        help="run the invariant guard every N accesses (off by default)",
    )
    guard.add_argument(
        "--guard-policy",
        choices=["fail-fast", "repair", "log"],
        default="fail-fast",
        help="what the guard does on a violation (default: fail-fast)",
    )
    guard.add_argument(
        "--fault-rate",
        type=float,
        metavar="P",
        default=0.0,
        help="inject each metadata fault kind with per-access probability P",
    )
    guard.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the fault injector's RNG (default: 0)",
    )
    guard.add_argument(
        "--checkpoint",
        metavar="DIR",
        default=None,
        help="checkpoint simulations into DIR and resume from it",
    )
    guard.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="N",
        default=50_000,
        help="trace records between checkpoints (default: 50000)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the CLI; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.check_every is not None and args.check_every < 1:
        print("--check-every must be >= 1", file=sys.stderr)
        return 2
    if args.checkpoint_every < 1:
        print("--checkpoint-every must be >= 1", file=sys.stderr)
        return 2
    if not 0.0 <= args.fault_rate <= 1.0:
        print("--fault-rate must be a probability in [0, 1]", file=sys.stderr)
        return 2
    ids = experiment_ids() if args.experiment == "all" else [args.experiment]
    previous = set_run_options(
        RunOptions(
            check_every=args.check_every,
            guard_policy=args.guard_policy,
            fault_rate=args.fault_rate,
            fault_seed=args.fault_seed,
            checkpoint_dir=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
        )
    )
    completed = 0
    try:
        for experiment_id in ids:
            started = time.time()
            result = get_runner(experiment_id)(scale=args.scale)
            elapsed = time.time() - started
            print(result.render())
            print(f"[{experiment_id} completed in {elapsed:.1f}s]")
            print()
            completed += 1
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0
    except KeyboardInterrupt:
        # Flush what finished, report, and exit with the conventional
        # SIGINT code.  Checkpointed simulations resume on re-run.
        sys.stdout.flush()
        print(
            f"\ninterrupted: {completed}/{len(ids)} experiment(s) completed",
            file=sys.stderr,
        )
        return 130
    finally:
        set_run_options(previous)
    return 0


if __name__ == "__main__":
    sys.exit(main())
