"""Ablations of the paper's design choices (beyond its tables).

Three studies, each isolating one decision the paper argues for:

1. **Context-switch policy** — flush-with-swapped-valid (the paper's
   choice) vs pid-tagged V-cache entries (the section-2 alternative)
   vs a physical level 1, on the frequent-switch trace.  The paper
   claims pid tags buy little hit ratio for small caches.
2. **Relaxed inclusion rule** — inclusion invalidations actually
   incurred vs level-2 associativity, next to the strict-rule bound
   ``A2 >= size(1)/page * B2/B1``.  The paper quotes only 21 forced
   invalidations for pops at 16K/256K 2-way: the relaxed rule is
   nearly free.
3. **Write-buffer capacity** — stalls vs buffer depth for the
   write-back V-cache; the paper's claim is that a single buffer
   suffices once swapped write-backs are spread out.
"""

from __future__ import annotations

from ..cache.config import CacheConfig
from ..coherence.protocol import WritePolicy
from ..hierarchy.config import (
    HierarchyKind,
    Protocol,
    min_l2_associativity_for_strict_inclusion,
)
from ..obs.metrics import COHERENCE_TO_L1_METRICS
from ..perf.tables import render
from ..trace.workloads import get_spec
from .base import ExperimentResult, default_scale, simulate, trace_records

#: Fields :func:`_overrides` drops when set to their defaults, so a
#: sweep point that happens to equal the baseline shares its cache key
#: (and its simulation) with every other caller of the baseline.
_DEFAULT_OVERRIDES: dict[str, object] = {
    "l1_associativity": 1,
    "l2_associativity": 1,
    "write_buffer_capacity": 1,
    "l1_pid_tags": False,
    "l1_write_policy": WritePolicy.WRITE_BACK,
    "protocol": Protocol.WRITE_INVALIDATE,
}


def _overrides(**kwargs: object) -> tuple[tuple[str, object], ...]:
    """Canonical config-override tuple: sorted, defaults dropped."""
    return tuple(
        sorted(
            (name, value)
            for name, value in kwargs.items()
            if _DEFAULT_OVERRIDES.get(name) != value
        )
    )


def _sim(
    trace: str,
    scale: float,
    kind: HierarchyKind = HierarchyKind.VR,
    **overrides: object,
):
    """One ablation simulation — all studies run at 16K/256K."""
    return simulate(
        trace, scale, "16K", "256K", kind, config_overrides=_overrides(**overrides)
    )


def simulation_cases(scale: float) -> list[tuple[str, HierarchyKind, tuple]]:
    """Every (trace, kind, config_overrides) the machine-level
    ablations simulate, all at 16K/256K.

    The job planner consumes this so the parallel runner pre-computes
    exactly what :func:`run` will ask for — keep it in lockstep with
    the study functions below.
    """
    cases: list[tuple[str, HierarchyKind, tuple]] = [
        # Ablation 1: context-switch policy (the plain VR and RR runs
        # are shared with Table 6).
        ("abaqus", HierarchyKind.VR, ()),
        ("abaqus", HierarchyKind.VR, _overrides(l1_pid_tags=True)),
        ("abaqus", HierarchyKind.RR_INCLUSION, ()),
    ]
    # Ablation 2: inclusion invalidations vs L2 associativity.
    for assoc in (1, 2, 4):
        cases.append(
            ("pops", HierarchyKind.VR,
             _overrides(l1_associativity=2, l2_associativity=assoc))
        )
    # Ablation 3: write-buffer capacity.
    for capacity in (1, 2, 4, 8):
        cases.append(
            ("pops", HierarchyKind.VR, _overrides(write_buffer_capacity=capacity))
        )
    # Ablation 4: level-1 write policy.
    for policy, capacity in (
        (WritePolicy.WRITE_BACK, 1),
        (WritePolicy.WRITE_THROUGH, 1),
        (WritePolicy.WRITE_THROUGH, 4),
    ):
        cases.append(
            ("pops", HierarchyKind.VR,
             _overrides(l1_write_policy=policy, write_buffer_capacity=capacity))
        )
    # Ablation 5: coherence protocol.
    for protocol in (Protocol.WRITE_INVALIDATE, Protocol.WRITE_UPDATE):
        cases.append(("thor", HierarchyKind.VR, _overrides(protocol=protocol)))
    # Ablation 6: the two-level arm of the memory-traffic comparison.
    cases.append(("pops", HierarchyKind.VR, ()))
    return cases


def context_switch_policies(scale: float) -> dict[str, dict[str, float]]:
    """h1 and write-back behaviour per context-switch policy (abaqus)."""
    policies = {
        "flush+swapped-valid": {},
        "pid-tagged": {"l1_pid_tags": True},
        "physical L1": {"kind": HierarchyKind.RR_INCLUSION},
    }
    out = {}
    for name, kwargs in policies.items():
        result = _sim("abaqus", scale, **kwargs)
        metrics = result.metrics()
        out[name] = {
            "h1": result.h1,
            "h2": result.h2,
            "swapped_writebacks": metrics.value("wb.swapped_push"),
            "writeback_stalls": metrics.value("wb.stall"),
        }
    return out


def inclusion_invalidation_sweep(scale: float) -> dict[int, int]:
    """Forced inclusion invalidations vs level-2 associativity (pops)."""
    out = {}
    for assoc in (1, 2, 4):
        result = _sim("pops", scale, l1_associativity=2, l2_associativity=assoc)
        out[assoc] = result.metrics().value("l1.inclusion.invalidate")
    return out


def write_buffer_sweep(scale: float) -> dict[int, dict[str, int]]:
    """Write-buffer stalls vs capacity (pops, write-back V-cache)."""
    out = {}
    for capacity in (1, 2, 4, 8):
        result = _sim("pops", scale, write_buffer_capacity=capacity)
        metrics = result.metrics()
        out[capacity] = {
            "stalls": metrics.value("wb.stall"),
            "writebacks": metrics.value("wb.push"),
        }
    return out


def write_policy_comparison(scale: float) -> dict[str, dict[str, float]]:
    """Write-back vs write-through level 1 (section 2's argument).

    Write-through floods the buffer with every write (call bursts
    land back to back: Table 2), so stalls per 1000 references are the
    number to watch next to the write-back design's near-zero.
    """
    out = {}
    for label, policy, capacity in (
        ("write-back, 1 buffer", WritePolicy.WRITE_BACK, 1),
        ("write-through, 1 buffer", WritePolicy.WRITE_THROUGH, 1),
        ("write-through, 4 buffers", WritePolicy.WRITE_THROUGH, 4),
    ):
        result = _sim(
            "pops", scale, l1_write_policy=policy, write_buffer_capacity=capacity
        )
        metrics = result.metrics()
        refs = metrics.total(prefix="l1.hit.") + metrics.total(prefix="l1.miss.")
        out[label] = {
            "h1": result.h1,
            "stalls_per_1k_refs": 1000 * metrics.value("wb.stall")
            / max(refs, 1),
            "downstream_writes": metrics.value("wb.push")
            + metrics.value("wb.wt_write")
            - metrics.value("wb.wt_merge"),
        }
    return out


def protocol_comparison(scale: float) -> dict[str, dict[str, int]]:
    """Write-invalidate vs write-update at the second level (the paper
    claims its scheme 'will also work for other protocols')."""
    out = {}
    for label, protocol in (
        ("invalidate", Protocol.WRITE_INVALIDATE),
        ("update", Protocol.WRITE_UPDATE),
    ):
        result = _sim("thor", scale, protocol=protocol)
        metrics = result.metrics()
        out[label] = {
            "l1_misses": metrics.total(prefix="l1.miss."),
            "coherence_to_l1": metrics.total(*COHERENCE_TO_L1_METRICS),
            "bus_coherence_txns": metrics.total(
                "bus.invalidate", "bus.read_modified_write", "bus.write_update"
            ),
        }
    return out


def memory_traffic_comparison(scale: float) -> dict[str, dict[str, float]]:
    """Bus/memory transactions with and without the second level.

    The paper's opening motivation: 'the large second-level cache ...
    greatly reduces memory traffic'.  A single-level 16K V-cache is
    compared with the same V-cache backed by a 256K R-cache; traffic
    is block transactions on the memory side per 1000 references.
    """
    from ..cache.config import CacheConfig as _CacheConfig
    from ..coherence.protocol import WritePolicy as _WritePolicy
    from ..hierarchy.single import SingleLevelCache
    from ..trace.record import RefKind

    out: dict[str, dict[str, float]] = {}

    # Two-level V-R: memory traffic is what reaches the bus.
    result = _sim("pops", scale)
    metrics = result.metrics()
    refs = metrics.value("sim.refs")
    bus_traffic = metrics.total(
        "bus.read_miss", "bus.read_modified_write", "bus.write_back"
    )
    out["V-R two-level (16K + 256K)"] = {
        "traffic_per_1k": 1000 * bus_traffic / refs,
        "h1": result.h1,
    }

    # Single level: every level-1 miss and write-back hits memory.
    n_cpus = get_spec("pops", scale).n_cpus
    caches = [
        SingleLevelCache(
            _CacheConfig.create("16K", 16),
            write_policy=_WritePolicy.WRITE_BACK,
            lazy_swap=True,
        )
        for _ in range(n_cpus)
    ]
    single_refs = 0
    for record in trace_records("pops", scale)[0]:
        if record.kind is RefKind.CSWITCH:
            caches[record.cpu].context_switch()
        elif record.is_memory:
            caches[record.cpu].access(record.vaddr, record.kind)
            single_refs += 1
    fetches = sum(c.stats["misses"] for c in caches)
    writebacks = sum(c.stats["downstream_writes"] for c in caches)
    hits = sum(c.stats["hits"] for c in caches)
    out["single-level (16K only)"] = {
        "traffic_per_1k": 1000 * (fetches + writebacks) / single_refs,
        "h1": hits / single_refs,
    }
    return out


def run(scale: float | None = None) -> ExperimentResult:
    """All ablations, rendered."""
    scale = default_scale() if scale is None else scale
    sections = []

    policies = context_switch_policies(scale)
    sections.append(
        render(
            ["policy", "h1", "h2", "swapped wb", "stalls"],
            [
                [name, f"{d['h1']:.3f}", f"{d['h2']:.3f}",
                 d["swapped_writebacks"], d["writeback_stalls"]]
                for name, d in policies.items()
            ],
            title="Ablation 1: context-switch policy (abaqus, 16K/256K)",
        )
    )

    bound = min_l2_associativity_for_strict_inclusion(
        CacheConfig.create("16K", 16, 2), CacheConfig.create("256K", 16)
    )
    sweep = inclusion_invalidation_sweep(scale)
    sections.append(
        render(
            ["L2 associativity", "inclusion invalidations"],
            [[assoc, count] for assoc, count in sweep.items()],
            title=(
                "Ablation 2: relaxed inclusion rule (pops, V=16K 2-way, "
                f"R=256K; strict-rule bound would demand {bound}-way)"
            ),
        )
    )

    buffers = write_buffer_sweep(scale)
    sections.append(
        render(
            ["buffer capacity", "stalls", "write-backs"],
            [[cap, d["stalls"], d["writebacks"]] for cap, d in buffers.items()],
            title="Ablation 3: write-buffer capacity (pops, 16K/256K)",
        )
    )

    policies_wt = write_policy_comparison(scale)
    sections.append(
        render(
            ["policy", "h1", "stalls/1k refs", "downstream writes"],
            [
                [name, f"{d['h1']:.3f}", f"{d['stalls_per_1k_refs']:.2f}",
                 d["downstream_writes"]]
                for name, d in policies_wt.items()
            ],
            title="Ablation 4: level-1 write policy (pops, 16K/256K)",
        )
    )

    protocols = protocol_comparison(scale)
    sections.append(
        render(
            ["protocol", "L1 misses", "coh. msgs to L1", "bus coh. txns"],
            [
                [name, d["l1_misses"], d["coherence_to_l1"],
                 d["bus_coherence_txns"]]
                for name, d in protocols.items()
            ],
            title="Ablation 5: coherence protocol (thor, 16K/256K)",
        )
    )

    traffic = memory_traffic_comparison(scale)
    sections.append(
        render(
            ["organisation", "memory txns / 1k refs", "h1"],
            [
                [name, f"{d['traffic_per_1k']:.1f}", f"{d['h1']:.3f}"]
                for name, d in traffic.items()
            ],
            title="Ablation 6: memory traffic with and without a second level (pops)",
        )
    )

    return ExperimentResult(
        experiment_id="ablation",
        title="Design-choice ablations",
        text="\n\n".join(sections),
        data={
            "context_switch_policies": policies,
            "inclusion_invalidations": sweep,
            "strict_inclusion_bound": bound,
            "write_buffer": buffers,
            "write_policy": policies_wt,
            "protocols": protocols,
            "memory_traffic": traffic,
        },
        scale=scale,
    )
