"""Figures 4-6: average access time vs level-1 translation slow-down.

The paper plots, per trace and per size pair, the average access time
of the V-R hierarchy (flat — no translation before level 1) and of
the R-R hierarchy as its level-1 access is slowed by 0-10 % of
address-translation overhead, with t2 = 4*t1.  The crossover abscissa
is where V-R starts winning; for the frequent-switch trace the paper
finds it near 6 %.
"""

from __future__ import annotations

from ..perf.model import (
    HitRatios,
    TimingParams,
    crossover_slowdown,
    slowdown_sweep,
)
from ..perf.plot import ascii_chart
from ..perf.tables import render
from ..trace.workloads import workload_names
from .base import SIZE_PAIRS, ExperimentResult, default_scale
from .table6 import hit_ratio_grid

#: Figure numbers in the paper, per trace.
FIGURE_NUMBERS = {"thor": 4, "pops": 5, "abaqus": 6}


def figure_series(
    trace: str,
    scale: float,
    timing: TimingParams = TimingParams(),
    max_slowdown: float = 0.10,
    steps: int = 11,
) -> dict[str, dict]:
    """The sweep data of one figure: per size pair, both curves and
    the crossover slow-down."""
    grid = hit_ratio_grid(scale, SIZE_PAIRS)[trace]
    out: dict[str, dict] = {}
    for l1, l2 in SIZE_PAIRS:
        cell = grid[f"{l1}/{l2}"]
        vr = HitRatios(cell["h1_vr"], cell["h2_vr"])
        rr = HitRatios(cell["h1_rr"], cell["h2_rr"])
        series = slowdown_sweep(vr, rr, timing, max_slowdown, steps)
        out[f"{l1}/{l2}"] = {
            "slowdowns": series.slowdowns,
            "vr_times": series.vr_times,
            "rr_times": series.rr_times,
            "crossover": crossover_slowdown(vr, rr, timing),
        }
    return out


def _render_figure(trace: str, series: dict[str, dict]) -> str:
    headers = ["slow-down %"]
    for pair in series:
        headers.append(f"VR {pair}")
        headers.append(f"RR {pair}")
    pairs = list(series)
    n_points = len(series[pairs[0]]["slowdowns"])
    rows = []
    for i in range(n_points):
        row: list[object] = [
            f"{series[pairs[0]]['slowdowns'][i] * 100:.0f}"
        ]
        for pair in pairs:
            row.append(series[pair]["vr_times"][i])
            row.append(series[pair]["rr_times"][i])
        rows.append(row)
    table = render(headers, rows)
    crossings = ", ".join(
        f"{pair}: {series[pair]['crossover'] * 100:+.1f}%" for pair in pairs
    )
    # Chart the middle size pair, the paper's canonical curve shape.
    mid = pairs[len(pairs) // 2]
    chart = ascii_chart(
        [s * 100 for s in series[mid]["slowdowns"]],
        {
            f"Virtual-real ({mid})": series[mid]["vr_times"],
            f"Real-real ({mid})": series[mid]["rr_times"],
        },
        x_label="first-level R-cache slow-down (%)",
        y_label="average access time (t1 units)",
    )
    return (
        f"{table}\n{chart}\n"
        f"crossover slow-down (VR wins beyond): {crossings}"
    )


def run(
    scale: float | None = None, timing: TimingParams = TimingParams()
) -> ExperimentResult:
    """All three figures (thor=4, pops=5, abaqus=6)."""
    scale = default_scale() if scale is None else scale
    data = {}
    sections = []
    for trace in workload_names():
        series = figure_series(trace, scale, timing)
        data[trace] = series
        number = FIGURE_NUMBERS[trace]
        sections.append(
            f"Figure {number}: average access time vs slow-down of "
            f"R-cache ({trace}, t2 = {timing.t2:g}*t1)\n"
            f"{_render_figure(trace, series)}"
        )
    return ExperimentResult(
        experiment_id="figures",
        title="Average access time vs level-1 slow-down (Figures 4-6)",
        text="\n\n".join(sections),
        data=data,
        scale=scale,
    )
