"""Simulation-as-a-service: a fault-tolerant HTTP front end (DESIGN §15).

``repro-serve`` turns the batch machinery — planner jobs, the
supervised worker pool, the schema-hash-versioned disk cache — into a
long-lived service: clients POST simulation configurations, the
scheduler coalesces duplicates, answers from cache, batches true
misses through the supervisor, and degrades to cache-only behind a
circuit breaker when workers keep dying.

Layering: :mod:`protocol` (wire format and validation),
:mod:`admission` (per-client rate limiting), :mod:`breaker` (the
circuit breaker), :mod:`scheduler` (coalesce → cache → batch →
degrade), :mod:`server` (HTTP plumbing and the CLI entry point).
"""

from __future__ import annotations

from .admission import RateLimiter, TokenBucket
from .breaker import BreakerState, CircuitBreaker
from .protocol import (
    DeadlineExceededError,
    DegradedError,
    DrainingError,
    JobFailedError,
    QueueFullError,
    RateLimitedError,
    ServeRejection,
    SimRequest,
    error_payload,
    parse_request,
    result_payload,
)
from .scheduler import (
    SchedulerConfig,
    ServeScheduler,
    reset_serve_metrics,
    serve_metrics,
)
from .server import ServeApp, build_parser, main, serve_main

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "DeadlineExceededError",
    "DegradedError",
    "DrainingError",
    "JobFailedError",
    "QueueFullError",
    "RateLimitedError",
    "RateLimiter",
    "SchedulerConfig",
    "ServeApp",
    "ServeRejection",
    "ServeScheduler",
    "SimRequest",
    "TokenBucket",
    "build_parser",
    "error_payload",
    "main",
    "parse_request",
    "reset_serve_metrics",
    "result_payload",
    "serve_main",
    "serve_metrics",
]
