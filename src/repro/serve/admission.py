"""Admission control: per-client token buckets for the service.

The service sheds load at two points: the bounded scheduler queue
(global backpressure — see :mod:`repro.serve.scheduler`) and the
per-client rate limiter here (fairness — one greedy client must not
starve the rest).  Both answer 429 with a ``Retry-After`` hint.

The limiter is a classic token bucket per client key: ``burst`` tokens
capacity, refilled at ``rate`` tokens per second, one token per
request.  Time is injected (``clock``) so the unit tests drive it with
a fake clock and assert exact refill behaviour instead of sleeping.

Client keys are attacker-controlled strings, so the bucket table is
bounded: past ``max_clients`` distinct keys the stalest bucket (the
one whose owner has been quiet longest, i.e. the closest to full) is
evicted.  Evicting a bucket can only ever *grant* a forgotten client a
fresh burst — it never blocks a well-behaved one.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from ..common.errors import ConfigurationError


class TokenBucket:
    """One client's budget: ``burst`` capacity, ``rate`` tokens/second."""

    __slots__ = ("rate", "burst", "tokens", "updated_at")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated_at = now

    def try_take(self, now: float) -> bool:
        """Refill for the elapsed time, then spend one token if possible."""
        elapsed = max(0.0, now - self.updated_at)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated_at = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def seconds_until_token(self) -> float:
        """How long (from ``updated_at``) until one token is available."""
        deficit = 1.0 - self.tokens
        if deficit <= 0.0:
            return 0.0
        return deficit / self.rate


class RateLimiter:
    """Per-client-key token buckets with a bounded table.

    ``rate <= 0`` disables limiting entirely (every request allowed),
    which is the server's default — the limiter is opt-in via
    ``repro-serve --rate``.
    """

    def __init__(
        self,
        rate: float,
        burst: float = 1.0,
        max_clients: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate > 0 and burst < 1.0:
            raise ConfigurationError(f"burst must be >= 1 token: {burst}")
        if max_clients < 1:
            raise ConfigurationError(f"max_clients must be >= 1: {max_clients}")
        self.rate = rate
        self.burst = burst
        self.max_clients = max_clients
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    @property
    def enabled(self) -> bool:
        """True when requests are actually being limited."""
        return self.rate > 0

    def allow(self, client: str) -> bool:
        """Spend one token of *client*'s bucket; False means shed."""
        if not self.enabled:
            return True
        now = self._clock()
        bucket = self._buckets.get(client)
        if bucket is None:
            if len(self._buckets) >= self.max_clients:
                stalest = min(self._buckets, key=lambda k: self._buckets[k].updated_at)
                del self._buckets[stalest]
            bucket = self._buckets[client] = TokenBucket(self.rate, self.burst, now)
        return bucket.try_take(now)

    def retry_after(self, client: str) -> float:
        """Seconds after which *client*'s next request could pass."""
        if not self.enabled:
            return 0.0
        bucket = self._buckets.get(client)
        if bucket is None:
            return 0.0
        return bucket.seconds_until_token()
