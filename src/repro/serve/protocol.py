"""Wire protocol of the simulation service: requests, responses, errors.

A client POSTs one JSON object to ``/simulate`` describing a single
simulation — the same parameters :class:`~repro.runner.planner.SimJob`
carries, plus service-level fields (a client key for rate limiting and
an optional per-request deadline).  Validation happens here, eagerly
and completely, so a malformed request is a clean 400 before it costs
the scheduler anything; everything past this module operates on a
checked :class:`SimRequest`.

Responses are shaped for **bit-identity**: the result payload is the
deterministic :meth:`MetricsRegistry.snapshot` projection of the
:class:`SimulationResult` (wall-clock timings excluded), so the same
configuration served twice — from a worker, the memo, or the disk
cache — renders byte-identical JSON.  Every response also carries a
provenance block derived from the server's
:class:`~repro.obs.manifest.RunManifest` (schema hash, git revision,
run options, engine), answering "which code computed this?" without a
round trip.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from ..common.errors import ConfigurationError, RequestError
from ..hierarchy.config import HierarchyConfig, HierarchyKind
from ..obs.metrics import registry_from_result
from ..runner.planner import SimJob
from ..trace.workloads import workload_names

#: Hierarchy organisations a request may name (the enum's wire values).
KINDS: tuple[str, ...] = tuple(kind.value for kind in HierarchyKind)

#: Upper bound on the trace scale a request may ask for; 1.0 is the
#: paper's full 3.3M-reference trace, already seconds of work per job.
MAX_SCALE = 1.0

#: Fields a ``/simulate`` body may carry (anything else is a 400 — a
#: misspelt knob silently ignored would be worse than an error).
_ALLOWED_FIELDS = frozenset(
    {
        "trace",
        "scale",
        "l1",
        "l2",
        "kind",
        "split_l1",
        "block_size",
        "seed",
        "config_overrides",
        "deadline_s",
        "client",
    }
)


@dataclass(frozen=True)
class SimRequest:
    """One validated ``/simulate`` request.

    The simulation-identity fields mirror :class:`SimJob`; the service
    fields are:

    Attributes:
        deadline_s: how long this client will wait, in seconds.  The
            scheduler bounds both the client's await and the worker's
            wall-clock budget with it; None means "the server default".
        client: rate-limiting key (defaults to ``"anon"``; the server
            prefers the ``X-Client-Key`` header when present).
    """

    trace: str
    scale: float
    l1: str
    l2: str
    kind: HierarchyKind
    split_l1: bool = False
    block_size: int = 16
    seed: int = 0
    config_overrides: tuple[tuple[str, object], ...] = ()
    deadline_s: float | None = None
    client: str = "anon"

    def job(self) -> SimJob:
        """The pool job this request resolves to."""
        return SimJob(
            trace=self.trace,
            scale=self.scale,
            l1=self.l1,
            l2=self.l2,
            kind=self.kind,
            split_l1=self.split_l1,
            block_size=self.block_size,
            seed=self.seed,
            config_overrides=self.config_overrides,
        )


def _field(data: dict[str, Any], name: str, types: tuple[type, ...], default: Any) -> Any:
    value = data.get(name, default)
    if not isinstance(value, types) or isinstance(value, bool) and bool not in types:
        expected = "/".join(t.__name__ for t in types)
        raise RequestError(f"field {name!r} must be {expected}", value=value)
    return value


def parse_request(body: bytes, max_scale: float = MAX_SCALE) -> SimRequest:
    """Validate a ``/simulate`` JSON body into a :class:`SimRequest`.

    Raises :class:`RequestError` (mapped to HTTP 400) on anything a
    client got wrong: bad JSON, unknown fields, an unknown trace or
    hierarchy kind, out-of-range scale, or a geometry the configuration
    layer rejects.  The hierarchy configuration is *built* here (it is
    cheap — no trace, no tag store) so geometry errors surface at
    admission, never inside a worker.
    """
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RequestError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise RequestError("request body must be a JSON object")
    unknown = sorted(set(data) - _ALLOWED_FIELDS)
    if unknown:
        raise RequestError(
            f"unknown request field(s) {unknown}; "
            f"allowed: {sorted(_ALLOWED_FIELDS)}"
        )

    trace = _field(data, "trace", (str,), "pops")
    if trace not in workload_names():
        # file: traces are deliberately not served — a network client
        # must not be able to make the server open arbitrary paths.
        raise RequestError(
            f"unknown trace {trace!r}; choose from {workload_names()}"
        )
    scale = float(_field(data, "scale", (int, float), 0.05))
    if not 0.0 < scale <= max_scale:
        raise RequestError(
            f"scale must be in (0, {max_scale:g}]", value=scale
        )
    kind_name = _field(data, "kind", (str,), "vr")
    try:
        kind = HierarchyKind(kind_name)
    except ValueError:
        raise RequestError(
            f"unknown hierarchy kind {kind_name!r}; choose from {list(KINDS)}"
        ) from None
    l1 = _field(data, "l1", (str,), "4K")
    l2 = _field(data, "l2", (str,), "64K")
    split_l1 = _field(data, "split_l1", (bool,), False)
    block_size = _field(data, "block_size", (int,), 16)
    seed = _field(data, "seed", (int,), 0)

    raw_overrides = _field(data, "config_overrides", (dict,), {})
    for key, value in raw_overrides.items():
        if not isinstance(value, (str, int, float, bool)):
            raise RequestError(
                f"config override {key!r} must be a JSON scalar", value=value
            )
    overrides = tuple(sorted(raw_overrides.items()))

    deadline_raw = data.get("deadline_s")
    deadline_s: float | None = None
    if deadline_raw is not None:
        deadline_s = float(_field(data, "deadline_s", (int, float), 0.0))
        if deadline_s <= 0.0:
            raise RequestError("deadline_s must be > 0", value=deadline_s)
    client = _field(data, "client", (str,), "anon") or "anon"

    # Build (and discard) the hierarchy configuration: this is where
    # bad sizes, bad block sizes and bad overrides are diagnosed.
    try:
        HierarchyConfig.sized(
            l1,
            l2,
            block_size=block_size,
            kind=kind,
            split_l1=split_l1,
            **dict(overrides),
        )
    except ConfigurationError as exc:
        raise RequestError(f"bad hierarchy configuration: {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise RequestError(f"bad configuration override: {exc}") from exc

    return SimRequest(
        trace=trace,
        scale=scale,
        l1=l1,
        l2=l2,
        kind=kind,
        split_l1=split_l1,
        block_size=block_size,
        seed=seed,
        config_overrides=overrides,
        deadline_s=deadline_s,
        client=client,
    )


# -- service-level rejections ------------------------------------------------


class ServeRejection(Exception):
    """A request the service declines to run, with its HTTP shape.

    Subclasses fix the status code and machine-readable reason; the
    optional ``retry_after_s`` becomes a ``Retry-After`` header so
    well-behaved clients back off instead of hammering a shedding or
    degraded server.
    """

    status = 503
    reason = "unavailable"

    def __init__(self, detail: str, retry_after_s: float | None = None) -> None:
        super().__init__(detail)
        self.detail = detail
        self.retry_after_s = retry_after_s


class QueueFullError(ServeRejection):
    """The admission queue is full: shed with 429 + Retry-After."""

    status = 429
    reason = "queue_full"


class RateLimitedError(ServeRejection):
    """The client's token bucket is empty: 429 + Retry-After."""

    status = 429
    reason = "rate_limited"


class DegradedError(ServeRejection):
    """Breaker open: cache-only mode, misses refused with 503."""

    status = 503
    reason = "degraded"


class DrainingError(ServeRejection):
    """The server is draining for shutdown: new misses refused."""

    status = 503
    reason = "draining"


class DeadlineExceededError(ServeRejection):
    """The request's deadline expired before a result: 504."""

    status = 504
    reason = "deadline_exceeded"


class JobFailedError(ServeRejection):
    """The simulation was quarantined or timed out server-side: 500."""

    status = 500
    reason = "job_failed"


# -- response shaping --------------------------------------------------------


def result_payload(result: Any) -> dict[str, Any]:
    """The deterministic JSON body for one simulation result.

    Uses the unified metrics projection (counters and histograms only;
    wall-clock timers are nondeterministic and excluded), so a cached
    and a freshly computed result for the same configuration serialise
    byte-identically.
    """
    snapshot = registry_from_result(result).snapshot()
    return {
        "refs_processed": result.refs_processed,
        "h1": round(result.h1, 10),
        "h2": round(result.h2, 10),
        "counters": snapshot["counters"],
        "histograms": snapshot["histograms"],
    }


def error_payload(status: int, reason: str, detail: str) -> dict[str, Any]:
    """The JSON body every non-2xx response carries."""
    return {"error": reason, "status": status, "detail": detail}
