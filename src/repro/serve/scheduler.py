"""The serving scheduler: coalesce, batch, execute, degrade.

One :class:`ServeScheduler` sits between the HTTP layer and the
supervised worker pool.  Each admitted request follows the pipeline:

1. **Coalesce** — requests are identified by the same digest the
   supervisor journals under (``key_digest(job.key())``); a request
   whose digest is already in flight joins that entry's future instead
   of becoming new work, so a stampede of identical configurations
   costs one simulation.
2. **Cache** — the in-process memo and the schema-hash-versioned disk
   cache are probed (off the event loop) before any queueing; hits
   return immediately and are byte-identical to computed results.
3. **Schedule** — true misses enter a bounded queue (full ⇒ 429 with
   ``Retry-After``); a batching loop drains it — up to ``batch_max``
   entries per ``batch_window_s`` — and runs each batch through
   :func:`repro.runner.run_jobs` under the fault-tolerant supervisor,
   injecting each entry's client deadline as its per-job wall-clock
   budget and resolving futures the moment the supervisor reports a
   terminal outcome.
4. **Degrade** — repeated pool rebuilds trip the circuit breaker
   (:mod:`repro.serve.breaker`): misses are refused with 503 while
   cache hits and coalesced joins keep serving, and a half-open probe
   batch decides recovery.

All scheduler state is confined to the event-loop thread; the
supervisor runs in a worker thread and reports back through
``call_soon_threadsafe``.  Delivered results are evicted from the
in-process memo (:func:`repro.experiments.base.forget_memo`) so a
long-lived server's memory stays bounded — the disk cache, not the
memo, is the service's store of record.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, replace

from ..experiments import base
from ..faults.chaos import ChaosConfig
from ..obs import MetricsRegistry, get_logger, get_tracer
from ..runner.disk_cache import get_cache, key_digest
from ..runner.planner import SimJob
from ..runner.pool import RunReport, run_jobs
from ..runner.supervisor import SupervisorConfig
from ..system.multiprocessor import SimulationResult
from .breaker import CircuitBreaker
from .protocol import (
    DeadlineExceededError,
    DegradedError,
    DrainingError,
    JobFailedError,
    QueueFullError,
    ServeRejection,
    SimRequest,
)

logger = get_logger("serve.scheduler")

#: How a request was satisfied (the response's ``source`` field).
SOURCE_CACHED = "cache"
SOURCE_COALESCED = "coalesced"
SOURCE_COMPUTED = "computed"


# -- service-level metrics ---------------------------------------------------

_metrics = MetricsRegistry()


def serve_metrics() -> MetricsRegistry:
    """The service's own counters (``serve.*``), for this process."""
    return _metrics


def reset_serve_metrics() -> None:
    """Forget all service counters (tests use this)."""
    global _metrics
    _metrics = MetricsRegistry()


@dataclass(frozen=True)
class SchedulerConfig:
    """Policy knobs for one :class:`ServeScheduler`.

    Attributes:
        n_workers: worker processes per executed batch.
        queue_limit: admitted-but-unscheduled entries before shedding.
        batch_window_s: how long the batcher waits to fill a batch
            after its first entry arrives.
        batch_max: entries per executed batch.
        default_deadline_s: deadline applied to requests that do not
            carry their own; None means unbounded.
        retry_after_s: the ``Retry-After`` hint on shed responses.
    """

    n_workers: int = 2
    queue_limit: int = 64
    batch_window_s: float = 0.05
    batch_max: int = 16
    default_deadline_s: float | None = None
    retry_after_s: float = 1.0


class _Inflight:
    """One unique configuration being computed, shared by its waiters."""

    __slots__ = ("job", "digest", "future", "deadline_s", "unbounded", "waiters")

    def __init__(
        self,
        job: SimJob,
        digest: str,
        future: "asyncio.Future[SimulationResult]",
        deadline_s: float | None,
    ) -> None:
        self.job = job
        self.digest = digest
        self.future = future
        self.deadline_s = deadline_s
        self.unbounded = deadline_s is None
        self.waiters = 1

    def widen(self, deadline_s: float | None) -> None:
        """Grow the job budget to cover a newly coalesced waiter.

        Best-effort: once the batch holding this entry has launched,
        the supervisor already holds the budget it was given.
        """
        self.waiters += 1
        if deadline_s is None:
            self.unbounded = True
        elif not self.unbounded and (
            self.deadline_s is None or deadline_s > self.deadline_s
        ):
            self.deadline_s = deadline_s


def _retrieve(future: "asyncio.Future[SimulationResult]") -> None:
    # Touch the exception so a future whose every waiter timed out
    # does not log "exception was never retrieved" at GC time.
    if not future.cancelled():
        future.exception()


class ServeScheduler:
    """Owns coalescing, batching, execution and degradation for a server."""

    def __init__(
        self,
        options: base.RunOptions,
        supervisor: SupervisorConfig,
        config: SchedulerConfig | None = None,
        breaker: CircuitBreaker | None = None,
        runner=run_jobs,
    ) -> None:
        self._options = options
        self._supervisor = supervisor
        self._cfg = config if config is not None else SchedulerConfig()
        self._breaker = breaker if breaker is not None else CircuitBreaker()
        self._runner = runner
        self._disk = (
            get_cache(options.cache_dir) if options.cache_dir is not None else None
        )
        self._inflight: dict[str, _Inflight] = {}
        self._queue: asyncio.Queue[_Inflight] | None = None
        self._task: asyncio.Task[None] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._draining = False
        self._chaos: ChaosConfig | None = supervisor.chaos
        tracer = get_tracer()
        self._tr_serve = (
            tracer if tracer is not None and tracer.wants("serve") else None
        )

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Install run options and start the batching loop."""
        self._loop = asyncio.get_running_loop()
        base.set_run_options(self._options)
        self._queue = asyncio.Queue(maxsize=self._cfg.queue_limit)
        self._task = asyncio.create_task(self._run_batches(), name="serve-batcher")
        self._task.add_done_callback(self._on_batcher_done)

    async def drain(self) -> None:
        """Stop admitting misses, finish everything in flight, stop.

        Cache hits and coalesced joins keep serving while the queue
        empties; when the last in-flight entry settles the batching
        loop is cancelled.  Idempotent.
        """
        self._draining = True
        while self._inflight and not (self._task is None or self._task.done()):
            await asyncio.sleep(0.02)
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            except Exception:
                pass  # already logged and settled by _on_batcher_done
            self._task = None
            _metrics.inc("serve.drained")
            if self._tr_serve is not None:
                self._tr_serve.emit("serve", "drain")

    def _on_batcher_done(self, task: "asyncio.Task[None]") -> None:
        """Never let the batching loop die silently.

        A cancelled task is the normal drain path; any other exit means
        a bug escaped :meth:`_run_batches`.  Every in-flight entry would
        otherwise hang its waiters forever (and wedge :meth:`drain`), so
        they are failed here, which also empties ``self._inflight``.
        """
        if task.cancelled():
            return
        exc = task.exception()
        if exc is None:
            return
        logger.error(
            "serve-batcher task died unexpectedly; failing %d in-flight "
            "entries",
            len(self._inflight),
            exc_info=exc,
        )
        _metrics.inc("serve.batcher_died")
        rejection = JobFailedError(f"scheduler batching loop died: {exc!r}")
        for entry in list(self._inflight.values()):
            self._resolve_error(entry, rejection)

    # -- introspection (healthz / readyz) --------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def breaker(self) -> CircuitBreaker:
        return self._breaker

    def stats(self) -> dict[str, object]:
        """A point-in-time health view for the ``/healthz`` endpoint."""
        return {
            "draining": self._draining,
            "breaker": self._breaker.state.value,
            "inflight": len(self._inflight),
            "queued": self._queue.qsize() if self._queue is not None else 0,
            "queue_limit": self._cfg.queue_limit,
        }

    def set_chaos(self, chaos: ChaosConfig | None) -> None:
        """Swap the chaos config applied to future batches (drills)."""
        self._chaos = chaos

    # -- admission -------------------------------------------------------------

    async def submit(self, request: SimRequest) -> tuple[str, SimulationResult]:
        """Resolve one request to ``(source, result)`` or a rejection.

        Raises a :class:`~repro.serve.protocol.ServeRejection` subclass
        for every declined or failed request; the HTTP layer maps those
        onto status codes.
        """
        if self._queue is None:
            raise RuntimeError("scheduler not started")
        job = request.job()
        digest = key_digest(job.key())
        deadline_s = (
            request.deadline_s
            if request.deadline_s is not None
            else self._cfg.default_deadline_s
        )

        entry = self._inflight.get(digest)
        if entry is not None:
            return await self._join(entry, deadline_s)

        cached = await asyncio.to_thread(self._probe_cache, job)
        # The probe yielded the loop: an identical request may have been
        # admitted meanwhile, and coalescing beats racing it.
        entry = self._inflight.get(digest)
        if entry is not None:
            return await self._join(entry, deadline_s)
        if cached is not None:
            _metrics.inc("serve.cache_hit")
            return SOURCE_CACHED, cached

        if self._draining:
            raise DrainingError("server is draining; no new work admitted")
        if self._queue.full():
            _metrics.inc("serve.shed")
            if self._tr_serve is not None:
                self._tr_serve.emit("serve", "shed", job=digest)
            raise QueueFullError(
                f"admission queue full ({self._cfg.queue_limit} entries)",
                retry_after_s=self._cfg.retry_after_s,
            )
        if not self._breaker.admits():
            _metrics.inc("serve.degraded")
            if self._tr_serve is not None:
                self._tr_serve.emit("serve", "degraded", job=digest)
            raise DegradedError(
                "workers unhealthy (circuit breaker open); "
                "only cached results are being served",
                retry_after_s=self._breaker.retry_after() or self._cfg.retry_after_s,
            )

        assert self._loop is not None
        entry = _Inflight(job, digest, self._loop.create_future(), deadline_s)
        entry.future.add_done_callback(_retrieve)
        self._queue.put_nowait(entry)
        self._inflight[digest] = entry
        _metrics.inc("serve.admitted")
        if self._tr_serve is not None:
            self._tr_serve.emit(
                "serve", "admit", job=digest, deadline_s=deadline_s
            )
        return SOURCE_COMPUTED, await self._await_entry(entry, deadline_s)

    async def _join(
        self, entry: _Inflight, deadline_s: float | None
    ) -> tuple[str, SimulationResult]:
        entry.widen(deadline_s)
        _metrics.inc("serve.coalesced")
        if self._tr_serve is not None:
            self._tr_serve.emit(
                "serve", "coalesce", job=entry.digest, waiters=entry.waiters
            )
        return SOURCE_COALESCED, await self._await_entry(entry, deadline_s)

    async def _await_entry(
        self, entry: _Inflight, deadline_s: float | None
    ) -> SimulationResult:
        # Shielded: one waiter's deadline must not cancel the shared
        # computation other waiters (or the cache) still want.
        try:
            return await asyncio.wait_for(
                asyncio.shield(entry.future), deadline_s
            )
        # asyncio.TimeoutError is only aliased to the builtin on 3.11+;
        # the tuple keeps 3.10 correct and is a no-op duplicate later.
        except (TimeoutError, asyncio.TimeoutError):
            _metrics.inc("serve.deadline_exceeded")
            raise DeadlineExceededError(
                f"no result within the {deadline_s:g}s deadline",
                retry_after_s=self._cfg.retry_after_s,
            ) from None

    # -- cache -----------------------------------------------------------------

    def _probe_cache(self, job: SimJob) -> SimulationResult | None:
        """Memo, then disk.  Runs off the event loop (disk I/O).

        Deliberately does *not* seed the memo on a disk hit: repeats
        are cheap to re-load and the memo must stay bounded.
        """
        key = job.key()
        result = base.memo_get(key)
        if result is not None:
            return result
        if self._disk is not None:
            return self._disk.load(base.disk_key(key, self._options))
        return None

    # -- the batching loop -----------------------------------------------------

    async def _run_batches(self) -> None:
        assert self._queue is not None and self._loop is not None
        while True:
            entry = await self._queue.get()
            batch = [entry]
            window_ends = self._loop.time() + self._cfg.batch_window_s
            while len(batch) < self._cfg.batch_max:
                remaining = window_ends - self._loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except (TimeoutError, asyncio.TimeoutError):
                    break

            if not self._breaker.allow():
                # Opened while these entries sat queued: settle them
                # deterministically instead of burning a doomed batch.
                rejection = DegradedError(
                    "workers unhealthy (circuit breaker open)",
                    retry_after_s=self._breaker.retry_after()
                    or self._cfg.retry_after_s,
                )
                for entry in batch:
                    self._resolve_error(entry, rejection)
                continue

            opened_before = self._breaker.opened
            recovered_before = self._breaker.recovered
            try:
                report = await asyncio.to_thread(self._execute_batch, batch)
            except Exception as exc:  # the supervisor itself failed
                logger.exception("batch execution failed")
                self._breaker.record(1)
                for entry in batch:
                    self._resolve_error(
                        entry, JobFailedError(f"batch execution failed: {exc!r}")
                    )
            else:
                self._breaker.record(report.pool_rebuilds)
                self._settle_batch(batch, report)
            if self._breaker.opened > opened_before:
                _metrics.inc("serve.breaker_open")
                logger.warning(
                    "circuit breaker OPEN after repeated pool rebuilds; "
                    "serving cache-only for %.1fs",
                    self._breaker.cooldown_s,
                )
                if self._tr_serve is not None:
                    self._tr_serve.emit(
                        "serve", "breaker_open", opened=self._breaker.opened
                    )
            if self._breaker.recovered > recovered_before:
                _metrics.inc("serve.breaker_recovered")
                logger.info("circuit breaker recovered (probe batch clean)")
                if self._tr_serve is not None:
                    self._tr_serve.emit(
                        "serve",
                        "breaker_close",
                        recovered=self._breaker.recovered,
                    )

    def _execute_batch(self, batch: list[_Inflight]) -> RunReport:
        """Run one batch under the supervisor (worker-thread side)."""
        deadlines = {
            entry.digest: entry.deadline_s
            for entry in batch
            if not entry.unbounded and entry.deadline_s is not None
        }
        loop = self._loop
        assert loop is not None

        def hook(digest: str, outcome: str) -> None:
            loop.call_soon_threadsafe(self._on_outcome, digest, outcome)

        config = replace(
            self._supervisor,
            job_deadline_s=deadlines or None,
            on_outcome=hook,
            chaos=self._chaos,
        )
        return self._runner(
            [entry.job for entry in batch],
            self._cfg.n_workers,
            supervisor=config,
        )

    # -- settlement (event-loop side) ------------------------------------------

    def _on_outcome(self, digest: str, outcome: str) -> None:
        """Supervisor callback: settle *digest* as soon as it is known."""
        entry = self._inflight.get(digest)
        if entry is None or entry.future.done():
            return
        self._settle_entry(entry, outcome)

    def _settle_batch(self, batch: list[_Inflight], report: RunReport) -> None:
        """Settle anything the per-outcome hook did not already cover.

        The hook only fires for supervised (pending) jobs; entries that
        resolved from the disk cache inside ``run_jobs`` are settled
        here, as is anything lost to a supervisor crash.
        """
        for entry in batch:
            if not entry.future.done():
                outcome = report.outcomes.get(entry.digest)
                self._settle_entry(entry, outcome)

    def _settle_entry(self, entry: _Inflight, outcome: str | None) -> None:
        if outcome in (None, "ok", "retried"):
            result = base.memo_get(entry.job.key())
            if result is not None:
                self._resolve_result(entry, result)
                return
            outcome = outcome or "missing"
        if outcome == "timed_out":
            _metrics.inc("serve.deadline_exceeded")
            self._resolve_error(
                entry,
                DeadlineExceededError(
                    "job exceeded its wall-clock budget",
                    retry_after_s=self._cfg.retry_after_s,
                ),
            )
        else:
            self._resolve_error(
                entry,
                JobFailedError(f"simulation did not complete (outcome: {outcome})"),
            )

    def _resolve_result(self, entry: _Inflight, result: SimulationResult) -> None:
        if not entry.future.done():
            entry.future.set_result(result)
            _metrics.inc("serve.completed")
        self._inflight.pop(entry.digest, None)
        # Bounded service memory: waiters hold the result object; the
        # disk cache answers repeats.
        base.forget_memo(entry.job.key())

    def _resolve_error(self, entry: _Inflight, exc: ServeRejection) -> None:
        if not entry.future.done():
            entry.future.set_exception(exc)
            if isinstance(exc, JobFailedError):
                _metrics.inc("serve.failed")
        self._inflight.pop(entry.digest, None)
