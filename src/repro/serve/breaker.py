"""The service circuit breaker: cache-only mode when workers keep dying.

A worker pool that breaks once is routine — the supervisor rebuilds it
and retries (see :mod:`repro.runner.supervisor`).  A pool that breaks
*repeatedly* means something environmental (OOM killer, a poisoned
native extension, a full disk) and every new simulation admitted is a
request that will burn a rebuild and fail anyway.  The breaker watches
pool-rebuild events and, past a threshold inside a sliding window,
**opens**: the scheduler stops admitting cache misses (clients get 503
``degraded`` with a Retry-After) while cache hits and coalesced joins
keep flowing — the service degrades to read-only instead of thrashing.

After ``cooldown_s`` the breaker moves to **half-open** and grants
exactly one probe batch; a clean probe (no rebuilds) closes the
breaker, a dirty one reopens it and restarts the cooldown.  The clock
is injected so tests drive all three states deterministically.
"""

from __future__ import annotations

import enum
import time
from collections import deque
from collections.abc import Callable

from ..common.errors import ConfigurationError


class BreakerState(enum.Enum):
    """Where the breaker is in its closed → open → half-open cycle."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Opens after *threshold* pool rebuilds inside *window_s* seconds.

    Attributes:
        state: the current :class:`BreakerState`.
        opened: how many times the breaker has opened (ever).
        recovered: how many times a probe closed it again.
    """

    def __init__(
        self,
        threshold: int = 3,
        window_s: float = 60.0,
        cooldown_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ConfigurationError(f"threshold must be >= 1: {threshold}")
        if window_s <= 0 or cooldown_s <= 0:
            raise ConfigurationError(
                f"window_s and cooldown_s must be > 0: {window_s}, {cooldown_s}"
            )
        self.threshold = threshold
        self.window_s = window_s
        self.cooldown_s = cooldown_s
        self._clock = clock
        self.state = BreakerState.CLOSED
        self.opened = 0
        self.recovered = 0
        self._events: deque[float] = deque()
        self._opened_at = 0.0
        self._probe_granted = False

    def _prune(self, now: float) -> None:
        while self._events and now - self._events[0] > self.window_s:
            self._events.popleft()

    def _open(self, now: float) -> None:
        self.state = BreakerState.OPEN
        self._opened_at = now
        self._probe_granted = False
        self.opened += 1

    def admits(self) -> bool:
        """Non-consuming admission view: could new work eventually run?

        The admission path asks this (a rejected request must not burn
        the probe token); only the batch executor calls :meth:`allow`,
        which actually consumes the half-open probe.
        """
        now = self._clock()
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            return now - self._opened_at >= self.cooldown_s
        return not self._probe_granted

    def allow(self) -> bool:
        """May the scheduler run new (uncached) work right now?

        Closed: yes.  Open: no, until ``cooldown_s`` has passed — then
        the breaker half-opens and grants exactly one probe; further
        calls say no until :meth:`record` settles that probe.
        """
        now = self._clock()
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now - self._opened_at < self.cooldown_s:
                return False
            self.state = BreakerState.HALF_OPEN
            self._probe_granted = True
            return True
        # Half-open: the single probe is either in flight (granted and
        # unsettled) or was granted and must settle before another.
        if self._probe_granted:
            return False
        self._probe_granted = True
        return True

    def record(self, pool_rebuilds: int) -> None:
        """Account one executed batch: *pool_rebuilds* it cost.

        Call after every batch the scheduler actually ran.  Rebuilds
        push the breaker toward open (immediately, from half-open); a
        clean batch closes a half-open breaker.
        """
        now = self._clock()
        if pool_rebuilds > 0:
            self._events.extend([now] * pool_rebuilds)
            self._prune(now)
            if self.state is BreakerState.HALF_OPEN or (
                self.state is BreakerState.CLOSED
                and len(self._events) >= self.threshold
            ):
                self._open(now)
            return
        if self.state is BreakerState.HALF_OPEN:
            self.state = BreakerState.CLOSED
            self._events.clear()
            self._probe_granted = False
            self.recovered += 1

    def retry_after(self) -> float:
        """Seconds until an open breaker would grant a probe."""
        if self.state is not BreakerState.OPEN:
            return 0.0
        return max(0.0, self.cooldown_s - (self._clock() - self._opened_at))
