"""``repro-serve``: the asyncio HTTP front end of the simulation service.

A deliberately small HTTP/1.1 layer over :mod:`asyncio` streams — no
framework, no new dependencies, one connection per request
(``Connection: close``), JSON in and out.  Endpoints:

* ``POST /simulate`` — run (or fetch) one simulation; the body is a
  :func:`repro.serve.protocol.parse_request` JSON object.  Responses
  carry the deterministic result payload, the job digest, and a
  provenance block (schema hash, git revision, run options, engine).
* ``GET /healthz`` — liveness plus scheduler stats (always 200).
* ``GET /readyz`` — readiness: 200 while admitting, 503 once draining
  or when the admission queue is full.
* ``GET /metricz`` — merged ``serve.*`` + ``runner.*`` counters.
* ``POST /chaosz`` — swap the live chaos config (only with
  ``--allow-chaos``; drills use it to break and heal the worker pool).

Shutdown discipline: SIGTERM or SIGINT flips the server into draining
mode — ``/readyz`` goes 503, new cache misses are refused with 503
``draining`` — in-flight work finishes and is journalled, queued
responses are delivered, metrics are flushed to ``--metrics-out``, and
the process exits 0.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from pathlib import Path
from typing import Any

from ..common.errors import ConfigurationError, RequestError
from ..experiments.base import RunOptions
from ..faults.chaos import ChaosConfig
from ..obs import RunManifest, configure, get_logger
from ..runner.disk_cache import default_cache_dir, key_digest
from ..runner.supervisor import SupervisorConfig, runner_metrics
from .admission import RateLimiter
from .breaker import CircuitBreaker
from .protocol import (
    RateLimitedError,
    ServeRejection,
    error_payload,
    parse_request,
    result_payload,
)
from .scheduler import SchedulerConfig, ServeScheduler, serve_metrics

logger = get_logger("serve.server")

#: Request framing limits: a simulate body is a few hundred bytes, so
#: these are generous without letting a client balloon server memory.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 64 * 1024
READ_TIMEOUT_S = 30.0

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _render_response(
    status: int, payload: dict[str, Any], extra_headers: dict[str, str] | None = None
) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Parse one HTTP/1.1 request; None when the client sent nothing usable."""
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), READ_TIMEOUT_S
        )
    except (
        asyncio.IncompleteReadError,
        asyncio.LimitOverrunError,
        TimeoutError,
        asyncio.TimeoutError,  # distinct from builtin TimeoutError on 3.10
        ConnectionError,
    ):
        return None
    if len(head) > MAX_HEADER_BYTES:
        return None
    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        method, path, _version = request_line.split(" ", 2)
    except ValueError:
        return None
    headers: dict[str, str] = {}
    for line in header_lines:
        if ":" in line:
            name, value = line.split(":", 1)
            headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            return None
        if n < 0 or n > MAX_BODY_BYTES:
            return None
        try:
            body = await asyncio.wait_for(reader.readexactly(n), READ_TIMEOUT_S)
        except (
            asyncio.IncompleteReadError,
            TimeoutError,
            asyncio.TimeoutError,
            ConnectionError,
        ):
            return None
    # Query strings are not part of this API; strip them for routing.
    path = path.split("?", 1)[0]
    return method.upper(), path, headers, body


class ServeApp:
    """Routes HTTP requests into the scheduler; owns no policy itself."""

    def __init__(
        self,
        scheduler: ServeScheduler,
        limiter: RateLimiter,
        provenance: dict[str, Any],
        allow_chaos: bool = False,
    ) -> None:
        self.scheduler = scheduler
        self.limiter = limiter
        self.provenance = provenance
        self.allow_chaos = allow_chaos

    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            parsed = await _read_request(reader)
            if parsed is None:
                return
            method, path, headers, body = parsed
            response = await self._dispatch(method, path, headers, body)
            writer.write(response)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception:
            logger.exception("unhandled error serving a connection")
            with_suppress_write(
                writer,
                _render_response(
                    500, error_payload(500, "internal", "internal server error")
                ),
            )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, method: str, path: str, headers: dict[str, str], body: bytes
    ) -> bytes:
        if path == "/simulate":
            if method != "POST":
                return _render_response(
                    405, error_payload(405, "method_not_allowed", "POST only")
                )
            return await self._simulate(headers, body)
        if path == "/healthz":
            return self._healthz()
        if path == "/readyz":
            return self._readyz()
        if path == "/metricz":
            return self._metricz()
        if path == "/chaosz":
            if method != "POST":
                return _render_response(
                    405, error_payload(405, "method_not_allowed", "POST only")
                )
            return self._chaosz(body)
        return _render_response(
            404, error_payload(404, "not_found", f"no route for {path}")
        )

    # -- endpoints -------------------------------------------------------------

    async def _simulate(self, headers: dict[str, str], body: bytes) -> bytes:
        try:
            request = parse_request(body)
        except RequestError as exc:
            return _render_response(
                400, error_payload(400, "bad_request", str(exc))
            )
        client = headers.get("x-client-key") or request.client
        if not self.limiter.allow(client):
            serve_metrics().inc("serve.rate_limited")
            rejection = RateLimitedError(
                f"client {client!r} is over its request rate",
                retry_after_s=self.limiter.retry_after(client),
            )
            return self._rejected(rejection)
        digest = key_digest(request.job().key())
        try:
            source, result = await self.scheduler.submit(request)
        except ServeRejection as exc:
            return self._rejected(exc)
        payload = {
            "source": source,
            "digest": digest,
            "result": result_payload(result),
            "provenance": self.provenance,
        }
        return _render_response(200, payload)

    def _rejected(self, exc: ServeRejection) -> bytes:
        headers: dict[str, str] = {}
        if exc.retry_after_s is not None:
            headers["Retry-After"] = str(max(1, round(exc.retry_after_s)))
        return _render_response(
            exc.status,
            error_payload(exc.status, exc.reason, exc.detail),
            headers,
        )

    def _healthz(self) -> bytes:
        stats = self.scheduler.stats()
        stats["status"] = "draining" if self.scheduler.draining else "ok"
        return _render_response(200, stats)

    def _readyz(self) -> bytes:
        stats = self.scheduler.stats()
        if self.scheduler.draining:
            return _render_response(
                503, error_payload(503, "draining", "server is draining")
            )
        queued = stats.get("queued", 0)
        limit = stats.get("queue_limit", 0)
        if isinstance(limit, int) and limit > 0 and queued >= limit:
            return _render_response(
                503,
                error_payload(
                    503, "saturated", "admission queue is full (shedding)"
                ),
            )
        return _render_response(200, {"ready": True, **stats})

    def _metricz(self) -> bytes:
        merged = serve_metrics().snapshot()
        runner = runner_metrics().snapshot()
        for name, value in runner["counters"].items():
            merged["counters"][name] = value
        merged["counters"] = dict(sorted(merged["counters"].items()))
        return _render_response(200, merged)

    def _chaosz(self, body: bytes) -> bytes:
        if not self.allow_chaos:
            return _render_response(
                404, error_payload(404, "not_found", "chaos endpoint disabled")
            )
        try:
            data = json.loads(body.decode("utf-8")) if body.strip() else {}
            if not isinstance(data, dict):
                raise RequestError("chaos body must be a JSON object")
            chaos = ChaosConfig(**data) if data else None
        except (RequestError, ConfigurationError, TypeError, ValueError) as exc:
            return _render_response(
                400, error_payload(400, "bad_request", f"bad chaos config: {exc}")
            )
        self.scheduler.set_chaos(chaos if chaos is not None and chaos.active else None)
        active = chaos is not None and chaos.active
        logger.warning("chaos config %s via /chaosz", "armed" if active else "cleared")
        return _render_response(200, {"chaos": active})


def with_suppress_write(writer: asyncio.StreamWriter, data: bytes) -> None:
    """Best-effort write on an error path (the peer may be gone)."""
    try:
        writer.write(data)
    except (ConnectionError, RuntimeError):
        pass


# -- wiring and lifecycle ----------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve cache simulations over HTTP/JSON with request "
            "coalescing, a result cache, admission control and "
            "graceful degradation."
        ),
    )
    net = parser.add_argument_group("network")
    net.add_argument("--host", default="127.0.0.1", help="bind address")
    net.add_argument(
        "--port", type=int, default=8642, help="TCP port (0 = ephemeral)"
    )
    net.add_argument(
        "--port-file",
        metavar="PATH",
        default=None,
        help="write the bound port here once listening (for test drivers)",
    )
    work = parser.add_argument_group("execution")
    work.add_argument(
        "--jobs", type=int, default=2, help="worker processes per batch"
    )
    work.add_argument(
        "--engine",
        choices=("object", "soa"),
        default="object",
        help="replay core to serve results from",
    )
    work.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persistent result cache root (default: the repo cache)",
    )
    work.add_argument(
        "--no-cache", action="store_true", help="disable the disk cache"
    )
    work.add_argument(
        "--job-timeout",
        type=float,
        metavar="S",
        default=120.0,
        help="server-side wall-clock budget per job (0 disables)",
    )
    work.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="failed-job retries before quarantine",
    )
    work.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="run journal path (default: <cache-dir>/serve-journal.jsonl)",
    )
    work.add_argument(
        "--quarantine-dir",
        metavar="DIR",
        default=None,
        help="failure-record directory (default: <cache-dir>/quarantine)",
    )
    adm = parser.add_argument_group("admission and degradation")
    adm.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        metavar="N",
        help="admitted-but-unscheduled requests before 429 shedding",
    )
    adm.add_argument(
        "--batch-window",
        type=float,
        default=0.05,
        metavar="S",
        help="how long the batcher waits to fill a batch",
    )
    adm.add_argument(
        "--batch-max", type=int, default=8, metavar="N", help="jobs per batch"
    )
    adm.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="default per-request deadline when the client sends none",
    )
    adm.add_argument(
        "--rate",
        type=float,
        default=0.0,
        metavar="R",
        help="per-client request rate limit, tokens/second (0 = off)",
    )
    adm.add_argument(
        "--burst",
        type=float,
        default=5.0,
        metavar="B",
        help="per-client burst size for the rate limiter",
    )
    adm.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        metavar="N",
        help="pool rebuilds inside the window before the breaker opens",
    )
    adm.add_argument(
        "--breaker-window",
        type=float,
        default=30.0,
        metavar="S",
        help="sliding window for counting pool rebuilds",
    )
    adm.add_argument(
        "--breaker-cooldown",
        type=float,
        default=5.0,
        metavar="S",
        help="how long an open breaker waits before probing",
    )
    obs = parser.add_argument_group("observability")
    obs.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the merged metrics snapshot here on shutdown",
    )
    obs.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
    )
    obs.add_argument(
        "--sanitize",
        action="store_true",
        help="install the event-loop stall watchdog (dumps the loop "
        "thread's stack and counts serve.loop_stall on stalls)",
    )
    parser.add_argument(
        "--allow-chaos",
        action="store_true",
        help="enable POST /chaosz (fault drills only; never in production)",
    )
    return parser


def _build_app(args: argparse.Namespace) -> tuple[ServeApp, ServeScheduler]:
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    options = RunOptions(cache_dir=cache_dir, engine=args.engine)
    journal = args.journal
    quarantine = args.quarantine_dir
    if cache_dir is not None:
        if journal is None:
            journal = str(Path(cache_dir) / "serve-journal.jsonl")
        if quarantine is None:
            quarantine = str(Path(cache_dir) / "quarantine")
    supervisor = SupervisorConfig(
        max_attempts=max(1, args.retries + 1),
        job_timeout_s=args.job_timeout if args.job_timeout > 0 else None,
        journal_path=journal,
        quarantine_dir=quarantine,
    )
    breaker = CircuitBreaker(
        threshold=args.breaker_threshold,
        window_s=args.breaker_window,
        cooldown_s=args.breaker_cooldown,
    )
    scheduler = ServeScheduler(
        options,
        supervisor,
        SchedulerConfig(
            n_workers=max(1, args.jobs),
            queue_limit=args.queue_limit,
            batch_window_s=args.batch_window,
            batch_max=args.batch_max,
            default_deadline_s=args.deadline,
        ),
        breaker=breaker,
    )
    limiter = RateLimiter(rate=args.rate, burst=args.burst)
    manifest = RunManifest.create(experiments=["serve"], scale=0.0, options=options)
    provenance = {
        "schema": manifest.schema_hash,
        "git_rev": manifest.git_rev,
        "python": manifest.python,
        "engine": options.engine,
        "options": manifest.options,
    }
    app = ServeApp(
        scheduler, limiter, provenance, allow_chaos=args.allow_chaos
    )
    return app, scheduler


def _flush_metrics(path: str | None) -> None:
    if path is None:
        return
    merged = serve_metrics().snapshot()
    for name, value in runner_metrics().snapshot()["counters"].items():
        merged["counters"][name] = value
    merged["counters"] = dict(sorted(merged["counters"].items()))
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


async def serve_main(args: argparse.Namespace) -> int:
    # Off-loop: building the app reads every schema source file and
    # shells out for the git revision — blocking I/O that must not run
    # on the loop even during startup (repro-sanitize RPS201).
    app, scheduler = await asyncio.to_thread(_build_app, args)
    await scheduler.start()
    watchdog = None
    if args.sanitize:
        from ..analysis.runtime import LoopStallWatchdog

        watchdog = LoopStallWatchdog(
            asyncio.get_running_loop(), registry=serve_metrics()
        )
        watchdog.start()
    try:
        server = await asyncio.start_server(app.handle, args.host, args.port)
    except OSError as exc:
        logger.error("cannot bind %s:%d: %s", args.host, args.port, exc)
        if watchdog is not None:
            watchdog.stop()
        return 1
    port = server.sockets[0].getsockname()[1]
    if args.port_file:
        await asyncio.to_thread(
            Path(args.port_file).write_text, f"{port}\n", encoding="utf-8"
        )
    logger.info(
        "repro-serve listening on %s:%d (workers=%d, cache=%s)",
        args.host,
        port,
        max(1, args.jobs),
        "off" if args.no_cache else "on",
    )

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    await stop.wait()

    logger.info("shutdown signal received: draining")
    await scheduler.drain()
    # In-flight handlers already hold their results; one loop tick lets
    # them flush before the listener goes away.
    await asyncio.sleep(0.05)
    server.close()
    await server.wait_closed()
    if watchdog is not None:
        watchdog.stop()
    await asyncio.to_thread(_flush_metrics, args.metrics_out)
    logger.info("drained cleanly; exiting")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure(args.log_level)
    try:
        return asyncio.run(serve_main(args))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
