"""Shared utilities: sizes, errors, counters."""

from .errors import (
    BusFaultError,
    CheckpointError,
    ConfigurationError,
    InclusionError,
    IntegrityError,
    ProtocolError,
    ReproError,
    TraceFormatError,
    TranslationError,
)
from .params import format_size, is_power_of_two, log2_exact, parse_size
from .stats import CounterBag, IntervalHistogram, ratio

__all__ = [
    "BusFaultError",
    "CheckpointError",
    "ConfigurationError",
    "CounterBag",
    "InclusionError",
    "IntegrityError",
    "IntervalHistogram",
    "ProtocolError",
    "ReproError",
    "TraceFormatError",
    "TranslationError",
    "format_size",
    "is_power_of_two",
    "log2_exact",
    "parse_size",
    "ratio",
]
