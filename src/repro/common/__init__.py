"""Shared utilities: sizes, errors, counters."""

from .errors import (
    ConfigurationError,
    InclusionError,
    ProtocolError,
    ReproError,
    TraceFormatError,
    TranslationError,
)
from .params import format_size, is_power_of_two, log2_exact, parse_size
from .stats import CounterBag, IntervalHistogram, ratio

__all__ = [
    "ConfigurationError",
    "CounterBag",
    "InclusionError",
    "IntervalHistogram",
    "ProtocolError",
    "ReproError",
    "TraceFormatError",
    "TranslationError",
    "format_size",
    "is_power_of_two",
    "log2_exact",
    "parse_size",
    "ratio",
]
