"""Small numeric helpers shared across the simulator.

The paper (and cache literature generally) specifies sizes as "16K",
"256K" and so on.  :func:`parse_size` accepts those spellings as well
as plain integers; :func:`log2_exact` and :func:`is_power_of_two`
support the pervasive power-of-two arithmetic of cache indexing.
"""

from __future__ import annotations

from .errors import ConfigurationError

_SUFFIXES = {
    "": 1,
    "B": 1,
    "K": 1024,
    "KB": 1024,
    "KI": 1024,
    "KIB": 1024,
    "M": 1024 * 1024,
    "MB": 1024 * 1024,
    "MI": 1024 * 1024,
    "MIB": 1024 * 1024,
    "G": 1024 * 1024 * 1024,
    "GB": 1024 * 1024 * 1024,
}


def parse_size(value: int | float | str) -> int:
    """Parse a byte size such as ``16384``, ``"16K"`` or ``".5K"``.

    Fractional prefixes are allowed as long as the result is a whole
    number of bytes (the paper uses ".5K" for a 512-byte cache).

    >>> parse_size("16K")
    16384
    >>> parse_size(".5K")
    512
    >>> parse_size(64)
    64
    """
    if isinstance(value, bool):
        raise ConfigurationError(f"not a size: {value!r}")
    if isinstance(value, int):
        if value <= 0:
            raise ConfigurationError(f"size must be positive, got {value}")
        return value
    if isinstance(value, float):
        if value <= 0 or value != int(value):
            raise ConfigurationError(f"size must be a positive integer, got {value}")
        return int(value)
    text = value.strip().upper()
    number_part = text.rstrip("BKMGI")
    suffix = text[len(number_part):]
    if suffix not in _SUFFIXES:
        raise ConfigurationError(f"unknown size suffix in {value!r}")
    try:
        magnitude = float(number_part) if number_part else 0.0
    except ValueError as exc:
        raise ConfigurationError(f"cannot parse size {value!r}") from exc
    size = magnitude * _SUFFIXES[suffix]
    if size <= 0 or size != int(size):
        raise ConfigurationError(f"size {value!r} is not a positive whole byte count")
    return int(size)


def is_power_of_two(value: int) -> bool:
    """Return True when *value* is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int, what: str = "value") -> int:
    """Return log2(value), requiring *value* to be a power of two.

    *what* names the quantity in the error message so configuration
    failures point at the offending parameter.
    """
    if not is_power_of_two(value):
        raise ConfigurationError(f"{what} must be a power of two, got {value}")
    return value.bit_length() - 1


def format_size(n_bytes: int) -> str:
    """Render a byte count the way the paper writes it ("16K", ".5K").

    >>> format_size(16384)
    '16K'
    >>> format_size(512)
    '.5K'
    """
    if n_bytes % 1024 == 0:
        kib = n_bytes // 1024
        if kib % 1024 == 0:
            return f"{kib // 1024}M"
        return f"{kib}K"
    if (n_bytes * 10) % 1024 == 0:
        text = f"{n_bytes / 1024:g}K"
        return text[1:] if text.startswith("0.") else text
    return f"{n_bytes}B"
