"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A cache, trace or system configuration is inconsistent.

    Examples: a cache size that is not a power of two, a block size
    larger than the page size, an associativity that does not divide
    the number of blocks.
    """


class TranslationError(ReproError):
    """A virtual address could not be translated.

    Raised when a process references a virtual page that has no
    mapping in its page table.  In the simulated machine this would be
    a page fault delivered to the operating system; the simulator
    treats it as a hard error because synthetic workloads only touch
    mapped pages.
    """


class ProtocolError(ReproError):
    """The coherence protocol reached an inconsistent state.

    This always indicates a bug in a hierarchy implementation (for
    instance two caches holding the same block dirty), never a bad
    input, so it is raised eagerly to fail the simulation loudly.
    """


class InclusionError(ReproError):
    """The multilevel inclusion property was violated.

    Raised by the consistency checkers when a first-level block has no
    second-level parent, or when the pointer linkage between levels is
    broken.
    """


class TraceFormatError(ReproError):
    """A trace file could not be parsed."""
