"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors such as :class:`TypeError`.

Errors that describe a corrupted simulation state carry structured
*context* — at minimum the access index at which the problem surfaced
and the offending physical block — so a fault-injection harness (or a
bug report) can pinpoint the failure without parsing the message.
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    Keyword arguments beyond the message are retained in
    :attr:`context` and appended to the rendered message, e.g.::

        raise ProtocolError("bad state", access_index=17, pblock=0x40)
    """

    def __init__(self, message: str = "", **context: Any) -> None:
        super().__init__(message)
        self.message = message
        self.context = {k: v for k, v in context.items() if v is not None}

    def __str__(self) -> str:
        if not self.context:
            return self.message
        rendered = ", ".join(
            f"{key}={value:#x}"
            if key in ("pblock", "address") and isinstance(value, int)
            else f"{key}={value!r}"
            for key, value in sorted(self.context.items())
        )
        return f"{self.message} [{rendered}]"


class ConfigurationError(ReproError):
    """A cache, trace or system configuration is inconsistent.

    Examples: a cache size that is not a power of two, a block size
    larger than the page size, an associativity that does not divide
    the number of blocks.
    """


class TranslationError(ReproError):
    """A virtual address could not be translated.

    Raised when a process references a virtual page that has no
    mapping in its page table.  In the simulated machine this would be
    a page fault delivered to the operating system; the simulator
    treats it as a hard error because synthetic workloads only touch
    mapped pages.
    """


class ProtocolError(ReproError):
    """The coherence protocol reached an inconsistent state.

    This always indicates a bug in a hierarchy implementation (for
    instance two caches holding the same block dirty), never a bad
    input, so it is raised eagerly to fail the simulation loudly.
    """


class InclusionError(ReproError):
    """The multilevel inclusion property was violated.

    Raised by the consistency checkers when a first-level block has no
    second-level parent, or when the pointer linkage between levels is
    broken.
    """


class IntegrityError(ReproError):
    """The runtime invariant guard detected corrupted metadata.

    Unlike :class:`InclusionError` (raised by offline checkers between
    runs), this is raised *mid-simulation* by the fault-injection
    guard and carries enough forensic context to reproduce and debug:

    Attributes:
        access_index: memory reference count when the corruption was
            detected.
        address: address being accessed when detection triggered (or
            None for checks at coherence boundaries).
        violations: the invariant violations found, as rendered strings.
        snapshot: a tag-store snapshot of the affected sets (plain
            data; see ``repro.faults.checkpoint``).
    """

    def __init__(
        self,
        message: str,
        access_index: int | None = None,
        address: int | None = None,
        violations: list[str] | None = None,
        snapshot: dict[str, Any] | None = None,
    ) -> None:
        super().__init__(message, access_index=access_index, address=address)
        self.access_index = access_index
        self.address = address
        self.violations = violations or []
        self.snapshot = snapshot or {}


class BusFaultError(ReproError):
    """A bus transaction could not complete despite bounded retries.

    Raised by the fault-injecting bus when a transaction is dropped
    more times than the retry budget allows — modelling a bus that has
    degraded past the point graceful retry can mask.
    """


class CheckpointError(ReproError):
    """A checkpoint file is missing, corrupt, or from another run."""


class ChaosError(ReproError):
    """A chaos-injected worker failure (``repro.faults.chaos``).

    Raised deliberately inside a worker process to exercise the
    experiment supervisor's retry and quarantine machinery; seeing one
    outside a chaos-enabled run is a bug.
    """


class TraceFormatError(ReproError):
    """A trace file could not be parsed."""


class RequestError(ReproError):
    """A simulation-service request is malformed or out of bounds.

    Raised by the ``repro.serve`` protocol layer while validating a
    client payload — unknown trace, bad geometry, out-of-range scale —
    and mapped to an HTTP 400, never to a server-side failure.
    """
