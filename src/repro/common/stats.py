"""Counter and histogram primitives used by every statistics object.

The simulator never prints from inside the machinery; components
accumulate counts here and the experiment runners render them.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator


class CounterBag:
    """A named bag of integer counters with dict-like access.

    Unlike a plain :class:`collections.Counter`, reading a counter
    never creates it and the bag can be frozen to a plain dict for
    reporting.

    >>> bag = CounterBag()
    >>> bag.add("hits")
    >>> bag.add("hits", 2)
    >>> bag["hits"]
    3
    >>> bag["misses"]
    0
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Counter[str] = Counter()

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter *name* by *amount* (which may be negative)."""
        self._counts[name] += amount

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __iter__(self) -> Iterator[str]:
        return iter(self._counts)

    def names(self) -> list[str]:
        """Return the counter names in sorted order."""
        return sorted(self._counts)

    def total(self, names: Iterable[str]) -> int:
        """Sum the counters listed in *names*."""
        return sum(self._counts.get(name, 0) for name in names)

    def as_dict(self) -> dict[str, int]:
        """Return a plain-dict snapshot of all counters."""
        return dict(self._counts)

    def merge(self, other: "CounterBag") -> None:
        """Add every counter of *other* into this bag."""
        self._counts.update(other._counts)

    def reset(self) -> None:
        """Zero all counters."""
        self._counts.clear()

    def export_state(self) -> dict[str, int]:
        """Checkpointable snapshot of the bag's contents."""
        return dict(self._counts)

    def restore_state(self, state: dict[str, int]) -> None:
        """Replace the bag's contents with a snapshot's.

        In place — hot paths hold direct references to the Counter.
        """
        self._counts.clear()
        self._counts.update(state)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"CounterBag({inner})"


class IntervalHistogram:
    """Histogram of integer intervals with a catch-all top bucket.

    Tables 2 and 3 of the paper report inter-write intervals bucketed
    as 1..9 plus "10 and larger"; this class generalises that shape.

    >>> hist = IntervalHistogram(top=10)
    >>> for gap in (1, 1, 4, 25):
    ...     hist.record(gap)
    >>> hist.count(1), hist.count_top()
    (2, 1)
    """

    __slots__ = ("top", "_buckets", "_top_count", "_observations")

    def __init__(self, top: int = 10) -> None:
        if top < 2:
            raise ValueError("top bucket threshold must be at least 2")
        self.top = top
        self._buckets: Counter[int] = Counter()
        self._top_count = 0
        self._observations = 0

    def record(self, interval: int) -> None:
        """Record one observed interval (must be >= 1)."""
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self._observations += 1
        if interval >= self.top:
            self._top_count += 1
        else:
            self._buckets[interval] += 1

    def count(self, interval: int) -> int:
        """Count of observations exactly equal to *interval* (< top)."""
        if interval >= self.top:
            raise ValueError(f"interval {interval} is in the catch-all bucket")
        return self._buckets.get(interval, 0)

    def count_top(self) -> int:
        """Count of observations >= the top threshold."""
        return self._top_count

    @property
    def observations(self) -> int:
        """Total number of recorded intervals."""
        return self._observations

    def export_state(self) -> dict:
        """Checkpointable snapshot of the histogram's contents."""
        return {
            "top": self.top,
            "buckets": dict(self._buckets),
            "top_count": self._top_count,
            "observations": self._observations,
        }

    def restore_state(self, state: dict) -> None:
        """Replace the histogram's contents with a snapshot's."""
        self.top = state["top"]
        self._buckets = Counter(state["buckets"])
        self._top_count = state["top_count"]
        self._observations = state["observations"]

    def rows(self) -> list[tuple[str, int]]:
        """Rows in the paper's table shape: ('1', n) .. ('10 and larger', n)."""
        out: list[tuple[str, int]] = []
        for i in range(1, self.top):
            out.append((str(i), self._buckets.get(i, 0)))
        out.append((f"{self.top} and larger", self._top_count))
        return out


def ratio(numerator: int, denominator: int) -> float:
    """numerator/denominator, defined as 0.0 when the denominator is 0."""
    return numerator / denominator if denominator else 0.0
