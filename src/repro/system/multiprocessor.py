"""The shared-bus multiprocessor (paper Figure 1).

A :class:`Multiprocessor` instantiates one private two-level hierarchy
per CPU on a single snooping bus and replays a trace through them.
It owns the global write-version counter, so a value oracle (enabled
with ``check_values=True``) can verify that every read observes the
most recent write to its physical block — across CPUs, synonyms,
context switches and write buffers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from collections.abc import Iterable

from ..coherence.bus import Bus, MainMemory
from ..common.errors import ProtocolError
from ..hierarchy.config import HierarchyConfig
from ..hierarchy.stats import HierarchyStats
from ..hierarchy.twolevel import TwoLevelHierarchy
from ..mmu.address_space import MemoryLayout
from ..trace.record import RefKind, TraceRecord


@dataclass
class SimulationResult:
    """Everything a simulation run produced.

    Attributes:
        per_cpu: one :class:`HierarchyStats` per CPU, in CPU order.
        bus_transactions: bus transaction counts by type.
        refs_processed: memory references simulated.
    """

    per_cpu: list[HierarchyStats]
    bus_transactions: dict[str, int] = field(default_factory=dict)
    refs_processed: int = 0

    def aggregate(self) -> HierarchyStats:
        """Machine-wide statistics (sum over CPUs)."""
        total = HierarchyStats()
        for stats in self.per_cpu:
            total.merge(stats)
        return total

    @property
    def h1(self) -> float:
        """Machine-wide level-1 hit ratio."""
        return self.aggregate().l1_hit_ratio()

    @property
    def h2(self) -> float:
        """Machine-wide local level-2 hit ratio."""
        return self.aggregate().l2_hit_ratio()


class Multiprocessor:
    """N CPUs, each with a private hierarchy, on one snooping bus.

    >>> from repro.hierarchy import HierarchyConfig
    >>> from repro.trace import SyntheticWorkload, WorkloadSpec
    >>> workload = SyntheticWorkload(WorkloadSpec(total_refs=2000))
    >>> machine = Multiprocessor(
    ...     workload.layout, n_cpus=2, config=HierarchyConfig.sized("1K", "8K")
    ... )
    >>> result = machine.run(workload)
    >>> result.refs_processed
    2000
    """

    def __init__(
        self,
        layout: MemoryLayout,
        n_cpus: int,
        config: HierarchyConfig,
        seed: int = 0,
    ) -> None:
        self.layout = layout
        self.config = config
        self.bus = Bus(MainMemory())
        self._version_counter = itertools.count(1)
        self.hierarchies = [
            TwoLevelHierarchy(
                config,
                layout,
                self.bus,
                next_version=self._version_counter.__next__,
                seed=seed + cpu * 97,
            )
            for cpu in range(n_cpus)
        ]

    @property
    def n_cpus(self) -> int:
        """Number of processors."""
        return len(self.hierarchies)

    def run(
        self,
        records: Iterable[TraceRecord],
        check_values: bool = False,
        max_refs: int | None = None,
    ) -> SimulationResult:
        """Replay *records* through the machine.

        With *check_values*, every read is compared against a value
        oracle (the globally most recent write to its physical block);
        a mismatch raises :class:`ProtocolError`, making this the
        strongest end-to-end coherence check in the test suite.
        *max_refs* stops the run after that many memory references.
        """
        oracle: dict[int, int] = {}
        block_bits = self.config.l1.block_bits
        refs = 0
        for record in records:
            if max_refs is not None and refs >= max_refs:
                break
            hier = self.hierarchies[record.cpu]
            kind = record.kind
            if kind is RefKind.CSWITCH:
                hier.context_switch(record.pid)
                continue
            if not kind.is_memory:
                continue
            result = hier.access(record.pid, record.vaddr, kind)
            refs += 1
            if check_values:
                paddr = self.layout.translate(record.pid, record.vaddr)
                pblock = paddr >> block_bits
                if kind is RefKind.WRITE:
                    oracle[pblock] = result.version
                else:
                    expected = oracle.get(pblock, 0)
                    if result.version != expected:
                        raise ProtocolError(
                            f"cpu {record.cpu} read version {result.version} "
                            f"of block {pblock:#x}, expected {expected} "
                            f"(outcome {result.outcome.value})"
                        )
        return SimulationResult(
            per_cpu=[hier.stats for hier in self.hierarchies],
            bus_transactions=self.bus.stats.as_dict(),
            refs_processed=refs,
        )

    def settle(self) -> None:
        """Drain every write buffer (end-of-run bookkeeping)."""
        for hier in self.hierarchies:
            hier.drain_write_buffer()
