"""The shared-bus multiprocessor (paper Figure 1).

A :class:`Multiprocessor` instantiates one private two-level hierarchy
per CPU on a single snooping bus and replays a trace through them.
It owns the global write-version counter, so a value oracle (enabled
with ``check_values=True``) can verify that every read observes the
most recent write to its physical block — across CPUs, synonyms,
context switches and write buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable
from time import perf_counter
from typing import Any

from ..coherence.bus import Bus, MainMemory
from ..common.errors import InclusionError, ProtocolError
from ..hierarchy.config import HierarchyConfig
from ..hierarchy.stats import HierarchyStats
from ..hierarchy.twolevel import TwoLevelHierarchy
from ..mmu.address_space import MemoryLayout
from ..trace.record import RefKind, TraceRecord


class VersionCounter:
    """Monotonic write-version source shared by all hierarchies.

    Functionally ``itertools.count(1).__next__``, but with the next
    value exposed as a plain attribute so checkpoints can capture and
    restore it exactly.
    """

    __slots__ = ("next_value",)

    def __init__(self, start: int = 1) -> None:
        self.next_value = start

    def __call__(self) -> int:
        value = self.next_value
        self.next_value += 1
        return value


@dataclass(slots=True)
class SimulationResult:
    """Everything a simulation run produced.

    Attributes:
        per_cpu: one :class:`HierarchyStats` per CPU, in CPU order.
        bus_transactions: bus transaction counts by type.
        refs_processed: memory references simulated.
        timings: per-phase wall-clock seconds ("trace_gen_s",
            "replay_s", "guard_s"); informational only — never part
            of equality-relevant experiment data.
        tlb_per_cpu: one TLB counter snapshot per CPU, in CPU order
            (empty on results restored from pre-observability caches).
    """

    per_cpu: list[HierarchyStats]
    bus_transactions: dict[str, int] = field(default_factory=dict)
    refs_processed: int = 0
    timings: dict[str, float] = field(default_factory=dict)
    tlb_per_cpu: list[dict[str, int]] = field(default_factory=list)

    def aggregate(self) -> HierarchyStats:
        """Machine-wide statistics (sum over CPUs)."""
        total = HierarchyStats()
        for stats in self.per_cpu:
            total.merge(stats)
        return total

    @property
    def h1(self) -> float:
        """Machine-wide level-1 hit ratio."""
        return self.aggregate().l1_hit_ratio()

    @property
    def h2(self) -> float:
        """Machine-wide local level-2 hit ratio."""
        return self.aggregate().l2_hit_ratio()

    def metrics(self, cpu: int | None = None) -> Any:
        """This result projected into the unified metrics namespace.

        Returns a :class:`repro.obs.MetricsRegistry` — machine-wide by
        default, or one CPU's view with *cpu*.  The projection is a
        pure function of the result's counters, so it is deterministic
        and cache-safe.
        """
        from ..obs.metrics import registry_from_result

        return registry_from_result(self, cpu=cpu)


class Multiprocessor:
    """N CPUs, each with a private hierarchy, on one snooping bus.

    >>> from repro.hierarchy import HierarchyConfig
    >>> from repro.trace import SyntheticWorkload, WorkloadSpec
    >>> workload = SyntheticWorkload(WorkloadSpec(total_refs=2000))
    >>> machine = Multiprocessor(
    ...     workload.layout, n_cpus=2, config=HierarchyConfig.sized("1K", "8K")
    ... )
    >>> result = machine.run(workload)
    >>> result.refs_processed
    2000
    """

    __slots__ = (
        "layout",
        "config",
        "bus",
        "version_counter",
        "hierarchies",
        "engine",
    )

    def __init__(
        self,
        layout: MemoryLayout,
        n_cpus: int,
        config: HierarchyConfig,
        seed: int = 0,
        bus: Bus | None = None,
        tracer: Any = None,
        engine: str = "object",
    ) -> None:
        if engine not in ("object", "soa"):
            raise ValueError(f"unknown engine {engine!r} (use 'object' or 'soa')")
        self.layout = layout
        self.config = config
        self.engine = engine
        self.bus = bus if bus is not None else Bus(MainMemory())
        self.version_counter = VersionCounter()
        if engine == "soa":
            from ..core.soa import SoAHierarchy as hierarchy_cls
        else:
            hierarchy_cls = TwoLevelHierarchy
        self.hierarchies = [
            hierarchy_cls(
                config,
                layout,
                self.bus,
                next_version=self.version_counter,
                seed=seed + cpu * 97,
            )
            for cpu in range(n_cpus)
        ]
        if tracer is None:
            # Pick up the session tracer (if any) so embedding layers
            # need no explicit plumbing to get machines traced.
            from ..obs import get_tracer

            tracer = get_tracer()
        if tracer is not None:
            for hier in self.hierarchies:
                hier.set_tracer(tracer)

    @property
    def n_cpus(self) -> int:
        """Number of processors."""
        return len(self.hierarchies)

    def run(
        self,
        records: Iterable[TraceRecord],
        check_values: bool = False,
        max_refs: int | None = None,
        injector: Any = None,
        guard: Any = None,
        ref_offset: int = 0,
    ) -> SimulationResult:
        """Replay *records* through the machine.

        *records* is any iterable of :class:`TraceRecord` — a list, a
        generator, or a :class:`~repro.trace.stream.TraceStream`
        (streams iterate as records; the SoA engine additionally
        recognises a stream's ``chunks`` attribute and consumes its
        vectors directly, holding one bounded chunk at a time).

        With *check_values*, every read is compared against a value
        oracle (the globally most recent write to its physical block);
        a mismatch raises :class:`ProtocolError`, making this the
        strongest end-to-end coherence check in the test suite.
        *max_refs* stops the run after that many memory references.

        *injector* (a ``repro.faults.FaultInjector``) is consulted
        before every access to flip metadata bits; *guard* (a
        ``repro.faults.InvariantGuard``) is consulted after every
        access and may repair corruption and replay the access.  Both
        are duck-typed here so the system layer carries no dependency
        on the faults package.  Combining ``check_values`` with a
        repairing guard is unsupported: a repair that discards dirty
        data legitimately changes observed versions.

        *ref_offset* biases the access indices reported to the
        injector and guard — a resumed checkpointed run passes the
        number of references already replayed so scheduled faults and
        check pacing see absolute indices.
        """
        # Wall-clock reads below time the replay/guard phases for
        # SimulationResult.timings — metadata, never simulation
        # state (repro-sanitize RPS102 pragmas mark each read).
        started = perf_counter()  # rps: ignore[RPS102]
        guard_seconds = 0.0
        if (
            injector is None
            and guard is None
            and not check_values
            and max_refs is None
        ):
            if self.engine == "soa":
                refs = self._run_soa(records)
            else:
                refs = self._run_fast(records)
        else:
            refs, guard_seconds = self._run_general(
                records, check_values, max_refs, injector, guard, ref_offset
            )
            if self.engine == "soa":
                # The SoA change logs are only consumed by _run_soa;
                # a long object-path run would grow them unboundedly.
                for hier in self.hierarchies:
                    hier.clear_change_logs()
        timings = {"replay_s": perf_counter() - started}  # rps: ignore[RPS102]
        if guard is not None:
            timings["guard_s"] = guard_seconds
        return SimulationResult(
            per_cpu=[hier.stats for hier in self.hierarchies],
            bus_transactions=self.bus.stats.as_dict(),
            refs_processed=refs,
            timings=timings,
            tlb_per_cpu=[hier.tlb.stats.as_dict() for hier in self.hierarchies],
        )

    def _run_soa(self, records: Iterable[TraceRecord]) -> int:
        """The struct-of-arrays replay loop (``engine="soa"``)."""
        from ..core.soa import run_soa

        return run_soa(self, records)

    def _run_fast(self, records: Iterable[TraceRecord]) -> int:
        """The unguarded replay loop — every attribute hoisted into a
        local, with the reference-class dispatch reduced to two
        identity compares (only CSWITCH and CALL are not memory)."""
        hierarchies = self.hierarchies
        cswitch = RefKind.CSWITCH
        call = RefKind.CALL
        refs = 0
        for record in records:
            kind = record.kind
            if kind is cswitch:
                hierarchies[record.cpu].context_switch(record.pid)
                continue
            if kind is call:
                continue
            hierarchies[record.cpu].access(record.pid, record.vaddr, kind)
            refs += 1
        return refs

    def _run_general(
        self,
        records: Iterable[TraceRecord],
        check_values: bool,
        max_refs: int | None,
        injector: Any,
        guard: Any,
        ref_offset: int,
    ) -> tuple[int, float]:
        """The fully instrumented replay loop (oracle, faults, guard).

        Returns (references replayed, seconds spent in the guard).
        """
        if guard is not None:
            guard.watch(self.bus, self.hierarchies)
        oracle: dict[int, int] = {}
        block_bits = self.config.l1.block_bits
        guard_seconds = 0.0
        refs = 0
        for record in records:
            if max_refs is not None and refs >= max_refs:
                break
            hier = self.hierarchies[record.cpu]
            kind = record.kind
            if kind is RefKind.CSWITCH:
                hier.context_switch(record.pid)
                continue
            if not kind.is_memory:
                continue
            if injector is not None:
                injector.tick(hier, ref_offset + refs + 1)
            try:
                result = hier.access(record.pid, record.vaddr, kind)
            except (InclusionError, ProtocolError):
                # Injected corruption tripped the hierarchy's own
                # validation before the guard's next check; a repairing
                # guard sweeps, repairs and replays.
                if guard is None:
                    raise
                guard_started = perf_counter()  # rps: ignore[RPS102]
                recovered = guard.on_access_error(
                    hier, record.pid, record.vaddr, kind, ref_offset + refs + 1
                )
                guard_seconds += perf_counter() - guard_started  # rps: ignore[RPS102]
                if recovered is None:
                    raise
                result = recovered
            refs += 1
            if guard is not None:
                guard_started = perf_counter()  # rps: ignore[RPS102]
                replay = guard.after_access(
                    hier, record.pid, record.vaddr, kind, ref_offset + refs
                )
                guard_seconds += perf_counter() - guard_started  # rps: ignore[RPS102]
                if replay is not None:
                    result = replay
            if check_values:
                paddr = self.layout.translate(record.pid, record.vaddr)
                pblock = paddr >> block_bits
                if kind is RefKind.WRITE:
                    oracle[pblock] = result.version
                else:
                    expected = oracle.get(pblock, 0)
                    if result.version != expected:
                        raise ProtocolError(
                            f"cpu {record.cpu} read version {result.version} "
                            f"of block {pblock:#x}, expected {expected} "
                            f"(outcome {result.outcome.value})"
                        )
        return refs, guard_seconds

    def settle(self) -> None:
        """Drain every write buffer (end-of-run bookkeeping)."""
        for hier in self.hierarchies:
            hier.drain_write_buffer()
