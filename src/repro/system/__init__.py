"""System level: the shared-bus multiprocessor simulator."""

from .dma import DMAEngine
from .multiprocessor import Multiprocessor, SimulationResult

__all__ = ["DMAEngine", "Multiprocessor", "SimulationResult"]
