"""Physically-addressed I/O (DMA) against the coherent bus.

Problem 4 of the paper's introduction: "I/O devices use physical
addresses as well, also requiring reverse translation".  With a
virtually-addressed cache alone, every DMA transfer would need a
reverse map or software flushes; the V-R organisation solves it for
free — the DMA engine issues ordinary physical bus transactions, the
physically-addressed R-caches snoop them, and the inclusion machinery
forwards (only) the necessary invalidations and flushes to the
V-caches.

A DMA read is a coherent READ_MISS (a dirty cache supplies and memory
is updated); a DMA write is a READ_MODIFIED_WRITE-style transaction
that invalidates every cached copy before memory takes the new data.
The engine never caches anything, so it attaches to the bus as a
snooper that ignores all traffic.
"""

from __future__ import annotations

from ..cache.config import CacheConfig
from ..coherence.bus import Bus
from ..coherence.messages import BusOp, BusTransaction, SnoopReply
from ..common.errors import ConfigurationError, ProtocolError
from ..common.stats import CounterBag


class DMAEngine:
    """A bus agent doing cache-bypassing physical transfers.

    >>> from repro.coherence.bus import Bus, MainMemory
    >>> bus = Bus(MainMemory())
    >>> dma = DMAEngine(bus, block_size=16)
    >>> dma.write(0x1000, n_bytes=64, version=7)
    4
    >>> bus.memory.peek(0x1000 >> 4)
    7
    """

    def __init__(self, bus: Bus, block_size: int = 16) -> None:
        if block_size & (block_size - 1):
            raise ConfigurationError("block size must be a power of two")
        self.bus = bus
        self.block_size = block_size
        self._block_bits = block_size.bit_length() - 1
        self.stats = CounterBag()
        self.port = bus.attach(self)

    # -- bus agent ---------------------------------------------------------

    def snoop(self, txn: BusTransaction) -> SnoopReply:
        """The engine caches nothing: all snoops are no-ops."""
        return SnoopReply(has_copy=False)

    # -- transfers -----------------------------------------------------------

    def _blocks(self, paddr: int, n_bytes: int) -> range:
        if n_bytes < 1:
            raise ConfigurationError("transfer must cover at least one byte")
        first = paddr >> self._block_bits
        last = (paddr + n_bytes - 1) >> self._block_bits
        return range(first, last + 1)

    def read(self, paddr: int, n_bytes: int) -> list[int]:
        """Coherent DMA read (device <- memory hierarchy).

        Every covered block is fetched with a read-miss transaction:
        if some CPU holds it modified (V-cache, write buffer or
        R-cache), that copy is flushed and supplied.  Returns the
        observed version of each block, in address order.
        """
        versions = []
        for pblock in self._blocks(paddr, n_bytes):
            result = self.bus.issue(
                BusTransaction(BusOp.READ_MISS, self.port, pblock)
            )
            if result.version is None:
                raise ProtocolError(
                    "DMA read-miss returned no data version", pblock=pblock
                )
            versions.append(result.version)
            self.stats.add("blocks_read")
        self.stats.add("reads")
        return versions

    def write(self, paddr: int, n_bytes: int, version: int) -> int:
        """Coherent DMA write (device -> memory).

        Every covered block is claimed with a read-modified-write
        transaction (flushing and invalidating all cached copies) and
        then overwritten in memory with *version*.  Returns the number
        of blocks written.
        """
        count = 0
        for pblock in self._blocks(paddr, n_bytes):
            self.bus.issue(
                BusTransaction(BusOp.READ_MODIFIED_WRITE, self.port, pblock)
            )
            self.bus.write_back(pblock, version)
            count += 1
            self.stats.add("blocks_written")
        self.stats.add("writes")
        return count

    def copy(self, src_paddr: int, dst_paddr: int, n_bytes: int) -> int:
        """Device-driven memory-to-memory copy, block aligned.

        Both ranges must share alignment within a block; each block's
        version moves from source to destination coherently.
        """
        if (src_paddr ^ dst_paddr) & (self.block_size - 1):
            raise ConfigurationError(
                "source and destination must be equally aligned"
            )
        versions = self.read(src_paddr, n_bytes)
        dst_blocks = list(self._blocks(dst_paddr, n_bytes))
        for pblock, version in zip(dst_blocks, versions):
            self.bus.issue(
                BusTransaction(BusOp.READ_MODIFIED_WRITE, self.port, pblock)
            )
            self.bus.write_back(pblock, version)
            self.stats.add("blocks_written")
        self.stats.add("copies")
        return len(dst_blocks)

    @classmethod
    def for_config(cls, bus: Bus, l1_config: CacheConfig) -> "DMAEngine":
        """An engine matching a hierarchy's coherence granularity."""
        return cls(bus, block_size=l1_config.block_size)
