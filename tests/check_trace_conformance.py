"""Standalone trace-format conformance check (CI: trace-conformance).

Pins the on-disk trace formats against golden fixtures in
``tests/fixtures/traces/``::

    python -m tests.check_trace_conformance             # verify
    python -m tests.check_trace_conformance --work DIR  # keep outputs
    python -m tests.check_trace_conformance --regen     # rewrite fixtures

``--work`` writes the round-trip outputs to *DIR* instead of a
temporary directory, so CI can upload them as artifacts on failure.

Checks, in order:

1. every committed fixture's sha256 matches ``digests.json``;
2. ``repro-trace convert`` round trips are **byte-identical** in both
   directions (din → rtb → din and rtb → din → rtb);
3. the SynchroTrace sample directory lowers to a pinned record stream;
4. regenerating the fixtures from the synthetic generator (both the
   materialised and ``--stream`` paths) reproduces the committed bytes,
   so generator, text format and binary format are all pinned at once.

Any byte of drift in a format is a conformance break: either fix the
regression or consciously re-pin with ``--regen`` (which bumps the
digests and shows up in review).

Stdlib only; exits non-zero with a diagnostic on any failure.
"""

from __future__ import annotations

import contextlib
import gzip
import hashlib
import json
import shutil
import sys
import tempfile
from pathlib import Path

FIXTURES = Path(__file__).parent / "fixtures" / "traces"
TEXT_FIXTURE = FIXTURES / "tiny.din"
BINARY_FIXTURE = FIXTURES / "tiny.rtb"
SYNCHRO_FIXTURE = FIXTURES / "synchro"
DIGESTS = FIXTURES / "digests.json"

#: Generator coordinates for the tiny fixtures: small enough to commit,
#: big enough for multi-frame binaries at the fixture chunk size.
WORKLOAD = "pops"
SCALE = 0.001
CHUNK_RECORDS = 256

#: The SynchroTrace sample: two threads exercising compute events with
#: read/write ranges, a communication edge and a pthread marker.
SYNCHRO_THREADS = {
    0: [
        "1,0,6,0,2,1 * 4096 4127 $ 8192 8207",
        "2,0,4,0,1,0 * 4160 4175",
        "3,0,pth_ty:4^268435456",
    ],
    1: [
        "1,1,3,0,1,1 * 12288 12303 $ 12544 12559",
        "2,1 # 0 1 8192 8223",
    ],
}


def _sha256(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _cli(*argv: str) -> int:
    from repro.trace.cli import main

    return main(list(argv))


def _fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def _lowered_synchro(workdir: Path) -> Path:
    """Lower the SynchroTrace sample to din text in *workdir*."""
    out = workdir / "synchro-lowered.din"
    code = _cli("convert", str(SYNCHRO_FIXTURE), str(out))
    if code != 0:
        raise RuntimeError(f"synchro convert exited {code}")
    return out


def regen() -> int:
    """Rewrite every fixture and pin the fresh digests."""
    FIXTURES.mkdir(parents=True, exist_ok=True)
    _cli(
        "gen", WORKLOAD, "--scale", str(SCALE),
        "--out", str(TEXT_FIXTURE), "--chunk-records", str(CHUNK_RECORDS),
    )
    _cli(
        "gen", WORKLOAD, "--scale", str(SCALE), "--stream",
        "--out", str(BINARY_FIXTURE), "--chunk-records", str(CHUNK_RECORDS),
    )
    if SYNCHRO_FIXTURE.is_dir():
        shutil.rmtree(SYNCHRO_FIXTURE)
    SYNCHRO_FIXTURE.mkdir()
    for tid, lines in SYNCHRO_THREADS.items():
        raw = ("\n".join(lines) + "\n").encode("ascii")
        path = SYNCHRO_FIXTURE / f"sigil.events.out-{tid}.gz"
        with open(path, "wb") as handle:
            with gzip.GzipFile(
                filename="", fileobj=handle, mode="wb", mtime=0
            ) as gz:
                gz.write(raw)

    with tempfile.TemporaryDirectory() as tmp:
        lowered = _lowered_synchro(Path(tmp))
        digests = {
            "workload": WORKLOAD,
            "scale": SCALE,
            "chunk_records": CHUNK_RECORDS,
            "files": {
                path.relative_to(FIXTURES).as_posix(): _sha256(path)
                for path in sorted(FIXTURES.rglob("*"))
                if path.is_file() and path != DIGESTS
            },
            "synchro_lowered_din": _sha256(lowered),
        }
    DIGESTS.write_text(
        json.dumps(digests, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"re-pinned {len(digests['files'])} fixture file(s) in {FIXTURES}")
    return 0


def verify(workdir: Path | None = None) -> int:
    if not DIGESTS.is_file():
        return _fail(f"{DIGESTS} missing — run with --regen to create fixtures")
    pinned = json.loads(DIGESTS.read_text(encoding="utf-8"))

    # 1. Committed fixture bytes match the pinned digests.
    on_disk = {
        path.relative_to(FIXTURES).as_posix(): _sha256(path)
        for path in sorted(FIXTURES.rglob("*"))
        if path.is_file() and path != DIGESTS
    }
    if on_disk != pinned["files"]:
        drifted = sorted(
            set(on_disk) ^ set(pinned["files"])
            | {
                name
                for name in set(on_disk) & set(pinned["files"])
                if on_disk[name] != pinned["files"][name]
            }
        )
        return _fail(f"fixture digests drifted: {', '.join(drifted)}")
    print(f"fixture digests: {len(on_disk)} file(s) match digests.json")

    with contextlib.ExitStack() as stack:
        if workdir is None:
            work = Path(stack.enter_context(tempfile.TemporaryDirectory()))
        else:
            work = workdir
            work.mkdir(parents=True, exist_ok=True)

        # 2a. din -> rtb -> din, byte-identical both hops.
        rtb = work / "roundtrip.rtb"
        din = work / "roundtrip.din"
        for argv in (
            ("convert", str(TEXT_FIXTURE), str(rtb),
             "--chunk-records", str(pinned["chunk_records"])),
            ("convert", str(rtb), str(din)),
        ):
            if (code := _cli(*argv)) != 0:
                return _fail(f"convert {argv[1]} exited {code}")
        if rtb.read_bytes() != BINARY_FIXTURE.read_bytes():
            return _fail("din -> rtb did not reproduce tiny.rtb byte-for-byte")
        if din.read_bytes() != TEXT_FIXTURE.read_bytes():
            return _fail("din -> rtb -> din round trip is not byte-identical")

        # 2b. rtb -> din -> rtb, byte-identical.
        din2 = work / "fromrtb.din"
        rtb2 = work / "fromrtb.rtb"
        for argv in (
            ("convert", str(BINARY_FIXTURE), str(din2)),
            ("convert", str(din2), str(rtb2),
             "--chunk-records", str(pinned["chunk_records"])),
        ):
            if (code := _cli(*argv)) != 0:
                return _fail(f"convert {argv[1]} exited {code}")
        if din2.read_bytes() != TEXT_FIXTURE.read_bytes():
            return _fail("rtb -> din did not reproduce tiny.din byte-for-byte")
        if rtb2.read_bytes() != BINARY_FIXTURE.read_bytes():
            return _fail("rtb -> din -> rtb round trip is not byte-identical")
        print("convert round trips: byte-identical in both directions")

        # 3. SynchroTrace lowering is pinned.
        lowered = _lowered_synchro(work)
        if _sha256(lowered) != pinned["synchro_lowered_din"]:
            return _fail("SynchroTrace lowering drifted from the pinned digest")
        print("synchro lowering: matches pinned digest")

        # 4. The generator reproduces the fixtures, both paths.
        gen_din = work / "gen.din"
        gen_rtb = work / "gen.rtb"
        for argv in (
            ("gen", pinned["workload"], "--scale", str(pinned["scale"]),
             "--out", str(gen_din),
             "--chunk-records", str(pinned["chunk_records"])),
            ("gen", pinned["workload"], "--scale", str(pinned["scale"]),
             "--stream", "--out", str(gen_rtb),
             "--chunk-records", str(pinned["chunk_records"])),
        ):
            if (code := _cli(*argv)) != 0:
                return _fail(f"gen exited {code}")
        if gen_din.read_bytes() != TEXT_FIXTURE.read_bytes():
            return _fail("materialised generator no longer reproduces tiny.din")
        if gen_rtb.read_bytes() != BINARY_FIXTURE.read_bytes():
            return _fail("streamed generator no longer reproduces tiny.rtb")
        print("generator: reproduces both fixtures (materialised and --stream)")

    print("check_trace_conformance: all checks passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv == ["--regen"]:
        return regen()
    if len(argv) == 2 and argv[0] == "--work":
        return verify(Path(argv[1]))
    if argv:
        print(
            "usage: python -m tests.check_trace_conformance "
            "[--regen | --work DIR]",
            file=sys.stderr,
        )
        return 2
    return verify()


if __name__ == "__main__":
    sys.exit(main())
