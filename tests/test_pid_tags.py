"""Tests for the pid-tagged V-cache alternative (section 2 ablation)."""

import pytest

from repro.cache.config import CacheConfig
from repro.common.errors import ConfigurationError
from repro.hierarchy.checker import check_all
from repro.hierarchy.config import (
    HierarchyConfig,
    HierarchyKind,
    min_l2_associativity_for_strict_inclusion,
)
from repro.hierarchy.twolevel import Outcome
from repro.system.multiprocessor import Multiprocessor
from repro.trace.record import RefKind
from repro.trace.synthetic import SyntheticWorkload
from tests.conftest import build_hierarchy, tiny_spec

R, W = RefKind.READ, RefKind.WRITE


@pytest.fixture
def two_process_layout():
    from repro.mmu.address_space import MemoryLayout

    layout = MemoryLayout()
    for pid in (1, 2):
        layout.add_private_segment(pid, "data", 0x40000, 8)
    return layout


class TestPidTags:
    def test_survives_context_switch(self, two_process_layout):
        hier = build_hierarchy(two_process_layout, l1_pid_tags=True)
        hier.access(1, 0x40000, R)
        hier.context_switch(2)
        hier.access(2, 0x40010, R)  # different level-1 set
        hier.context_switch(1)
        # Process 1's block is still valid: no flush happened.
        assert hier.access(1, 0x40000, R).outcome is Outcome.L1_HIT

    def test_same_vaddr_different_pid_is_a_miss(self, two_process_layout):
        hier = build_hierarchy(two_process_layout, l1_pid_tags=True)
        hier.access(1, 0x40000, W)
        result = hier.access(2, 0x40000, R)
        # Same virtual address, different process: distinct physical
        # block, must not hit process 1's entry.
        assert result.outcome is not Outcome.L1_HIT
        assert result.version == 0
        check_all(hier)

    def test_dirty_data_kept_across_switches(self, two_process_layout):
        hier = build_hierarchy(two_process_layout, l1_pid_tags=True)
        version = hier.access(1, 0x40000, W).version
        hier.context_switch(2)
        hier.context_switch(1)
        result = hier.access(1, 0x40000, R)
        assert result.outcome is Outcome.L1_HIT
        assert result.version == version

    def test_no_swapped_writebacks(self, two_process_layout):
        hier = build_hierarchy(two_process_layout, l1_pid_tags=True)
        hier.access(1, 0x40000, W)
        hier.context_switch(2)
        hier.access(2, 0x40000 + hier.config.l1.size, R)  # same set
        assert hier.stats.counters["swapped_writebacks"] == 0

    def test_rejected_for_physical_l1(self):
        with pytest.raises(ConfigurationError, match="pid tags"):
            HierarchyConfig.sized(
                "1K", "8K", kind=HierarchyKind.RR_INCLUSION, l1_pid_tags=True
            )

    def test_value_oracle_with_pid_tags(self):
        workload = SyntheticWorkload(tiny_spec(total_refs=6000))
        config = HierarchyConfig.sized("1K", "8K", l1_pid_tags=True)
        machine = Multiprocessor(workload.layout, 2, config)
        machine.run(workload, check_values=True)
        for hier in machine.hierarchies:
            check_all(hier)

    def test_pid_tag_h1_not_worse_than_flush(self):
        spec = tiny_spec(total_refs=8000, context_switches=40)
        flush = Multiprocessor(
            SyntheticWorkload(spec).layout, 2, HierarchyConfig.sized("1K", "8K")
        ).run(SyntheticWorkload(spec))
        tagged = Multiprocessor(
            SyntheticWorkload(spec).layout,
            2,
            HierarchyConfig.sized("1K", "8K", l1_pid_tags=True),
        ).run(SyntheticWorkload(spec))
        assert tagged.h1 >= flush.h1 - 0.005


class TestStrictInclusionBound:
    def test_paper_example(self):
        # 16K level 1, 4K pages, B2 = 4*B1: the paper says 16-way.
        bound = min_l2_associativity_for_strict_inclusion(
            CacheConfig.create("16K", 16),
            CacheConfig.create("256K", 64),
        )
        assert bound == 16

    def test_equal_blocks(self):
        bound = min_l2_associativity_for_strict_inclusion(
            CacheConfig.create("16K", 16), CacheConfig.create("256K", 16)
        )
        assert bound == 4

    def test_smaller_l2_blocks_rejected(self):
        with pytest.raises(ConfigurationError):
            min_l2_associativity_for_strict_inclusion(
                CacheConfig.create("16K", 32), CacheConfig.create("256K", 16)
            )

    def test_sub_page_l1_rejected(self):
        with pytest.raises(ConfigurationError, match="page offset"):
            min_l2_associativity_for_strict_inclusion(
                CacheConfig.create("1K", 16), CacheConfig.create("256K", 16)
            )
