"""Multi-hierarchy coherence tests: two or more hierarchies on one bus.

These verify the paper's bus-induced behaviour (section 3): flushes of
dirty first-level copies, invalidations, read-modified-write handling,
and — the paper's headline claim — the shielding of the first-level
cache by an inclusion-maintaining second level.
"""


from repro.coherence.bus import Bus, MainMemory
from repro.coherence.protocol import ShareState
from repro.hierarchy.checker import check_all, check_coherence
from repro.hierarchy.config import HierarchyConfig, HierarchyKind
from repro.hierarchy.twolevel import Outcome, TwoLevelHierarchy
from repro.mmu.address_space import MemoryLayout
from repro.trace.record import RefKind

R = RefKind.READ
W = RefKind.WRITE

#: A virtual address in the shared segment, per pid (same physical).
SHARED = {1: 0x100000, 2: 0x180000}


def shared_layout() -> MemoryLayout:
    layout = MemoryLayout()
    layout.add_private_segment(1, "data", 0x40000, 8)
    layout.add_private_segment(2, "data", 0x40000, 8)
    layout.add_shared_segment("shm", [(1, SHARED[1]), (2, SHARED[2])], 4)
    return layout


def machine(kind=HierarchyKind.VR, n_cpus=2, l1="1K", l2="8K"):
    """(layout, bus, [hierarchies]) with a shared version counter."""
    import itertools

    layout = shared_layout()
    bus = Bus(MainMemory())
    counter = itertools.count(1).__next__
    hierarchies = [
        TwoLevelHierarchy(
            HierarchyConfig.sized(l1, l2, kind=kind),
            layout,
            bus,
            next_version=counter,
        )
        for _ in range(n_cpus)
    ]
    return layout, bus, hierarchies


class TestReadSharing:
    def test_second_reader_sees_shared_state(self):
        layout, bus, (h0, h1) = machine()
        h0.access(1, SHARED[1], R)
        h1.access(2, SHARED[2], R)
        for hier, pid in ((h0, 1), (h1, 2)):
            paddr = layout.translate(pid, SHARED[pid])
            _, sub = hier.rcache.lookup(paddr)
            assert sub.state is ShareState.SHARED

    def test_lone_reader_is_private(self):
        layout, bus, (h0, h1) = machine()
        h0.access(1, SHARED[1], R)
        paddr = layout.translate(1, SHARED[1])
        _, sub = h0.rcache.lookup(paddr)
        assert sub.state is ShareState.PRIVATE

    def test_read_after_remote_write_gets_fresh_data(self):
        layout, bus, (h0, h1) = machine()
        version = h0.access(1, SHARED[1], W).version
        result = h1.access(2, SHARED[2], R)
        assert result.version == version
        check_coherence([h0, h1])

    def test_remote_read_flushes_dirty_v_copy(self):
        layout, bus, (h0, h1) = machine()
        h0.access(1, SHARED[1], W)
        h1.access(2, SHARED[2], R)
        # The flush reached h0's level 1 (one coherence message).
        assert h0.stats.counters["l1_coherence_flushes"] == 1
        paddr = layout.translate(1, SHARED[1])
        _, sub = h0.rcache.lookup(paddr)
        assert not sub.vdirty and sub.state is ShareState.SHARED
        # h0's level-1 copy survives, now clean.
        child = h0.l1_caches[0].block_at(sub.v_pointer)
        assert child.valid and not child.dirty
        check_all(h0)

    def test_flush_updates_memory(self):
        layout, bus, (h0, h1) = machine()
        version = h0.access(1, SHARED[1], W).version
        h1.access(2, SHARED[2], R)
        pblock = layout.translate(1, SHARED[1]) >> 4
        assert bus.memory.peek(pblock) == version

    def test_remote_read_supplied_from_write_buffer(self):
        layout, bus, (h0, h1) = machine()
        version = h0.access(1, SHARED[1], W).version
        # Evict the dirty block into the write buffer.
        h0.access(1, SHARED[1] + h0.config.l1.size, R)
        assert len(h0.write_buffer) == 1
        result = h1.access(2, SHARED[2], R)
        assert result.version == version
        assert h0.stats.counters["l1_coherence_buffer_ops"] == 1
        assert len(h0.write_buffer) == 0
        check_all(h0)

    def test_dirty_l2_supplies_without_disturbing_l1(self):
        layout, bus, (h0, h1) = machine()
        version = h0.access(1, SHARED[1], W).version
        h0.access(1, SHARED[1] + h0.config.l1.size, R)  # evict to buffer
        h0.drain_write_buffer()                          # now rdirty in L2
        before = h0.stats.coherence_to_l1()
        result = h1.access(2, SHARED[2], R)
        assert result.version == version
        assert h0.stats.coherence_to_l1() == before  # shielded


class TestWriteInvalidation:
    def test_write_hit_on_shared_invalidates_peer(self):
        layout, bus, (h0, h1) = machine()
        h0.access(1, SHARED[1], R)
        h1.access(2, SHARED[2], R)
        h0.access(1, SHARED[1], W)  # write hit on clean shared block
        assert h1.stats.counters["l1_coherence_invalidations"] == 1
        paddr = layout.translate(2, SHARED[2])
        assert h1.rcache.lookup(paddr) is None
        assert h1.access(2, SHARED[2], R).outcome is Outcome.MEMORY

    def test_write_becomes_private_after_invalidation(self):
        layout, bus, (h0, h1) = machine()
        h0.access(1, SHARED[1], R)
        h1.access(2, SHARED[2], R)
        h0.access(1, SHARED[1], W)
        paddr = layout.translate(1, SHARED[1])
        _, sub = h0.rcache.lookup(paddr)
        assert sub.state is ShareState.PRIVATE and sub.vdirty

    def test_write_hit_on_private_is_silent(self):
        layout, bus, (h0, h1) = machine()
        h0.access(1, SHARED[1], R)
        before = dict(bus.stats.as_dict())
        h0.access(1, SHARED[1], W)
        assert bus.stats.as_dict().get("invalidate", 0) == before.get(
            "invalidate", 0
        )

    def test_write_miss_on_remote_dirty_flushes_then_invalidates(self):
        layout, bus, (h0, h1) = machine()
        h0.access(1, SHARED[1], W)
        version = h1.access(2, SHARED[2], W).version
        # h0 lost its copy entirely; h1 owns the block dirty.
        paddr = layout.translate(1, SHARED[1])
        assert h0.rcache.lookup(paddr) is None
        assert h1.access(2, SHARED[2], R).version == version
        check_coherence([h0, h1])

    def test_ping_pong_writes_stay_coherent(self):
        layout, bus, (h0, h1) = machine()
        latest = 0
        for _ in range(5):
            latest = h0.access(1, SHARED[1], W).version
            latest = h1.access(2, SHARED[2], W).version
        assert h0.access(1, SHARED[1], R).version == latest
        check_coherence([h0, h1])
        check_all(h0)
        check_all(h1)

    def test_alternating_read_write_many_blocks(self):
        layout, bus, (h0, h1) = machine()
        for i in range(32):
            addr_off = (i % 16) * 16
            h0.access(1, SHARED[1] + addr_off, W)
            h1.access(2, SHARED[2] + addr_off, R)
            h1.access(2, SHARED[2] + addr_off, W)
            h0.access(1, SHARED[1] + addr_off, R)
        check_coherence([h0, h1])
        check_all(h0)
        check_all(h1)


class TestShielding:
    def test_unrelated_traffic_never_reaches_l1(self):
        layout, bus, (h0, h1) = machine()
        h0.access(1, 0x40000, W)  # private data, never shared
        for i in range(16):
            h1.access(2, SHARED[2] + i * 16, W)
        assert h0.stats.coherence_to_l1() == 0

    def test_no_inclusion_forwards_everything(self):
        layout, bus, (h0, h1) = machine(kind=HierarchyKind.RR_NO_INCLUSION)
        h0.access(1, 0x40000, W)
        for i in range(16):
            h1.access(2, SHARED[2] + i * 16, W)
        # Every coherence transaction h1 issued was forwarded to
        # h0's level 1 as a probe.
        assert h0.stats.counters["l1_coherence_probes"] >= 16

    def test_inclusion_rr_shields_like_vr(self):
        layout, bus, (h0, h1) = machine(kind=HierarchyKind.RR_INCLUSION)
        h0.access(1, 0x40000, W)
        for i in range(16):
            h1.access(2, SHARED[2] + i * 16, W)
        assert h0.stats.coherence_to_l1() == 0

    def test_message_count_ordering_across_kinds(self):
        """The paper's Tables 11-13 ordering: VR ~ RR(incl) << RR(no incl).

        Shielding wins on the *unrelated* majority of bus traffic
        (other CPUs' private misses), so the workload is mostly
        private with a little hot sharing — like the real traces.
        """
        counts = {}
        for kind in HierarchyKind:
            layout, bus, (h0, h1) = machine(kind=kind)
            h0.access(1, SHARED[1], R)  # h0 holds one shared block
            for i in range(100):
                h1.access(2, 0x40000 + i * 16, R)   # private bus misses
                if i % 25 == 0:
                    h1.access(2, SHARED[2], W)      # occasional sharing
                    h0.access(1, SHARED[1], R)
            counts[kind] = h0.stats.coherence_to_l1()
        assert counts[HierarchyKind.RR_NO_INCLUSION] > 3 * counts[HierarchyKind.VR]
        assert counts[HierarchyKind.RR_NO_INCLUSION] > 3 * counts[
            HierarchyKind.RR_INCLUSION
        ]


class TestNoInclusionCorrectness:
    def test_orphan_dirty_block_supplied_on_remote_read(self):
        layout, bus, (h0, h1) = machine(
            kind=HierarchyKind.RR_NO_INCLUSION, l1="1K", l2="1K"
        )
        version = h0.access(1, SHARED[1], W).version
        # Push the block out of h0's L2 (64 direct-mapped sets) while
        # it stays dirty in L1: walk private data mapping to all sets.
        for i in range(64):
            h0.access(1, 0x40000 + i * 16, R)
        paddr = layout.translate(1, SHARED[1])
        # L1 may still hold it dirty even though L2 does not.
        result = h1.access(2, SHARED[2], R)
        assert result.version == version
        check_coherence([h0, h1])

    def test_value_oracle_under_churn(self):
        layout, bus, (h0, h1) = machine(
            kind=HierarchyKind.RR_NO_INCLUSION, l1="1K", l2="2K"
        )
        latest = {}
        for i in range(200):
            off = (i * 48) % 2048
            if i % 3 == 0:
                latest[off // 16 * 16] = h0.access(
                    1, SHARED[1] + off // 16 * 16, W
                ).version
            else:
                got = h1.access(2, SHARED[2] + off // 16 * 16, R).version
                assert got == latest.get(off // 16 * 16, 0)
        check_coherence([h0, h1])


class TestProtocolInvariants:
    def test_single_dirty_owner_enforced(self):
        layout, bus, (h0, h1) = machine()
        h0.access(1, SHARED[1], W)
        h1.access(2, SHARED[2], W)
        check_coherence([h0, h1])

    def test_four_cpu_rotation(self):
        import itertools

        layout = MemoryLayout()
        mappings = [(pid, 0x100000 + pid * 0x10000) for pid in (1, 2, 3, 4)]
        layout.add_shared_segment("shm", mappings, 2)
        bus = Bus(MainMemory())
        counter = itertools.count(1).__next__
        hierarchies = [
            TwoLevelHierarchy(
                HierarchyConfig.sized("1K", "8K"), layout, bus,
                next_version=counter,
            )
            for _ in range(4)
        ]
        latest = 0
        for _round in range(8):
            for pid, hier in enumerate(hierarchies, start=1):
                vaddr = 0x100000 + pid * 0x10000
                latest = hier.access(pid, vaddr, W).version
        for pid, hier in enumerate(hierarchies, start=1):
            vaddr = 0x100000 + pid * 0x10000
            assert hier.access(pid, vaddr, R).version == latest
            check_all(hier)
        check_coherence(hierarchies)
