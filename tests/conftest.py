"""Shared fixtures for the test suite."""

from __future__ import annotations

import itertools

import pytest

from repro.coherence.bus import Bus, MainMemory
from repro.hierarchy.config import HierarchyConfig, HierarchyKind
from repro.hierarchy.twolevel import TwoLevelHierarchy
from repro.mmu.address_space import MemoryLayout
from repro.trace.synthetic import SyntheticWorkload, WorkloadSpec


@pytest.fixture
def layout() -> MemoryLayout:
    """A layout with one process owning a few private pages."""
    layout = MemoryLayout(page_size=4096)
    layout.add_private_segment(pid=1, name="text", base_vaddr=0x10000, n_pages=8)
    layout.add_private_segment(pid=1, name="data", base_vaddr=0x40000, n_pages=16)
    return layout


@pytest.fixture
def synonym_layout() -> MemoryLayout:
    """Two processes sharing one segment at different virtual bases,
    plus an intra-process alias pair for process 1."""
    layout = MemoryLayout(page_size=4096)
    for pid in (1, 2):
        layout.add_private_segment(pid, "data", 0x40000, 16)
    layout.add_shared_segment("shm", [(1, 0x100000), (2, 0x180000)], 4)
    layout.add_shared_segment("alias", [(1, 0x200000), (1, 0x284000)], 4)
    return layout


def build_hierarchy(
    layout: MemoryLayout,
    kind: HierarchyKind = HierarchyKind.VR,
    l1_size: str = "1K",
    l2_size: str = "8K",
    bus: Bus | None = None,
    **kwargs,
) -> TwoLevelHierarchy:
    """One hierarchy on a fresh (or given) bus."""
    bus = bus if bus is not None else Bus(MainMemory())
    config = HierarchyConfig.sized(l1_size, l2_size, kind=kind, **kwargs)
    return TwoLevelHierarchy(config, layout, bus)


@pytest.fixture
def vr(layout: MemoryLayout) -> TwoLevelHierarchy:
    """A lone V-R hierarchy on its own bus."""
    return build_hierarchy(layout)


@pytest.fixture
def version_counter():
    """A shared monotonically increasing version source."""
    return itertools.count(1).__next__


def tiny_spec(**overrides) -> WorkloadSpec:
    """A fast little workload spec for integration-style tests."""
    defaults = dict(
        name="tiny",
        n_cpus=2,
        total_refs=8000,
        context_switches=6,
        processes_per_cpu=2,
        seed=42,
        text_pages=4,
        data_pages=16,
        shared_pages=4,
        alias_pages=2,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


@pytest.fixture
def tiny_workload() -> SyntheticWorkload:
    """A small deterministic two-CPU workload."""
    return SyntheticWorkload(tiny_spec())
