"""Unit tests for the R-cache structure (subentries, sub-block math)."""


from repro.cache.config import CacheConfig
from repro.coherence.protocol import ShareState
from repro.hierarchy.rcache import RCache, RCacheBlock, SubEntry


def make_rcache(n_subentries=2):
    # 1K cache, 32-byte L2 blocks, two 16-byte subentries each.
    return RCache(CacheConfig.create("1K", 32), n_subentries=n_subentries)


class TestSubEntry:
    def test_starts_invalid_and_unencumbered(self):
        sub = SubEntry()
        assert not sub.valid
        assert sub.unencumbered
        assert not sub.dirty_anywhere

    def test_fill_sets_state(self):
        sub = SubEntry()
        sub.fill(version=5, shared=True)
        assert sub.valid and sub.version == 5
        assert sub.state is ShareState.SHARED

    def test_fill_private(self):
        sub = SubEntry()
        sub.fill(version=1, shared=False)
        assert sub.state is ShareState.PRIVATE

    def test_encumbered_by_inclusion_or_buffer(self):
        sub = SubEntry()
        sub.inclusion = True
        assert not sub.unencumbered
        sub.inclusion = False
        sub.buffer = True
        assert not sub.unencumbered

    def test_dirty_anywhere_variants(self):
        for field in ("vdirty", "rdirty", "buffer"):
            sub = SubEntry()
            setattr(sub, field, True)
            assert sub.dirty_anywhere

    def test_reset(self):
        sub = SubEntry()
        sub.fill(3, True)
        sub.inclusion = True
        sub.reset()
        assert not sub.valid and sub.unencumbered and sub.version == 0

    def test_repr_flags(self):
        sub = SubEntry()
        sub.valid = True
        sub.inclusion = True
        assert "I" in repr(sub)


class TestRCacheBlock:
    def test_refresh_valid_tracks_subentries(self):
        block = RCacheBlock(0, 0, n_subentries=2)
        block.refresh_valid()
        assert not block.valid
        block.subentries[1].valid = True
        block.refresh_valid()
        assert block.valid

    def test_invalidate_resets_subentries(self):
        block = RCacheBlock(0, 0, n_subentries=2)
        block.subentries[0].fill(1, False)
        block.refresh_valid()
        block.invalidate()
        assert not block.valid
        assert not block.subentries[0].valid

    def test_unencumbered_all_subentries(self):
        block = RCacheBlock(0, 0, n_subentries=2)
        assert block.unencumbered
        block.subentries[1].buffer = True
        assert not block.unencumbered


class TestRCacheAddressing:
    def test_sub_index_splits_l2_block(self):
        rc = make_rcache()
        assert rc.sub_index(0x00) == 0
        assert rc.sub_index(0x10) == 1
        assert rc.sub_index(0x20) == 0  # next L2 block

    def test_sub_block_size(self):
        rc = make_rcache()
        assert rc.sub_block_size == 16

    def test_pblock_round_trip(self):
        rc = make_rcache()
        paddr = 0x12340
        block = rc.store.victim(paddr)
        block.tag = rc.config.tag(paddr)
        index = rc.sub_index(paddr)
        assert rc.pblock_of(block, index) == rc.sub_block_number(paddr)

    def test_lookup_requires_valid_subentry(self):
        rc = make_rcache()
        paddr = 0x40
        block = rc.store.victim(paddr)
        block.tag = rc.config.tag(paddr)
        block.subentries[rc.sub_index(paddr)].valid = True
        block.refresh_valid()
        assert rc.lookup(paddr) is not None
        # The sibling sub-block is not valid: its lookup misses.
        sibling = paddr ^ 0x10
        assert rc.lookup(sibling) is None

    def test_lookup_sub_block_equivalent(self):
        rc = make_rcache()
        paddr = 0x80
        block = rc.store.victim(paddr)
        block.tag = rc.config.tag(paddr)
        block.subentries[rc.sub_index(paddr)].valid = True
        block.refresh_valid()
        assert rc.lookup_sub_block(rc.sub_block_number(paddr)) is not None

    def test_slot_and_block_at_inverse(self):
        rc = make_rcache()
        block = rc.store.ways(3)[0]
        assert rc.block_at(rc.slot(block)) is block

    def test_victim_prefers_unencumbered(self):
        rc = RCache(
            CacheConfig.create("64", 32, associativity=2), n_subentries=2
        )
        paddr = 0x100
        first = rc.store.victim(paddr)
        first.tag = rc.config.tag(paddr)
        first.subentries[0].valid = True
        first.subentries[0].inclusion = True
        first.refresh_valid()
        rc.store.note_install(first)
        second = rc.store.victim(paddr + 64)
        second.tag = rc.config.tag(paddr + 64)
        second.subentries[0].valid = True
        second.refresh_valid()
        rc.store.note_install(second)
        rc.store.touch(second)  # second is MRU: plain LRU would evict first
        victim = rc.victim(paddr + 128, prefer_unencumbered=True)
        assert victim is second  # the unencumbered one despite recency

    def test_victim_plain_lru_without_preference(self):
        rc = RCache(
            CacheConfig.create("64", 32, associativity=2), n_subentries=2
        )
        paddr = 0x100
        first = rc.store.victim(paddr)
        first.tag = rc.config.tag(paddr)
        first.subentries[0].valid = True
        first.subentries[0].inclusion = True
        first.refresh_valid()
        rc.store.note_install(first)
        second = rc.store.victim(paddr + 64)
        second.tag = rc.config.tag(paddr + 64)
        second.subentries[0].valid = True
        second.refresh_valid()
        rc.store.note_install(second)
        rc.store.touch(second)
        victim = rc.victim(paddr + 128, prefer_unencumbered=False)
        assert victim is first  # strict LRU ignores encumbrance
