"""Engine equivalence: the SoA core against the reference hierarchy.

The struct-of-arrays core (``repro.core.soa``) claims *bit-identical*
behaviour to the object engine.  This module holds the deterministic
half of that argument:

* the differential harness verdicts on scaled tier-1 workloads,
* checkpoint round-trips through the array-backed state (including a
  cross-engine restore: an object checkpoint resumed on the SoA core),
* the protocol model checker exploring the SoA machine,
* engine plumbing (``Multiprocessor``, ``RunOptions``, the CLIs).

The randomized half lives in ``test_engine_fuzz.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.differential import (
    canonical_digest,
    diff_workload,
)
from repro.analysis.explore import explore
from repro.analysis.model import ProtocolModel, scenario_named
from repro.core.soa import SoAHierarchy
from repro.experiments.base import (
    RunOptions,
    clear_caches,
    set_run_options,
    simulate,
)
from repro.experiments.cli import build_parser
from repro.faults.checkpoint import export_machine, restore_machine
from repro.hierarchy.config import HierarchyConfig, HierarchyKind
from repro.system.multiprocessor import Multiprocessor
from repro.trace.synthetic import SyntheticWorkload, WorkloadSpec


def _machine(layout, n_cpus, config, engine):
    return Multiprocessor(layout, n_cpus, config, engine=engine)


def _digest(machine, refs):
    return canonical_digest(export_machine(machine, refs, refs))


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    set_run_options(RunOptions())
    clear_caches()


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        spec = WorkloadSpec(name="sel", total_refs=100)
        layout = SyntheticWorkload(spec).layout
        config = HierarchyConfig.sized("1K", "8K")
        with pytest.raises(ValueError, match="unknown engine"):
            Multiprocessor(layout, 2, config, engine="simd")
        with pytest.raises(ValueError, match="unknown engine"):
            ProtocolModel(scenario_named("vr-invalidate-wb"), engine="simd")

    def test_soa_machine_builds_soa_hierarchies(self):
        spec = WorkloadSpec(name="sel", total_refs=100)
        layout = SyntheticWorkload(spec).layout
        machine = _machine(layout, 2, HierarchyConfig.sized("1K", "8K"), "soa")
        assert all(isinstance(h, SoAHierarchy) for h in machine.hierarchies)

    def test_cli_parses_engine_flag(self):
        args = build_parser().parse_args(["table6", "--engine", "soa"])
        assert args.engine == "soa"
        assert build_parser().parse_args(["table6"]).engine == "object"

    def test_run_options_key_separates_engines(self):
        assert (
            RunOptions(engine="object").result_key_parts()
            != RunOptions(engine="soa").result_key_parts()
        )

    def test_simulate_honours_engine_option(self):
        """``simulate`` under ``engine="soa"`` returns the object
        engine's exact counters (and actually ran the SoA core — the
        memo keys the engines apart, so no cache can alias them)."""
        results = {}
        for engine in ("object", "soa"):
            set_run_options(RunOptions(engine=engine))
            result = simulate(
                "abaqus", 0.004, "4K", "64K", HierarchyKind.VR
            )
            results[engine] = json.dumps(
                {
                    "refs": result.refs_processed,
                    "bus": result.bus_transactions,
                    "metrics": result.metrics().snapshot(),
                },
                sort_keys=True,
            )
        assert results["object"] == results["soa"]


class TestDifferentialHarness:
    def test_tier1_vr_bit_identical(self):
        diff = diff_workload("abaqus", scale=0.01)
        assert diff.equal, diff.mismatches

    def test_tier1_rr_bit_identical(self):
        config = HierarchyConfig.sized(
            "4K", "64K", kind=HierarchyKind.RR_INCLUSION
        )
        diff = diff_workload("thor", scale=0.005, config=config)
        assert diff.equal, diff.mismatches


class TestCheckpointRoundTrip:
    SPEC = WorkloadSpec(
        name="ckpt",
        n_cpus=2,
        total_refs=6_000,
        context_switches=6,
        seed=11,
        text_pages=8,
        data_pages=32,
    )
    CONFIG = HierarchyConfig.sized("1K", "8K")

    def _records_and_layout(self):
        workload = SyntheticWorkload(self.SPEC)
        return workload.records(), workload.layout

    def test_soa_checkpoint_resumes_identically(self):
        """Export mid-run, restore into a fresh SoA machine, finish
        both; every observable must agree."""
        records, layout = self._records_and_layout()
        half = len(records) // 2
        live = _machine(layout, 2, self.CONFIG, "soa")
        live.run(records[:half])
        state = export_machine(live, half, half)

        resumed = _machine(layout, 2, self.CONFIG, "soa")
        restore_machine(resumed, state)

        r_live = live.run(records[half:])
        r_resumed = resumed.run(records[half:])
        assert r_live.refs_processed == r_resumed.refs_processed
        refs = r_live.refs_processed
        assert _digest(live, refs) == _digest(resumed, refs)

    def test_object_checkpoint_resumes_on_soa_core(self):
        """The checkpoint format is engine-agnostic: an object-engine
        export restored into an SoA machine must continue exactly like
        an uninterrupted SoA run (and vice versa by symmetry)."""
        records, layout = self._records_and_layout()
        half = len(records) // 2

        reference = _machine(layout, 2, self.CONFIG, "soa")
        reference.run(records)

        donor = _machine(layout, 2, self.CONFIG, "object")
        donor.run(records[:half])
        state = export_machine(donor, half, half)
        resumed = _machine(layout, 2, self.CONFIG, "soa")
        restore_machine(resumed, state)
        resumed.run(records[half:])

        refs = len([r for r in records if r.is_memory])
        assert _digest(reference, refs) == _digest(resumed, refs)


class TestModelChecker:
    def test_soa_state_space_matches_object(self):
        """The BFS over the SoA machine reaches exactly the reference
        engine's abstract states and transitions."""
        scenario = scenario_named("vr-invalidate-wb")
        reports = {
            engine: explore(scenario, with_snoop_table=False, engine=engine)
            for engine in ("object", "soa")
        }
        obj, soa = reports["object"], reports["soa"]
        assert soa.ok
        assert not soa.counterexamples
        assert obj.states == soa.states
        assert [t.to_dict() for t in obj.transitions] == [
            t.to_dict() for t in soa.transitions
        ]
