"""The parallel runner: planning, pooling, and the persistent cache.

The load-bearing guarantees:

* the planner's jobs are exactly what the runners simulate, deduped
  across experiments;
* a pooled run produces **bit-identical** experiment data to a serial
  run (simulations are deterministic, so process fan-out must be
  invisible);
* a warm disk cache satisfies a rerun without executing anything;
* ``clear_caches`` really clears, including the disk.

Everything runs at a tiny scale (~13k references per trace) so the
whole module takes seconds.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.experiments import RUNNERS, base
from repro.experiments.base import (
    RunOptions,
    clear_caches,
    executed_simulations,
    set_run_options,
    simulate,
    trace_records,
)
from repro.hierarchy.config import HierarchyKind
from repro.runner import plan_jobs, run_jobs
from repro.runner.disk_cache import ResultCache, get_cache, schema_hash

SCALE = 0.004


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    set_run_options(RunOptions())
    clear_caches()


def _data(experiment_id: str) -> str:
    """An experiment's raw data, canonicalised for exact comparison."""
    result = RUNNERS[experiment_id](scale=SCALE)
    return json.dumps(result.data, default=str, sort_keys=True)


# -- planner -------------------------------------------------------------------


class TestPlanner:
    def test_jobs_are_deduplicated_across_experiments(self):
        # Figures reuse the Table 6 grid verbatim.
        table6_jobs = plan_jobs(["table6"], SCALE)
        union = plan_jobs(["table6", "figures"], SCALE)
        assert sorted(map(repr, union)) == sorted(map(repr, table6_jobs))

        # The full plan is far smaller than the sum of its parts.
        ids = ["table6", "table7", "figures", "table8_10", "table11_13", "ablation"]
        total = sum(len(plan_jobs([i], SCALE)) for i in ids)
        assert len(plan_jobs(ids, SCALE)) < total

    def test_jobs_ordered_costliest_first(self):
        jobs = plan_jobs(["table11_13"], SCALE)
        costs = [job.cost() for job in jobs]
        assert costs == sorted(costs, reverse=True)
        # No-inclusion jobs pay the snoop-forwarding premium.
        assert jobs[0].kind is HierarchyKind.RR_NO_INCLUSION

    def test_unplannable_experiments_plan_nothing(self):
        assert plan_jobs(["table1", "table2", "table3", "table5"], SCALE) == []

    def test_planned_jobs_cover_the_runner(self):
        """After pooling the plan, the runner replays nothing."""
        run_jobs(plan_jobs(["table8_10"], SCALE), n_workers=1)
        executed_before = executed_simulations()
        RUNNERS["table8_10"](scale=SCALE)
        assert executed_simulations() == executed_before


# -- pool ----------------------------------------------------------------------


class TestPool:
    def test_parallel_matches_serial_bit_for_bit(self):
        """Every simulation-backed runner, --jobs 4 vs serial."""
        ids = ["table6", "table7", "figures", "table8_10", "table11_13", "ablation"]
        serial = {i: _data(i) for i in ids}

        clear_caches()
        report = run_jobs(plan_jobs(ids, SCALE), n_workers=4)
        assert report.executed == report.total_jobs > 0
        for experiment_id, expected in serial.items():
            assert _data(experiment_id) == expected

    def test_memo_hits_short_circuit(self):
        jobs = plan_jobs(["table6"], SCALE)
        first = run_jobs(jobs, n_workers=2)
        second = run_jobs(jobs, n_workers=2)
        assert first.executed == len(jobs)
        assert second.executed == 0
        assert second.memo_hits == len(jobs)


# -- persistent cache ----------------------------------------------------------


def _cache_hammer(root, worker_id, rounds):
    """Store/load loop over a small shared key space (child process).

    Returns the number of loads that produced a value; every value a
    load does produce must be structurally whole — a torn read here
    means the cache leaked a partial entry across processes.
    """
    cache = ResultCache(root)
    hits = 0
    for i in range(rounds):
        key = ("stress", i % 8)
        cache.store(key, {"worker": worker_id, "i": i, "blob": b"x" * 256})
        value = cache.load(key)
        if value is not None:
            if value["blob"] != b"x" * 256:
                raise AssertionError(f"torn read: {value!r}")
            hits += 1
    return hits


def _cache_saboteur(root, rounds):
    """Clobber final entry paths with garbage, in place (child process).

    Non-atomic on purpose: this simulates crashed writers and disk
    corruption.  Every subsequent load must treat the damage as a miss
    (and delete it), never crash.
    """
    cache = ResultCache(root)
    damaged = 0
    for i in range(rounds):
        key = ("stress", i % 8)
        cache.schema_dir.mkdir(parents=True, exist_ok=True)
        try:
            with open(cache._path(key), "wb") as handle:
                handle.write(b"\x80\x05 torn " + bytes([i % 251]) * (i % 29))
            damaged += 1
        except OSError:
            pass
        cache.load(key)
    return damaged


class TestDiskCache:
    def test_warm_cache_executes_nothing(self, tmp_path):
        set_run_options(RunOptions(cache_dir=str(tmp_path)))
        jobs = plan_jobs(["table6"], SCALE)
        cold = run_jobs(jobs, n_workers=2)
        assert cold.executed == len(jobs)
        reference = _data("table6")

        # A "new process": drop the memo but keep the disk.
        base._sim_cache.clear()
        base._trace_cache.clear()
        warm = run_jobs(jobs, n_workers=2)
        assert warm.executed == 0
        assert warm.disk_hits == len(jobs)
        executed_before = executed_simulations()
        assert _data("table6") == reference
        assert executed_simulations() == executed_before

    def test_simulate_consults_the_disk_directly(self, tmp_path):
        """The cache works without the pool: simulate() itself reads it."""
        set_run_options(RunOptions(cache_dir=str(tmp_path)))
        before = simulate("pops", SCALE, "4K", "64K", HierarchyKind.VR)
        base._sim_cache.clear()
        executed_before = executed_simulations()
        after = simulate("pops", SCALE, "4K", "64K", HierarchyKind.VR)
        assert executed_simulations() == executed_before
        assert (
            after.aggregate().counters.as_dict()
            == before.aggregate().counters.as_dict()
        )

    def test_clear_caches_clears_the_disk(self, tmp_path):
        set_run_options(RunOptions(cache_dir=str(tmp_path)))
        simulate("pops", SCALE, "4K", "64K", HierarchyKind.VR)
        cache = get_cache(str(tmp_path))
        assert cache.entry_count() == 1
        clear_caches()
        assert cache.entry_count() == 0
        assert executed_simulations() == 0

    def test_schema_change_invalidates(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.store(("a",), {"x": 1})
        assert cache.load(("a",)) == {"x": 1}

        # An older code version left entries under a different schema;
        # the current cache never sees them and prunes them on write.
        stale = tmp_path / ("0" * 16)
        stale.mkdir()
        (stale / "deadbeef.pkl").write_bytes(b"junk")
        fresh = ResultCache(str(tmp_path))
        fresh.store(("b",), {"x": 2})
        assert not stale.exists()
        assert fresh.load(("a",)) == {"x": 1}

    def test_torn_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.store(("a",), {"x": 1})
        for entry in cache.schema_dir.glob("*.pkl"):
            entry.write_bytes(b"\x80corrupt")
        assert cache.load(("a",)) is None

    def test_options_partition_the_cache(self, tmp_path):
        """Guarded and unguarded results never mix on disk."""
        set_run_options(RunOptions(cache_dir=str(tmp_path)))
        simulate("pops", SCALE, "4K", "64K", HierarchyKind.VR)
        set_run_options(RunOptions(cache_dir=str(tmp_path), check_every=500))
        simulate("pops", SCALE, "4K", "64K", HierarchyKind.VR)
        assert get_cache(str(tmp_path)).entry_count() == 2

    def test_schema_hash_is_stable(self):
        assert schema_hash() == schema_hash()
        assert len(schema_hash()) == 16

    def test_concurrent_processes_with_sabotage(self, tmp_path):
        """Several processes hammering one cache root while another
        deliberately corrupts entries in place: no load may ever raise
        or return a torn value, and the cache must stay usable after.

        This is the multi-process guarantee the serving layer leans on
        — many ``repro-serve`` workers (and ad-hoc CLI runs) share one
        cache directory.
        """
        root = str(tmp_path / "shared")
        rounds = 150
        with ProcessPoolExecutor(max_workers=5) as pool:
            futures = [
                pool.submit(_cache_hammer, root, worker_id, rounds)
                for worker_id in range(4)
            ]
            futures.append(pool.submit(_cache_saboteur, root, rounds))
            outcomes = [future.result(timeout=120) for future in futures]
        assert all(count > 0 for count in outcomes)

        # Whatever the dust settled to, every entry is valid-or-miss,
        # and corrupt leftovers are deleted on first touch.
        cache = ResultCache(root)
        for slot in range(8):
            value = cache.load(("stress", slot))
            assert value is None or value["blob"] == b"x" * 256
        leftovers = list(cache.schema_dir.glob(".*.tmp"))
        assert not leftovers
        cache.store(("stress", 0), {"blob": b"x" * 256, "fresh": True})
        assert cache.load(("stress", 0))["fresh"]


# -- trace cache bound ---------------------------------------------------------


class TestTraceCache:
    def test_lru_bound(self):
        scales = [SCALE * (1 + i) for i in range(base._TRACE_CACHE_ENTRIES + 2)]
        for scale in scales:
            trace_records("pops", scale)
        assert len(base._trace_cache) == base._TRACE_CACHE_ENTRIES
        # The most recent entries survived, the oldest were evicted.
        assert ("pops", scales[-1]) in base._trace_cache
        assert ("pops", scales[0]) not in base._trace_cache

    def test_lru_refresh_on_hit(self):
        scales = [SCALE * (1 + i) for i in range(base._TRACE_CACHE_ENTRIES)]
        for scale in scales:
            trace_records("pops", scale)
        trace_records("pops", scales[0])  # refresh the oldest
        trace_records("pops", SCALE / 2)  # force one eviction
        assert ("pops", scales[0]) in base._trace_cache
        assert ("pops", scales[1]) not in base._trace_cache

    def test_timings_recorded(self):
        result = simulate("pops", SCALE, "4K", "64K", HierarchyKind.VR)
        assert result.timings["replay_s"] > 0
        assert "trace_gen_s" in result.timings
