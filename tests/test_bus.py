"""Unit tests for the snooping bus and version-stamped memory."""

import pytest

from repro.coherence.bus import Bus, MainMemory
from repro.coherence.messages import BusOp, BusTransaction, SnoopReply
from repro.common.errors import ProtocolError


class _Snooper:
    """Scripted snooper: replies as configured and records traffic."""

    def __init__(self, has_copy=False, supplied_version=None):
        self.has_copy = has_copy
        self.supplied_version = supplied_version
        self.seen: list[BusTransaction] = []

    def snoop(self, txn):
        self.seen.append(txn)
        return SnoopReply(self.has_copy, self.supplied_version)


class TestMainMemory:
    def test_unwritten_block_reads_zero(self):
        assert MainMemory().read(5) == 0

    def test_write_then_read(self):
        memory = MainMemory()
        memory.write(5, 42)
        assert memory.read(5) == 42

    def test_peek_does_not_count(self):
        memory = MainMemory()
        memory.peek(5)
        assert memory.stats["reads"] == 0
        memory.read(5)
        assert memory.stats["reads"] == 1


class TestBus:
    def test_attach_returns_indices(self):
        bus = Bus()
        assert bus.attach(_Snooper()) == 0
        assert bus.attach(_Snooper()) == 1
        assert bus.n_snoopers == 2

    def test_read_miss_from_memory(self):
        bus = Bus()
        bus.attach(_Snooper())
        bus.memory.write(7, 99)
        result = bus.issue(BusTransaction(BusOp.READ_MISS, 0, 7))
        assert result.version == 99
        assert not result.shared

    def test_origin_not_snooped(self):
        bus = Bus()
        origin = _Snooper()
        other = _Snooper()
        bus.attach(origin)
        bus.attach(other)
        bus.issue(BusTransaction(BusOp.READ_MISS, 0, 7))
        assert origin.seen == []
        assert len(other.seen) == 1

    def test_shared_when_peer_has_copy(self):
        bus = Bus()
        bus.attach(_Snooper())
        bus.attach(_Snooper(has_copy=True))
        result = bus.issue(BusTransaction(BusOp.READ_MISS, 0, 7))
        assert result.shared

    def test_dirty_peer_supplies_and_memory_updated(self):
        bus = Bus()
        bus.attach(_Snooper())
        bus.attach(_Snooper(has_copy=True, supplied_version=55))
        result = bus.issue(BusTransaction(BusOp.READ_MISS, 0, 7))
        assert result.version == 55
        assert bus.memory.peek(7) == 55
        assert bus.stats["cache_to_cache"] == 1

    def test_two_suppliers_is_protocol_error(self):
        bus = Bus()
        bus.attach(_Snooper())
        bus.attach(_Snooper(supplied_version=1))
        bus.attach(_Snooper(supplied_version=2))
        with pytest.raises(ProtocolError, match="supplied dirty data"):
            bus.issue(BusTransaction(BusOp.READ_MISS, 0, 7))

    def test_invalidate_returns_no_data(self):
        bus = Bus()
        bus.attach(_Snooper())
        bus.attach(_Snooper(has_copy=True))
        result = bus.issue(BusTransaction(BusOp.INVALIDATE, 0, 7))
        assert result.version is None
        assert result.shared

    def test_write_back_helper(self):
        bus = Bus()
        bus.write_back(3, 77)
        assert bus.memory.peek(3) == 77
        assert bus.stats["write_back"] == 1

    def test_write_back_transaction_rejected_via_issue(self):
        bus = Bus()
        with pytest.raises(ProtocolError):
            bus.issue(BusTransaction(BusOp.WRITE_BACK, 0, 1))

    def test_transaction_stats_by_type(self):
        bus = Bus()
        bus.attach(_Snooper())
        bus.issue(BusTransaction(BusOp.READ_MISS, 0, 1))
        bus.issue(BusTransaction(BusOp.INVALIDATE, 0, 1))
        bus.issue(BusTransaction(BusOp.READ_MODIFIED_WRITE, 0, 1))
        assert bus.stats["read_miss"] == 1
        assert bus.stats["invalidate"] == 1
        assert bus.stats["read_modified_write"] == 1

    def test_coherence_flag_on_ops(self):
        assert BusOp.READ_MISS.is_coherence
        assert BusOp.INVALIDATE.is_coherence
        assert BusOp.READ_MODIFIED_WRITE.is_coherence
        assert not BusOp.WRITE_BACK.is_coherence
