"""Hypothesis differential fuzzing: object vs SoA replay engines.

Every example draws a short synthetic workload (mixed reference kinds,
synonym aliases, context switches, 2-4 CPUs) and a hierarchy
configuration from a matrix spanning all three organisations, both
protocols, both write policies, multi-way stores, multi-subentry
level-2 blocks and deeper write buffers — then replays the identical
trace through both engines and requires byte-identical metrics
snapshots and equal canonical state digests.

This is the randomized half of the engine-equivalence argument; the
deterministic half lives in ``repro-diff`` (tier-1 workloads) and the
``repro-verify`` BFS (the abstract protocol state space).
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.differential import canonical_digest
from repro.coherence.protocol import WritePolicy
from repro.faults.checkpoint import export_machine
from repro.hierarchy.config import HierarchyConfig, HierarchyKind, Protocol
from repro.system.multiprocessor import Multiprocessor
from repro.trace.synthetic import SyntheticWorkload, WorkloadSpec

#: Known-valid hierarchy shapes the fuzzer samples from.  Small caches
#: keep the state space dense (more evictions, synonyms and inclusion
#: traffic per reference), which is where the engines could diverge.
CONFIGS = [
    HierarchyConfig.sized("1K", "8K"),
    HierarchyConfig.sized("1K", "8K", l1_associativity=2, l2_associativity=2),
    HierarchyConfig.sized("1K", "8K", l2_block_size=64),
    HierarchyConfig.sized("1K", "8K", l1_pid_tags=True),
    HierarchyConfig.sized("1K", "8K", kind=HierarchyKind.RR_INCLUSION),
    HierarchyConfig.sized("1K", "8K", kind=HierarchyKind.RR_NO_INCLUSION),
    HierarchyConfig.sized("1K", "8K", l1_write_policy=WritePolicy.WRITE_THROUGH),
    HierarchyConfig.sized("1K", "8K", protocol=Protocol.WRITE_UPDATE),
    HierarchyConfig.sized("1K", "8K", split_l1=True, write_buffer_capacity=4),
    HierarchyConfig.sized(
        "2K",
        "16K",
        kind=HierarchyKind.RR_INCLUSION,
        l2_block_size=32,
        l1_associativity=2,
        l1_replacement="fifo",
        l2_replacement="random",
    ),
]


def _observables(machine: Multiprocessor, result) -> tuple[bytes, str]:
    metrics = json.dumps(result.metrics().snapshot(), sort_keys=True).encode()
    state = export_machine(
        machine, result.refs_processed, result.refs_processed
    )
    return metrics, canonical_digest(state)


@settings(max_examples=25, deadline=None)
@given(
    config_index=st.integers(0, len(CONFIGS) - 1),
    n_cpus=st.integers(2, 4),
    total_refs=st.integers(300, 1500),
    context_switches=st.integers(0, 10),
    alias_pages=st.integers(1, 8),
    shared_pages=st.integers(4, 24),
    processes_per_cpu=st.integers(1, 3),
    seed=st.integers(0, 2**20),
)
def test_engines_bit_identical(
    config_index,
    n_cpus,
    total_refs,
    context_switches,
    alias_pages,
    shared_pages,
    processes_per_cpu,
    seed,
):
    spec = WorkloadSpec(
        name="fuzz",
        n_cpus=n_cpus,
        total_refs=total_refs,
        context_switches=context_switches,
        alias_pages=alias_pages,
        shared_pages=shared_pages,
        processes_per_cpu=processes_per_cpu,
        seed=seed,
        text_pages=4,
        data_pages=8,
        stack_pages=2,
    )
    config = CONFIGS[config_index]
    outputs = {}
    for engine in ("object", "soa"):
        workload = SyntheticWorkload(spec)
        machine = Multiprocessor(
            workload.layout, n_cpus, config, engine=engine
        )
        result = machine.run(workload)
        assert result.refs_processed > 0
        outputs[engine] = _observables(machine, result)
    assert outputs["object"][0] == outputs["soa"][0], (
        "metrics snapshots diverged between engines"
    )
    assert outputs["object"][1] == outputs["soa"][1], (
        "machine state digests diverged between engines"
    )
