"""Behavioural tests for a single two-level hierarchy (no bus peers).

These exercise the paper's section-3 algorithm step by step: hit and
miss paths, pointer maintenance, write-backs through the buffer,
synonym resolution (sameset and move), swapped-valid context switches
and the relaxed inclusion replacement rule.
"""

import pytest

from tests.conftest import build_hierarchy
from repro.common.errors import ProtocolError
from repro.hierarchy.checker import check_all
from repro.hierarchy.config import HierarchyKind
from repro.hierarchy.twolevel import Outcome
from repro.mmu.address_space import MemoryLayout
from repro.trace.record import RefKind

R = RefKind.READ
W = RefKind.WRITE
I = RefKind.INSTR


class TestBasicPaths:
    def test_cold_read_misses_both_levels(self, vr):
        result = vr.access(1, 0x40000, R)
        assert result.outcome is Outcome.MEMORY
        assert vr.stats.counters["l1_misses_r"] == 1
        assert vr.stats.counters["l2_misses"] == 1

    def test_second_read_hits_l1(self, vr):
        vr.access(1, 0x40000, R)
        result = vr.access(1, 0x40004, R)  # same block
        assert result.outcome is Outcome.L1_HIT
        assert vr.stats.counters["l1_hits_r"] == 1

    def test_cold_read_version_is_memory_default(self, vr):
        assert vr.access(1, 0x40000, R).version == 0

    def test_l1_conflict_hits_l2(self, vr):
        conflict = 0x40000 + vr.config.l1.size  # same L1 set, new tag
        vr.access(1, 0x40000, R)
        vr.access(1, conflict, R)
        result = vr.access(1, 0x40000, R)
        assert result.outcome is Outcome.L2_HIT
        assert vr.stats.counters["l2_hits"] >= 1

    def test_inclusion_bit_set_after_fill(self, vr):
        vr.access(1, 0x40000, R)
        paddr = vr.layout.translate(1, 0x40000)
        rblock, sub = vr.rcache.lookup(paddr)
        assert sub.inclusion
        assert sub.v_pointer is not None
        check_all(vr)

    def test_pointers_linked_both_ways(self, vr):
        vr.access(1, 0x40000, R)
        paddr = vr.layout.translate(1, 0x40000)
        rblock, sub = vr.rcache.lookup(paddr)
        child = vr.l1_caches[0].block_at(sub.v_pointer)
        assert child.valid
        assert tuple(child.r_pointer)[:2] == (rblock.set_index, rblock.way)

    def test_instruction_fetch_counted_separately(self, vr):
        vr.access(1, 0x10000, I)
        assert vr.stats.counters["l1_misses_i"] == 1
        assert vr.stats.l1_refs(RefKind.INSTR) == 1

    def test_write_miss_sets_dirty_and_vdirty(self, vr):
        result = vr.access(1, 0x40000, W)
        assert result.version > 0
        paddr = vr.layout.translate(1, 0x40000)
        _, sub = vr.rcache.lookup(paddr)
        assert sub.vdirty
        child = vr.l1_caches[0].block_at(sub.v_pointer)
        assert child.dirty

    def test_write_then_read_returns_written_version(self, vr):
        written = vr.access(1, 0x40000, W).version
        assert vr.access(1, 0x40008, R).version == written

    def test_write_hit_on_clean_bumps_version(self, vr):
        vr.access(1, 0x40000, R)
        first = vr.access(1, 0x40000, W).version
        second = vr.access(1, 0x40000, W).version
        assert second > first

    def test_tlb_not_consulted_on_vr_l1_hit(self, vr):
        vr.access(1, 0x40000, R)
        misses_after_fill = vr.tlb.stats["misses"] + vr.tlb.stats["hits"]
        vr.access(1, 0x40000, R)
        assert vr.tlb.stats["misses"] + vr.tlb.stats["hits"] == misses_after_fill

    def test_rr_translates_every_access(self, layout):
        rr = build_hierarchy(layout, HierarchyKind.RR_INCLUSION)
        rr.access(1, 0x40000, R)
        rr.access(1, 0x40000, R)
        assert rr.tlb.stats["hits"] + rr.tlb.stats["misses"] == 2

    def test_h1_h2_ratios(self, vr):
        vr.access(1, 0x40000, R)
        vr.access(1, 0x40000, R)
        assert vr.stats.l1_hit_ratio() == 0.5
        assert vr.stats.l2_hit_ratio() == 0.0


class TestWriteBackPath:
    def test_dirty_eviction_goes_to_buffer_with_buffer_bit(self, vr):
        vr.access(1, 0x40000, W)
        paddr = vr.layout.translate(1, 0x40000)
        conflict = 0x40000 + vr.config.l1.size
        vr.access(1, conflict, R)  # evicts the dirty block
        pblock = paddr >> 4
        assert vr.write_buffer.find(pblock) is not None
        _, sub = vr.rcache.lookup(paddr)
        assert sub.buffer and not sub.inclusion and not sub.vdirty
        check_all(vr)

    def test_buffer_drains_into_l2(self, vr):
        version = vr.access(1, 0x40000, W).version
        paddr = vr.layout.translate(1, 0x40000)
        conflict = 0x40000 + vr.config.l1.size
        vr.access(1, conflict, R)
        vr.drain_write_buffer()
        _, sub = vr.rcache.lookup(paddr)
        assert not sub.buffer and sub.rdirty and sub.version == version
        check_all(vr)

    def test_background_drain_happens_during_accesses(self, vr):
        vr.access(1, 0x40000, W)
        vr.access(1, 0x40000 + vr.config.l1.size, R)
        assert len(vr.write_buffer) == 1
        for i in range(2 * vr.drain_period):
            vr.access(1, 0x40000 + vr.config.l1.size + 16 * (i + 1), R)
        assert len(vr.write_buffer) == 0

    def test_clean_eviction_no_buffer(self, vr):
        vr.access(1, 0x40000, R)
        vr.access(1, 0x40000 + vr.config.l1.size, R)
        assert len(vr.write_buffer) == 0
        paddr = vr.layout.translate(1, 0x40000)
        _, sub = vr.rcache.lookup(paddr)
        assert not sub.inclusion and not sub.buffer

    def test_reread_after_eviction_restores_from_buffer(self, vr):
        version = vr.access(1, 0x40000, W).version
        conflict = 0x40000 + vr.config.l1.size
        vr.access(1, conflict, R)
        result = vr.access(1, 0x40000, R)
        assert result.version == version
        assert vr.stats.counters["writeback_cancels"] == 1
        check_all(vr)

    def test_writeback_interval_recorded(self, vr):
        conflict = 0x40000 + vr.config.l1.size
        vr.access(1, 0x40000, W)
        vr.access(1, conflict, W)
        vr.access(1, 0x40000, W)
        vr.access(1, conflict, W)
        assert vr.stats.writeback_intervals.observations >= 1

    def test_forced_drain_counts_stall(self, layout):
        from repro.coherence.bus import Bus, MainMemory
        from repro.hierarchy.config import HierarchyConfig
        from repro.hierarchy.twolevel import TwoLevelHierarchy

        config = HierarchyConfig.sized("1K", "8K", write_buffer_capacity=1)
        hier = TwoLevelHierarchy(
            config, layout, Bus(MainMemory()), drain_period=50
        )
        l1_size = config.l1.size
        # Two dirty evictions back to back: the second push finds the
        # buffer still full (background drain is far away).
        hier.access(1, 0x40000, W)
        hier.access(1, 0x40010, W)
        hier.access(1, 0x40000 + l1_size, W)       # evicts first dirty
        hier.access(1, 0x40010 + l1_size, W)       # evicts second dirty
        assert hier.stats.counters["writeback_stalls"] >= 1


class TestContextSwitch:
    def test_swap_demotes_valid_blocks(self, vr):
        vr.access(1, 0x40000, R)
        demoted = vr.context_switch()
        assert demoted == 1
        assert vr.access(1, 0x40000, R).outcome is not Outcome.L1_HIT

    def test_swapped_block_not_written_back_at_switch(self, vr):
        vr.access(1, 0x40000, W)
        vr.context_switch()
        assert len(vr.write_buffer) == 0  # lazy: nothing written yet

    def test_swapped_restore_on_reaccess(self, vr):
        version = vr.access(1, 0x40000, W).version
        vr.context_switch()
        result = vr.access(1, 0x40000, R)
        assert result.version == version
        assert vr.stats.counters["swapped_restores"] == 1
        child = vr.l1_caches[0].block_at(
            vr.rcache.lookup(vr.layout.translate(1, 0x40000))[1].v_pointer
        )
        assert child.valid and child.dirty
        check_all(vr)

    def test_swapped_dirty_eviction_flagged(self, vr):
        vr.access(1, 0x40000, W)
        vr.context_switch()
        vr.access(1, 0x40000 + vr.config.l1.size, R)
        assert vr.stats.counters["swapped_writebacks"] == 1

    def test_rr_hierarchy_unaffected_by_switch(self, layout):
        rr = build_hierarchy(layout, HierarchyKind.RR_INCLUSION)
        rr.access(1, 0x40000, R)
        rr.context_switch()
        assert rr.access(1, 0x40000, R).outcome is Outcome.L1_HIT

    def test_switch_counted(self, vr):
        vr.context_switch()
        vr.context_switch()
        assert vr.stats.counters["context_switches"] == 2


class TestSynonyms:
    def test_sameset_synonym_retagged_in_place(self, synonym_layout):
        hier = build_hierarchy(synonym_layout)  # 1K L1: page-offset indexed
        version = hier.access(1, 0x200000, W).version
        result = hier.access(1, 0x284000, R)  # same physical block
        assert result.outcome is Outcome.SYNONYM
        assert result.version == version
        assert hier.stats.counters["synonym_sameset"] == 1
        assert len(hier.write_buffer) == 0  # no write-back happened
        check_all(hier)

    def test_sameset_keeps_single_copy(self, synonym_layout):
        hier = build_hierarchy(synonym_layout)
        hier.access(1, 0x200000, R)
        hier.access(1, 0x284000, R)
        # The old virtual name must now miss at level 1.
        assert hier.access(1, 0x200000, R).outcome is Outcome.SYNONYM
        check_all(hier)

    def test_move_synonym_across_sets(self, synonym_layout):
        # 32K level 1: the index uses bit 14, where the alias bases
        # differ, so the two virtual names land in different sets.
        hier = build_hierarchy(synonym_layout, l1_size="32K", l2_size="64K")
        a, b = 0x200000, 0x284000
        assert hier.l1_caches[0].config.set_index(a) != hier.l1_caches[
            0
        ].config.set_index(b)
        version = hier.access(1, a, W).version
        result = hier.access(1, b, R)
        assert result.outcome is Outcome.SYNONYM
        assert result.version == version
        assert hier.stats.counters["synonym_moves"] == 1
        check_all(hier)

    def test_move_invalidates_old_location(self, synonym_layout):
        hier = build_hierarchy(synonym_layout, l1_size="32K", l2_size="64K")
        hier.access(1, 0x200000, R)
        hier.access(1, 0x284000, R)
        assert hier.access(1, 0x200000, R).outcome is Outcome.SYNONYM
        check_all(hier)

    def test_synonym_write_marks_dirty(self, synonym_layout):
        hier = build_hierarchy(synonym_layout)
        hier.access(1, 0x200000, R)
        version = hier.access(1, 0x284000, W).version
        assert hier.access(1, 0x284000, R).version == version

    def test_cross_process_synonym_after_switch(self, synonym_layout):
        hier = build_hierarchy(synonym_layout)
        version = hier.access(1, 0x100000, W).version
        hier.context_switch()
        result = hier.access(2, 0x180000, R)  # same physical block
        assert result.version == version
        check_all(hier)

    def test_rr_never_reports_synonyms(self, synonym_layout):
        rr = build_hierarchy(synonym_layout, HierarchyKind.RR_INCLUSION)
        rr.access(1, 0x200000, R)
        result = rr.access(1, 0x284000, R)
        # Physically indexed level 1: the alias IS the same block.
        assert result.outcome is Outcome.L1_HIT
        assert rr.stats.counters["synonym_sameset"] == 0


class TestInclusionReplacement:
    def _skewed_layout(self):
        """Three single-page segments whose virtual pages differ mod 4
        while their physical frames are all even — so they share an
        L2 set but use different L1 sets (see test bodies)."""
        layout = MemoryLayout()
        layout.add_private_segment(1, "a", 0x40000, 1)   # frame 0
        layout.add_private_segment(1, "pad1", 0x80000, 3)
        layout.add_private_segment(1, "b", 0x45000, 1)   # frame 4
        layout.add_private_segment(1, "pad2", 0x90000, 1)
        layout.add_private_segment(1, "c", 0x48000, 1)   # frame 6
        return layout

    def test_forced_eviction_invalidates_children(self):
        layout = self._skewed_layout()
        hier = build_hierarchy(
            layout, l1_size="8K", l2_size="16K", l2_associativity=2
        )
        a, b, c = 0x40010, 0x45010, 0x48010
        l2cfg = hier.config.l2
        pa, pb, pc = (hier.layout.translate(1, v) for v in (a, b, c))
        assert l2cfg.set_index(pa) == l2cfg.set_index(pb) == l2cfg.set_index(pc)
        l1cfg = hier.config.l1
        assert len({l1cfg.set_index(a), l1cfg.set_index(b), l1cfg.set_index(c)}) > 1

        hier.access(1, a, R)
        hier.access(1, b, R)
        hier.access(1, c, R)  # both L2 ways encumbered: forced eviction
        assert hier.stats.counters["l1_inclusion_invalidations"] >= 1
        check_all(hier)

    def test_forced_eviction_writes_back_dirty_child(self):
        layout = self._skewed_layout()
        hier = build_hierarchy(
            layout, l1_size="8K", l2_size="16K", l2_associativity=2
        )
        a, b, c = 0x40010, 0x45010, 0x48010
        version = hier.access(1, a, W).version
        hier.access(1, b, R)
        hier.access(1, c, R)
        pa = hier.layout.translate(1, a)
        if hier.rcache.lookup(pa) is None:  # a was the victim
            assert hier.bus.memory.peek(pa >> 4) == version
        check_all(hier)

    def test_unencumbered_victim_preferred(self):
        layout = self._skewed_layout()
        hier = build_hierarchy(
            layout, l1_size="8K", l2_size="16K", l2_associativity=2
        )
        a, b, c = 0x40010, 0x45010, 0x48010
        hier.access(1, a, R)
        hier.access(1, b, R)
        # Evict a's child from L1: 0x80010 shares a's L1 set (both
        # have index bits 0x001) but lives in a different L2 set.
        evictor = 0x80010
        assert hier.config.l1.set_index(evictor) == hier.config.l1.set_index(a)
        hier.access(1, evictor, R)
        pa = hier.layout.translate(1, a)
        found = hier.rcache.lookup(pa)
        assert found is not None and found[1].unencumbered
        before = hier.stats.counters["l1_inclusion_invalidations"]
        hier.access(1, c, R)
        # The unencumbered block was chosen: no forced invalidation.
        assert hier.stats.counters["l1_inclusion_invalidations"] == before

    def test_no_inclusion_orphans_allowed(self, layout):
        hier = build_hierarchy(
            layout, HierarchyKind.RR_NO_INCLUSION, l1_size="1K", l2_size="1K"
        )
        # Fill several L2 sets; evictions never touch L1.
        for i in range(128):
            hier.access(1, 0x40000 + i * 16, R)
        assert hier.stats.counters["l1_inclusion_invalidations"] == 0


class TestSplitL1:
    def test_instr_and_data_separate(self, layout):
        hier = build_hierarchy(layout, split_l1=True)
        assert hier.l1_for(RefKind.INSTR) is not hier.l1_for(RefKind.READ)
        assert hier.l1_for(RefKind.READ) is hier.l1_for(RefKind.WRITE)

    def test_halves_have_half_size(self, layout):
        hier = build_hierarchy(layout, split_l1=True)
        assert hier.l1_caches[0].config.size == hier.config.l1.size // 2

    def test_no_cross_interference(self, layout):
        hier = build_hierarchy(layout, split_l1=True)
        hier.access(1, 0x10000, I)
        # A data access that shares the instruction block's level-1
        # index (but not its level-2 set) cannot evict it: different
        # level-1 cache.
        data = 0x41000
        i_cache = hier.l1_for(I)
        d_cache = hier.l1_for(R)
        assert d_cache.config.set_index(data) == i_cache.config.set_index(0x10000)
        hier.access(1, data, R)
        assert hier.access(1, 0x10000, I).outcome is Outcome.L1_HIT
        check_all(hier)

    def test_unified_has_single_cache(self, vr):
        assert len(vr.l1_caches) == 1


class TestProtocolSafety:
    def test_snoop_invalidate_on_dirty_raises(self, layout):
        from repro.coherence.messages import BusOp, BusTransaction

        hier = build_hierarchy(layout)
        hier.access(1, 0x40000, W)
        pblock = hier.layout.translate(1, 0x40000) >> 4
        with pytest.raises(ProtocolError):
            hier.snoop(BusTransaction(BusOp.INVALIDATE, 99, pblock))

    def test_snoop_miss_is_shielded(self, layout):
        from repro.coherence.messages import BusOp, BusTransaction

        hier = build_hierarchy(layout)
        reply = hier.snoop(BusTransaction(BusOp.READ_MISS, 99, 0x9999))
        assert not reply.has_copy
        assert hier.stats.coherence_to_l1() == 0
