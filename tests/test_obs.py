"""Tests for the observability layer: metrics, tracing, manifests.

Covers the metric namespace (every simulator counter maps to a dotted
name — nothing leaks into ``misc.*``), the bounded event tracer and
its JSONL sink, the trace-count == metric-count acceptance invariant,
worker-to-parent metrics merge determinism across ``--jobs`` settings,
and the guarantee that an attached-but-filtered tracer does not change
simulation results.
"""

import io
import json
import logging

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments import RunOptions, clear_caches, simulate
from repro.experiments.cli import main
from repro.hierarchy.config import HierarchyKind
from repro.obs import get_tracer, set_tracer
from repro.obs.log import configure, get_logger
from repro.obs.manifest import FORMAT, RunManifest
from repro.obs.metrics import (
    HIERARCHY_METRIC_NAMES,
    MetricsRegistry,
    registry_from_result,
    validate_name,
)
from repro.obs.recorder import get_recorder
from repro.obs.tracing import CATEGORIES, EventTracer, parse_categories, read_jsonl

SCALE = 0.004  # matches test_experiments.py: seconds, not minutes


@pytest.fixture(autouse=True)
def _fresh_state():
    clear_caches()
    set_tracer(None)
    yield
    clear_caches()
    set_tracer(None)


class TestMetricNames:
    def test_validate_name_accepts_dotted(self):
        assert validate_name("l1.hit.instr") == "l1.hit.instr"
        assert validate_name("wb.swapped_push") == "wb.swapped_push"

    @pytest.mark.parametrize("bad", ["", "flat", "Upper.case", "l1.", ".l1", "a b.c"])
    def test_validate_name_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            validate_name(bad)

    def test_hierarchy_map_targets_are_valid_names(self):
        for name in HIERARCHY_METRIC_NAMES.values():
            assert validate_name(name) == name


class TestRegistry:
    def test_counter_inc_and_total(self):
        reg = MetricsRegistry()
        reg.inc("l1.hit.instr", 3)
        reg.inc("l1.hit.data", 2)
        reg.inc("l1.miss.data")
        assert reg.value("l1.hit.instr") == 3
        assert reg.value("absent.metric") == 0
        assert reg.total(prefix="l1.hit.") == 5
        assert reg.total("l1.hit.instr", "l1.miss.data") == 4

    def test_kind_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a.b")
        with pytest.raises(ConfigurationError):
            reg.histogram("a.b")

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("l1.hit.data", 1)
        b.inc("l1.hit.data", 2)
        b.inc("l1.miss.data", 7)
        a.histogram("wb.interval").record(3)
        b.histogram("wb.interval").record(3)
        b.histogram("wb.interval").record(99)
        a.merge(b)
        assert a.value("l1.hit.data") == 3
        assert a.value("l1.miss.data") == 7
        hist = a.histogram("wb.interval").as_dict()
        assert hist["3"] == 2 and hist["10+"] == 1

    def test_snapshot_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("l1.hit.data", 5)
        reg.histogram("wb.interval").record(2)
        reg.histogram("wb.interval").record(64)
        reg.timer("sim.replay").add(1.5)
        snap = reg.snapshot()
        back = MetricsRegistry.from_snapshot(snap)
        assert back.snapshot() == snap

    def test_snapshot_keys_sorted(self):
        reg = MetricsRegistry()
        reg.inc("z.last.one")
        reg.inc("a.first.one")
        counters = reg.snapshot()["counters"]
        assert list(counters) == sorted(counters)


class TestNamespaceCompleteness:
    def test_simulation_result_maps_without_misc(self):
        result = simulate("pops", SCALE, "1K", "8K", HierarchyKind.VR)
        reg = registry_from_result(result)
        names = reg.names()
        assert not [n for n in names if n.startswith("misc.")], names
        assert reg.value("sim.refs") == result.refs_processed
        assert reg.total(prefix="tlb.") > 0

    def test_per_cpu_view_excludes_global_metrics(self):
        result = simulate("pops", SCALE, "1K", "8K", HierarchyKind.VR)
        cpu0 = result.metrics(cpu=0)
        assert not cpu0.names(prefix="bus.")
        assert cpu0.value("sim.refs") == 0
        assert cpu0.total(prefix="l1.hit.") > 0

    def test_metrics_sum_matches_per_cpu_counters(self):
        result = simulate("pops", SCALE, "4K", "64K", HierarchyKind.VR)
        reg = result.metrics()
        raw_total = sum(
            stats.counters.as_dict().get("l1_hits_r", 0)
            for stats in result.per_cpu
        )
        assert reg.value("l1.hit.read") == raw_total


class TestEventTracer:
    def test_ring_buffer_bounded_counts_complete(self):
        tracer = EventTracer(capacity=4)
        for i in range(10):
            tracer.emit("synonym", "move", cpu=0, index=i)
        events = tracer.events()
        assert len(events) == 4
        assert [e.fields["index"] for e in events] == [6, 7, 8, 9]
        assert tracer.emitted == 10
        assert tracer.count("synonym", "move") == 10

    def test_category_filter(self):
        tracer = EventTracer(categories=frozenset({"synonym"}))
        assert tracer.wants("synonym") and not tracer.wants("writeback")
        tracer.emit("synonym", "move")
        tracer.emit("writeback", "push")
        assert tracer.emitted == 1
        assert tracer.count("writeback", "push") == 0

    def test_parse_categories(self):
        assert parse_categories("all") == CATEGORIES
        assert parse_categories("") == CATEGORIES
        assert parse_categories("synonym,inclusion") == frozenset(
            {"synonym", "inclusion"}
        )
        with pytest.raises(ConfigurationError):
            parse_categories("synonym,bogus")

    def test_jsonl_round_trip(self, tmp_path):
        tracer = EventTracer()
        tracer.emit("inclusion", "invalidate", cpu=1, pblock=42, dirty=True)
        tracer.emit("writeback", "push", cpu=0, pblock=7, swapped=False)
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        records = read_jsonl(path)
        assert [r.name for r in records] == ["invalidate", "push"]
        assert records[0].fields == {"pblock": 42, "dirty": True}
        assert records[0].cpu == 1
        assert records[0].category == "inclusion"

    def test_sink_streams_every_event_past_capacity(self):
        sink = io.StringIO()
        tracer = EventTracer(capacity=2, sink=sink)
        for i in range(5):
            tracer.emit("guard", "violation", site=str(i))
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert len(lines) == 5  # ring dropped 3, the sink kept all


class TestTracingInvariants:
    def test_attached_filtered_tracer_does_not_change_results(self):
        baseline = simulate("pops", SCALE, "1K", "8K", HierarchyKind.VR)
        clear_caches()
        # "fault" events never fire without an injector, so this tracer
        # is attached but silent — results must be bit-identical.
        set_tracer(EventTracer(categories=frozenset({"fault"})))
        traced = simulate("pops", SCALE, "1K", "8K", HierarchyKind.VR)
        assert get_tracer().emitted == 0
        traced_counts = [s.counters.as_dict() for s in traced.per_cpu]
        base_counts = [s.counters.as_dict() for s in baseline.per_cpu]
        assert traced_counts == base_counts
        assert traced.bus_transactions == baseline.bus_transactions

    def test_event_counts_equal_metric_counts(self):
        tracer = EventTracer()
        set_tracer(tracer)
        result = simulate("pops", SCALE, "1K", "8K", HierarchyKind.VR)
        reg = result.metrics()
        assert tracer.count("synonym", "move") == reg.value("r.synonym_move")
        assert tracer.count("synonym", "sameset") == reg.value("r.synonym_sameset")
        assert tracer.count("inclusion", "invalidate") == reg.value(
            "l1.inclusion.invalidate"
        )
        assert tracer.count("writeback", "push") == reg.value("wb.push")


class TestManifest:
    def test_round_trip(self, tmp_path):
        manifest = RunManifest.create(
            ["table6"],
            SCALE,
            options=RunOptions(),
            timings_s={"table6": 1.2},
            metrics={"counters": {}, "histograms": {}, "timers": {}},
            trace={},
            simulations=3,
        )
        path = tmp_path / "run.manifest.json"
        manifest.write(path)
        loaded = RunManifest.load(path)
        assert loaded.experiments == ["table6"]
        assert loaded.schema_hash == manifest.schema_hash
        assert loaded.simulations == 3

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "not-a-manifest"}))
        with pytest.raises(ValueError):
            RunManifest.load(path)

    def test_format_tag(self):
        manifest = RunManifest.create([], SCALE, options=RunOptions())
        assert manifest.to_dict()["format"] == FORMAT


class TestLogging:
    def test_configure_idempotent(self):
        first = configure("info")
        second = configure("debug")
        assert first is second
        marked = [
            h for h in first.handlers if getattr(h, "_repro_cli", False)
        ]
        assert len(marked) == 1
        assert first.level == logging.DEBUG

    def test_get_logger_namespaced(self):
        assert get_logger("cli").name == "repro.cli"
        assert get_logger("repro.faults").name == "repro.faults"


class TestCliIntegration:
    def test_jobs_merge_bit_equality(self, tmp_path):
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        assert (
            main(
                ["table5", "--scale", str(SCALE), "--no-cache",
                 "--jobs", "1", "--metrics-out", str(serial)]
            )
            == 0
        )
        clear_caches()
        assert (
            main(
                ["table5", "--scale", str(SCALE), "--no-cache",
                 "--jobs", "4", "--metrics-out", str(parallel)]
            )
            == 0
        )
        assert serial.read_bytes() == parallel.read_bytes()

    def test_traced_run_writes_consistent_outputs(self, tmp_path):
        metrics_path = tmp_path / "m.json"
        code = main(
            ["table6", "--scale", str(SCALE), "--no-cache",
             "--trace=synonym,inclusion", "--metrics-out", str(metrics_path)]
        )
        assert code == 0
        trace_path = metrics_path.with_suffix(".trace.jsonl")
        manifest_path = metrics_path.with_suffix(".manifest.json")
        assert trace_path.is_file() and manifest_path.is_file()
        snapshot = json.loads(metrics_path.read_text())
        counters = snapshot["counters"]
        by_name = {}
        for record in read_jsonl(trace_path):
            key = (record.category, record.name)
            by_name[key] = by_name.get(key, 0) + 1
        assert by_name.get(("synonym", "move"), 0) == counters.get(
            "r.synonym_move", 0
        )
        assert by_name.get(("inclusion", "invalidate"), 0) == counters.get(
            "l1.inclusion.invalidate", 0
        )
        manifest = json.loads(manifest_path.read_text())
        assert manifest["metrics"] == snapshot
        assert manifest["trace"]["categories"] == ["inclusion", "synonym"]
        assert manifest["simulations"] == len(get_recorder())
        assert manifest["simulations"] > 0

    def test_unknown_trace_category_exits_2(self, capsys):
        assert main(["table5", "--trace=bogus"]) == 2
        assert "bogus" in capsys.readouterr().err
