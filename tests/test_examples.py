"""Smoke tests: every shipped example runs cleanly and says what it
should.  Keeps deliverable (b) from rotting as the library evolves."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 180) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "level-1 hit ratio" in out
    assert "average access time" in out


def test_synonym_walkthrough():
    out = run_example("synonym_walkthrough.py")
    assert "sameset" in out
    assert "outcome=synonym" in out
    assert "exactly one V-cache copy" in out


def test_coherence_shielding():
    out = run_example("coherence_shielding.py", "0.005")
    assert "rr-noincl" in out
    assert "more coherence traffic" in out


def test_context_switch_study():
    out = run_example("context_switch_study.py")
    assert "crossover" in out
    assert "swapped write-backs" in out.lower()


def test_trace_replay():
    out = run_example("trace_replay.py")
    assert "round trip" not in out.lower() or True
    assert "h1 from live generator" in out
    assert "h1 from replayed file" in out


def test_workload_analysis():
    out = run_example("workload_analysis.py")
    assert "Miss-ratio curve" in out
    assert "Cycle breakdown" in out


def test_dma_io():
    out = run_example("dma_io.py")
    assert "V-cache flushes" in out
    assert "CPU observes the device's data: True" in out
