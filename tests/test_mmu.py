"""Unit tests for the virtual-memory substrate (repro.mmu)."""

import pytest

from repro.common.errors import ConfigurationError, TranslationError
from repro.mmu.address_space import MemoryLayout
from repro.mmu.page_table import FrameAllocator, PageTable, ReverseMap
from repro.mmu.tlb import TLB


class TestFrameAllocator:
    def test_sequential_allocation(self):
        alloc = FrameAllocator()
        assert alloc.allocate() == 0
        assert alloc.allocate(3) == 1
        assert alloc.allocate() == 4

    def test_frames_allocated(self):
        alloc = FrameAllocator()
        alloc.allocate(5)
        assert alloc.frames_allocated == 5

    def test_rejects_zero_frames(self):
        with pytest.raises(ConfigurationError):
            FrameAllocator().allocate(0)

    def test_rejects_non_power_of_two_page(self):
        with pytest.raises(ConfigurationError):
            FrameAllocator(page_size=3000)


class TestPageTable:
    def test_translate_page(self):
        table = PageTable(pid=1)
        table.map(vpage=10, frame=99)
        assert table.translate_page(10) == 99

    def test_translate_full_address(self):
        table = PageTable(pid=1, page_size=4096)
        table.map(vpage=2, frame=7)
        assert table.translate(2 * 4096 + 123) == 7 * 4096 + 123

    def test_unmapped_page_raises(self):
        with pytest.raises(TranslationError, match="pid 1"):
            PageTable(pid=1).translate_page(5)

    def test_double_map_rejected(self):
        table = PageTable(pid=1)
        table.map(3, 0)
        with pytest.raises(ConfigurationError, match="already mapped"):
            table.map(3, 1)

    def test_mapped_pages_sorted(self):
        table = PageTable(pid=1)
        table.map(9, 0)
        table.map(2, 1)
        assert table.mapped_pages() == [2, 9]

    def test_len(self):
        table = PageTable(pid=1)
        table.map(1, 0)
        assert len(table) == 1


class TestReverseMap:
    def test_aliases_recorded(self):
        rmap = ReverseMap()
        rmap.note(frame=5, pid=1, vpage=10)
        rmap.note(frame=5, pid=2, vpage=20)
        assert rmap.aliases(5) == [(1, 10), (2, 20)]

    def test_unknown_frame_empty(self):
        assert ReverseMap().aliases(99) == []

    def test_synonym_frames(self):
        rmap = ReverseMap()
        rmap.note(1, 1, 10)
        rmap.note(2, 1, 11)
        rmap.note(2, 2, 30)
        assert rmap.synonym_frames() == [2]


class TestMemoryLayout:
    def test_private_segment_translates(self):
        layout = MemoryLayout()
        seg = layout.add_private_segment(1, "d", 0x4000, 2)
        paddr = layout.translate(1, seg.base_vaddr + 20)
        assert paddr % 4096 == 20

    def test_private_segments_get_distinct_frames(self):
        layout = MemoryLayout()
        a = layout.add_private_segment(1, "a", 0x4000, 1)
        b = layout.add_private_segment(2, "b", 0x4000, 1)
        assert layout.translate(1, a.base_vaddr) != layout.translate(
            2, b.base_vaddr
        )

    def test_shared_segment_same_physical(self):
        layout = MemoryLayout()
        layout.add_shared_segment("shm", [(1, 0x4000), (2, 0x8000)], 2)
        assert layout.translate(1, 0x4000) == layout.translate(2, 0x8000)
        assert layout.translate(1, 0x5000) == layout.translate(2, 0x9000)

    def test_intra_process_alias(self):
        layout = MemoryLayout()
        layout.add_shared_segment("alias", [(1, 0x4000), (1, 0x10000)], 1)
        assert layout.translate(1, 0x4008) == layout.translate(1, 0x10008)

    def test_unaligned_base_rejected(self):
        with pytest.raises(ConfigurationError, match="aligned"):
            MemoryLayout().add_private_segment(1, "x", 0x4001, 1)

    def test_empty_shared_mapping_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryLayout().add_shared_segment("shm", [], 1)

    def test_unknown_process_raises(self):
        with pytest.raises(TranslationError, match="unknown process"):
            MemoryLayout().translate(42, 0)

    def test_segment_queries(self):
        layout = MemoryLayout()
        layout.add_private_segment(1, "a", 0x4000, 1)
        layout.add_private_segment(2, "b", 0x4000, 1)
        assert len(layout.segments()) == 2
        assert len(layout.segments(pid=1)) == 1
        assert layout.pids() == [1, 2]

    def test_segment_geometry(self):
        layout = MemoryLayout()
        seg = layout.add_private_segment(1, "a", 0x4000, 3)
        assert seg.size == 3 * 4096
        assert seg.end_vaddr == 0x4000 + 3 * 4096
        assert seg.contains(0x4000)
        assert seg.contains(seg.end_vaddr - 1)
        assert not seg.contains(seg.end_vaddr)

    def test_physical_size(self):
        layout = MemoryLayout()
        layout.add_private_segment(1, "a", 0x4000, 3)
        assert layout.physical_size == 3 * 4096

    def test_reverse_map_tracks_shared(self):
        layout = MemoryLayout()
        layout.add_shared_segment("shm", [(1, 0x4000), (2, 0x8000)], 1)
        assert len(layout.reverse_map.synonym_frames()) == 1


class TestTLB:
    def _layout(self):
        layout = MemoryLayout()
        layout.add_private_segment(1, "d", 0x4000, 8)
        layout.add_private_segment(2, "d", 0x4000, 8)
        return layout

    def test_first_access_misses_then_hits(self):
        layout = self._layout()
        tlb = TLB(layout, n_entries=8, associativity=2)
        tlb.translate(1, 0x4000)
        tlb.translate(1, 0x4010)
        assert tlb.stats["misses"] == 1
        assert tlb.stats["hits"] == 1

    def test_translation_matches_page_table(self):
        layout = self._layout()
        tlb = TLB(layout)
        assert tlb.translate(1, 0x4123) == layout.translate(1, 0x4123)

    def test_distinct_pids_distinct_entries(self):
        layout = self._layout()
        tlb = TLB(layout)
        tlb.translate(1, 0x4000)
        tlb.translate(2, 0x4000)
        assert tlb.stats["misses"] == 2

    def test_eviction_on_full_set(self):
        layout = self._layout()
        tlb = TLB(layout, n_entries=2, associativity=1)
        # Pages 0 and 2 of the segment map to the same single-entry set.
        tlb.translate(1, 0x4000)
        tlb.translate(1, 0x4000 + 2 * 4096)
        tlb.translate(1, 0x4000)
        assert tlb.stats["evictions"] >= 1
        assert tlb.stats["misses"] == 3

    def test_lru_within_set(self):
        layout = self._layout()
        tlb = TLB(layout, n_entries=4, associativity=2)
        base = 0x4000
        tlb.translate(1, base)                  # page 0 (set 0)
        tlb.translate(1, base + 2 * 4096)       # page 2 (set 0)
        tlb.translate(1, base)                  # touch page 0
        tlb.translate(1, base + 4 * 4096)       # page 4 evicts page 2
        tlb.translate(1, base)
        assert tlb.stats["hits"] == 2

    def test_flush_clears_everything(self):
        layout = self._layout()
        tlb = TLB(layout)
        tlb.translate(1, 0x4000)
        tlb.flush()
        assert tlb.resident() == []
        tlb.translate(1, 0x4000)
        assert tlb.stats["misses"] == 2

    def test_selective_flush(self):
        layout = self._layout()
        tlb = TLB(layout)
        tlb.translate(1, 0x4000)
        tlb.translate(2, 0x4000)
        tlb.flush_pid(1)
        resident = tlb.resident()
        assert all(pid == 2 for pid, _ in resident)

    def test_geometry_validation(self):
        layout = self._layout()
        with pytest.raises(ConfigurationError):
            TLB(layout, n_entries=10)
        with pytest.raises(ConfigurationError):
            TLB(layout, n_entries=8, associativity=3)

    def test_miss_on_unmapped_propagates(self):
        layout = self._layout()
        tlb = TLB(layout)
        with pytest.raises(TranslationError):
            tlb.translate(1, 0xDEAD0000)
