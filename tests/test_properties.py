"""Property-based tests (hypothesis) on the core invariants.

The central property: for ANY reference stream over ANY geometry, the
machine stays sequentially consistent (every read observes the most
recent write to its physical block) and the structural invariants —
inclusion, pointer linkage, single-copy synonyms, single dirty owner —
hold at every quiescent point.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.config import CacheConfig
from repro.cache.tagstore import TagStore
from repro.coherence.bus import Bus, MainMemory
from repro.common.params import format_size, parse_size
from repro.common.stats import IntervalHistogram
from repro.coherence.protocol import WritePolicy
from repro.hierarchy.checker import check_all, check_coherence
from repro.hierarchy.config import HierarchyConfig, HierarchyKind, Protocol
from repro.hierarchy.twolevel import TwoLevelHierarchy
from repro.mmu.address_space import MemoryLayout
from repro.trace.record import RefKind

# ---------------------------------------------------------------- machine ops


def _build_machine(kind: HierarchyKind, l1_size: int, l2_size: int,
                   l1_assoc: int, l2_assoc: int, n_cpus: int,
                   write_policy=None, protocol=None):
    layout = MemoryLayout()
    mappings = [(pid, 0x100000 + pid * 0x11000) for pid in range(1, n_cpus + 1)]
    layout.add_shared_segment("shm", mappings, 2)
    for pid in range(1, n_cpus + 1):
        layout.add_private_segment(pid, "data", 0x40000, 4)
        layout.add_shared_segment(
            f"alias{pid}", [(pid, 0x200000), (pid, 0x286000)], 2
        )
    bus = Bus(MainMemory())
    counter = itertools.count(1).__next__
    extra = {}
    if write_policy is not None:
        extra["l1_write_policy"] = write_policy
        extra["write_buffer_capacity"] = 4
    if protocol is not None:
        extra["protocol"] = protocol
    config = HierarchyConfig.sized(
        l1_size,
        l2_size,
        kind=kind,
        l1_associativity=l1_assoc,
        l2_associativity=l2_assoc,
        **extra,
    )
    hierarchies = [
        TwoLevelHierarchy(config, layout, bus, next_version=counter)
        for _ in range(n_cpus)
    ]
    return layout, hierarchies


_OP = st.tuples(
    st.integers(0, 1),                        # cpu
    st.sampled_from(["private", "shared", "alias_a", "alias_b", "switch"]),
    st.integers(0, 511),                      # block offset selector
    st.booleans(),                            # write?
)


def _vaddr(region: str, pid: int, selector: int) -> int:
    if region == "private":
        return 0x40000 + (selector % 1024) * 16
    if region == "shared":
        return 0x100000 + pid * 0x11000 + (selector % 512) * 16
    if region == "alias_a":
        return 0x200000 + (selector % 512) * 16
    return 0x286000 + (selector % 512) * 16


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(_OP, min_size=1, max_size=120),
    kind=st.sampled_from(list(HierarchyKind)),
    l1_size=st.sampled_from([512, 1024]),
    l2_pow=st.sampled_from([4096, 8192]),
    l1_assoc=st.sampled_from([1, 2]),
    l2_assoc=st.sampled_from([1, 2]),
)
def test_any_stream_is_sequentially_consistent(
    ops, kind, l1_size, l2_pow, l1_assoc, l2_assoc
):
    layout, hierarchies = _build_machine(
        kind, l1_size, l2_pow, l1_assoc, l2_assoc, n_cpus=2
    )
    oracle: dict[int, int] = {}
    for cpu, region, selector, is_write in ops:
        hier = hierarchies[cpu]
        pid = cpu + 1
        if region == "switch":
            hier.context_switch()
            continue
        vaddr = _vaddr(region, pid, selector)
        pblock = layout.translate(pid, vaddr) >> 4
        kind_ref = RefKind.WRITE if is_write else RefKind.READ
        result = hier.access(pid, vaddr, kind_ref)
        if is_write:
            oracle[pblock] = result.version
        else:
            assert result.version == oracle.get(pblock, 0), (
                f"stale read of block {pblock:#x} under {kind}"
            )
    for hier in hierarchies:
        check_all(hier)
    check_coherence(hierarchies)


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(_OP, min_size=1, max_size=100),
    kind=st.sampled_from(
        [HierarchyKind.VR, HierarchyKind.RR_NO_INCLUSION]
    ),
    write_policy=st.sampled_from(list(WritePolicy)),
    protocol=st.sampled_from(list(Protocol)),
)
def test_any_stream_consistent_across_policies(
    ops, kind, write_policy, protocol
):
    """The oracle also holds for write-through level 1 and the
    write-update protocol, in every combination."""
    layout, hierarchies = _build_machine(
        kind, 1024, 8192, 1, 1, n_cpus=2,
        write_policy=write_policy, protocol=protocol,
    )
    oracle: dict[int, int] = {}
    for cpu, region, selector, is_write in ops:
        hier = hierarchies[cpu]
        pid = cpu + 1
        if region == "switch":
            hier.context_switch()
            continue
        vaddr = _vaddr(region, pid, selector)
        pblock = layout.translate(pid, vaddr) >> 4
        result = hier.access(
            pid, vaddr, RefKind.WRITE if is_write else RefKind.READ
        )
        if is_write:
            oracle[pblock] = result.version
        else:
            assert result.version == oracle.get(pblock, 0)
    for hier in hierarchies:
        check_all(hier)
    check_coherence(hierarchies)


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(_OP, min_size=1, max_size=80))
def test_vr_synonym_single_copy(ops):
    """Alias-heavy streams never leave two level-1 copies of a block."""
    layout, hierarchies = _build_machine(
        HierarchyKind.VR, 1024, 8192, 1, 1, n_cpus=2
    )
    for cpu, region, selector, is_write in ops:
        hier = hierarchies[cpu]
        pid = cpu + 1
        if region == "switch":
            hier.context_switch()
            continue
        vaddr = _vaddr(region, pid, selector)
        hier.access(
            pid, vaddr, RefKind.WRITE if is_write else RefKind.READ
        )
    for hier in hierarchies:
        check_all(hier)


# ------------------------------------------------------------------ substrate


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 2**28))
def test_format_size_round_trips_for_representable(value):
    # Only sizes format_size can express exactly round-trip.
    text = format_size(value)
    assert parse_size(text) == value


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(1, 1000), min_size=1, max_size=200))
def test_histogram_conserves_observations(intervals):
    hist = IntervalHistogram(top=10)
    for interval in intervals:
        hist.record(interval)
    rows = hist.rows()
    assert sum(count for _, count in rows) == len(intervals)
    assert hist.observations == len(intervals)


@settings(max_examples=30, deadline=None)
@given(
    addresses=st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=300),
    assoc=st.sampled_from([1, 2, 4]),
)
def test_tagstore_matches_reference_lru(addresses, assoc):
    """The tag store behaves exactly like a textbook LRU cache."""
    config = CacheConfig(1024, 16, assoc)
    store = TagStore(config)

    # Reference model: per set, an ordered list of block numbers.
    reference: dict[int, list[int]] = {}

    for addr in addresses:
        block_number = config.block_number(addr)
        set_index = config.set_index(addr)
        entries = reference.setdefault(set_index, [])

        model_hit = block_number in entries
        actual = store.access(addr)
        assert (actual is not None) == model_hit

        if model_hit:
            entries.remove(block_number)
        elif len(entries) >= assoc:
            entries.pop(0)  # LRU out
        if not model_hit:
            victim = store.victim(addr)
            victim.fill(config.tag(addr), 0, 0)
            store.note_install(victim)
        entries.append(block_number)


@settings(max_examples=30, deadline=None)
@given(
    size=st.sampled_from([256, 1024, 4096, 65536]),
    block=st.sampled_from([16, 32, 64]),
    addr=st.integers(0, 2**32 - 1),
)
def test_address_slicing_partitions(size, block, addr):
    """tag/set/offset decompose every address losslessly."""
    if block > size:
        return
    config = CacheConfig(size, block)
    base = config.address_of(config.tag(addr), config.set_index(addr))
    offset = addr - config.block_base(addr)
    assert base + offset == addr
    assert 0 <= offset < block
