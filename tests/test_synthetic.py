"""Tests for the synthetic workload generator."""

import pytest

from repro.common.errors import ConfigurationError
from repro.trace.analyze import profile_call_writes, summarize
from repro.trace.record import RefKind
from repro.trace.synthetic import SyntheticWorkload, WorkloadSpec
from repro.trace.workloads import (
    FULL_SCALE_REFS,
    get_spec,
    make_workload,
    workload_names,
)
from tests.conftest import tiny_spec


class TestSpecValidation:
    def test_defaults_valid(self):
        WorkloadSpec()

    def test_write_frac_derived(self):
        spec = WorkloadSpec(instr_frac=0.5, read_frac=0.4)
        assert spec.write_frac == pytest.approx(0.1)

    def test_fractions_over_one_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(instr_frac=0.7, read_frac=0.4)

    def test_zero_cpus_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(n_cpus=0)

    def test_negative_switches_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(context_switches=-1)

    def test_scaled_length(self):
        spec = WorkloadSpec(total_refs=1000, context_switches=10)
        scaled = spec.scaled(0.5)
        assert scaled.total_refs == 500
        assert scaled.context_switches == 5

    def test_scaled_keeps_at_least_one_switch(self):
        spec = WorkloadSpec(total_refs=100_000, context_switches=7)
        assert spec.scaled(0.01).context_switches == 1

    def test_scaled_zero_switches_stay_zero(self):
        spec = WorkloadSpec(total_refs=1000, context_switches=0)
        assert spec.scaled(0.5).context_switches == 0

    def test_bad_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec().scaled(0)


class TestGeneration:
    def test_exact_memory_ref_count(self):
        spec = tiny_spec(total_refs=5000)
        summary = summarize(SyntheticWorkload(spec), "t")
        assert summary.total_refs == 5000

    def test_deterministic_for_same_seed(self):
        spec = tiny_spec()
        first = SyntheticWorkload(spec).records()
        second = SyntheticWorkload(spec).records()
        assert first == second

    def test_different_seed_different_trace(self):
        first = SyntheticWorkload(tiny_spec(seed=1)).records()
        second = SyntheticWorkload(tiny_spec(seed=2)).records()
        assert first != second

    def test_mix_close_to_targets(self):
        spec = tiny_spec(total_refs=20000)
        summary = summarize(SyntheticWorkload(spec), "t")
        assert summary.instr_count / summary.total_refs == pytest.approx(
            spec.instr_frac, abs=0.02
        )
        assert summary.data_read / summary.total_refs == pytest.approx(
            spec.read_frac, abs=0.02
        )

    def test_context_switch_count(self):
        spec = tiny_spec(context_switches=6)
        summary = summarize(SyntheticWorkload(spec), "t")
        assert summary.context_switches == 6

    def test_cpus_covered(self):
        spec = tiny_spec(n_cpus=2)
        summary = summarize(SyntheticWorkload(spec), "t")
        assert summary.cpus == {0, 1}

    def test_all_addresses_translate(self):
        workload = SyntheticWorkload(tiny_spec(total_refs=3000))
        for record in workload:
            if record.is_memory:
                workload.layout.translate(record.pid, record.vaddr)

    def test_switch_changes_pid(self):
        spec = tiny_spec(context_switches=4, processes_per_cpu=2)
        workload = SyntheticWorkload(spec)
        current = {}
        for record in workload:
            if record.kind is RefKind.CSWITCH:
                assert current.get(record.cpu) != record.pid
                current[record.cpu] = record.pid
            elif record.is_memory and record.cpu in current:
                assert record.pid == current[record.cpu]

    def test_call_bursts_match_table1_shape(self):
        spec = tiny_spec(total_refs=30000, call_rate=0.01)
        profile = profile_call_writes(SyntheticWorkload(spec).records())
        assert profile.per_call, "no call bursts generated"
        # Six-write register saves dominate, as in the paper's Table 1.
        assert max(profile.per_call, key=profile.per_call.get) in (6, 9)

    def test_synonym_frames_exist(self):
        workload = SyntheticWorkload(tiny_spec())
        assert workload.layout.reverse_map.synonym_frames()

    def test_shared_segment_crosses_processes(self):
        workload = SyntheticWorkload(tiny_spec())
        layout = workload.layout
        pids = layout.pids()
        shared = [s for s in layout.segments() if s.name.startswith("shm")]
        assert {seg.pid for seg in shared} == set(pids)


class TestSurrogates:
    def test_names(self):
        assert workload_names() == ["thor", "pops", "abaqus"]

    def test_full_scale_refs_match_table5(self):
        assert FULL_SCALE_REFS["pops"] == 3_286_000
        assert get_spec("pops").total_refs == 3_286_000

    def test_cpu_counts_match_table5(self):
        assert get_spec("thor").n_cpus == 4
        assert get_spec("pops").n_cpus == 4
        assert get_spec("abaqus").n_cpus == 2

    def test_switch_counts_match_table5(self):
        assert get_spec("thor").context_switches == 21
        assert get_spec("pops").context_switches == 7
        assert get_spec("abaqus").context_switches == 292

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            get_spec("nonesuch")

    def test_make_workload_scaled(self):
        workload = make_workload("abaqus", scale=0.01)
        summary = summarize(workload, "abaqus")
        assert summary.total_refs == round(FULL_SCALE_REFS["abaqus"] * 0.01)

    def test_abaqus_switches_frequent(self):
        # The defining trait of the abaqus trace (paper section 4).
        abaqus = get_spec("abaqus")
        pops = get_spec("pops")
        assert (
            abaqus.context_switches / abaqus.total_refs
            > 50 * pops.context_switches / pops.total_refs
        )
