"""End-to-end shape tests: the paper's qualitative conclusions hold on
moderately sized surrogate traces.

These are the cheapest runs that still show each effect; the full
benchmark harness regenerates the actual tables at larger scale.
"""

import pytest

from repro.experiments import clear_caches, simulate
from repro.hierarchy.config import HierarchyKind

SCALE = 0.02


@pytest.fixture(scope="module", autouse=True)
def _fresh():
    clear_caches()
    yield
    clear_caches()


class TestPaperConclusions:
    def test_vr_matches_rr_when_switches_rare(self):
        """Paper §4: for pops/thor the two organisations are nearly
        indistinguishable at level 1."""
        for trace in ("pops", "thor"):
            vr = simulate(trace, SCALE, "4K", "64K", HierarchyKind.VR)
            rr = simulate(trace, SCALE, "4K", "64K", HierarchyKind.RR_INCLUSION)
            assert vr.h1 == pytest.approx(rr.h1, abs=0.01)

    def test_rr_beats_vr_on_frequent_switches(self):
        """Paper §4: abaqus switches often; flushing the V-cache costs."""
        vr = simulate("abaqus", SCALE, "16K", "256K", HierarchyKind.VR)
        rr = simulate("abaqus", SCALE, "16K", "256K", HierarchyKind.RR_INCLUSION)
        assert rr.h1 > vr.h1

    def test_vr_gap_grows_with_cache_size(self):
        """Paper §4: 'a larger V-cache seems to imply a larger relative
        degradation'."""
        gaps = []
        for l1, l2 in (("4K", "64K"), ("16K", "256K")):
            vr = simulate("abaqus", SCALE, l1, l2, HierarchyKind.VR)
            rr = simulate("abaqus", SCALE, l1, l2, HierarchyKind.RR_INCLUSION)
            gaps.append(rr.h1 - vr.h1)
        assert gaps[-1] > gaps[0]

    def test_shielding_cuts_coherence_messages(self):
        """Paper Tables 11-13: V-R percolates several times fewer
        messages to level 1 than R-R without inclusion."""
        vr = simulate("pops", SCALE, "4K", "64K", HierarchyKind.VR)
        no_incl = simulate(
            "pops", SCALE, "4K", "64K", HierarchyKind.RR_NO_INCLUSION
        )
        vr_msgs = sum(s.coherence_to_l1() for s in vr.per_cpu)
        no_incl_msgs = sum(s.coherence_to_l1() for s in no_incl.per_cpu)
        assert no_incl_msgs > 2 * vr_msgs

    def test_rr_inclusion_shields_like_vr(self):
        """Paper §4: inclusion gives R-R approximately the same saving."""
        vr = simulate("pops", SCALE, "4K", "64K", HierarchyKind.VR)
        rr = simulate("pops", SCALE, "4K", "64K", HierarchyKind.RR_INCLUSION)
        vr_msgs = sum(s.coherence_to_l1() for s in vr.per_cpu)
        rr_msgs = sum(s.coherence_to_l1() for s in rr.per_cpu)
        no_incl = simulate(
            "pops", SCALE, "4K", "64K", HierarchyKind.RR_NO_INCLUSION
        )
        no_incl_msgs = sum(s.coherence_to_l1() for s in no_incl.per_cpu)
        assert abs(vr_msgs - rr_msgs) < no_incl_msgs - max(vr_msgs, rr_msgs)

    def test_split_close_to_unified(self):
        """Paper Tables 8-10: split I/D hit ratios are very close to a
        unified cache's."""
        unified = simulate("pops", SCALE, "4K", "64K", HierarchyKind.VR)
        split = simulate(
            "pops", SCALE, "4K", "64K", HierarchyKind.VR, split_l1=True
        )
        assert split.h1 == pytest.approx(unified.h1, abs=0.03)

    def test_synonyms_resolved_not_duplicated(self):
        """V-R runs on all traces resolve synonyms through the
        second level (counters fire) without breaking invariants."""

        result = simulate("abaqus", SCALE, "4K", "64K", HierarchyKind.VR)
        total = result.aggregate()
        restores = (
            total.counters["synonym_sameset"]
            + total.counters["synonym_moves"]
            + total.counters["swapped_restores"]
        )
        assert restores > 0

    def test_swapped_writebacks_spread(self):
        """Paper Table 3: with the swapped-valid bit, context-switch
        write-backs spread over time instead of bursting."""
        result = simulate("abaqus", SCALE, "16K", "256K", HierarchyKind.VR)
        total = result.aggregate()
        assert total.counters["swapped_writebacks"] > 0

    def test_hit_ratios_in_paper_band(self):
        """Measured h1 lands near Table 6 (within a few points)."""
        expectations = {
            ("thor", "4K", "64K"): 0.925,
            ("pops", "4K", "64K"): 0.928,
            ("abaqus", "4K", "64K"): 0.852,
        }
        for (trace, l1, l2), paper in expectations.items():
            measured = simulate(trace, SCALE, l1, l2, HierarchyKind.VR).h1
            assert measured == pytest.approx(paper, abs=0.05), trace
