"""The simulation service: protocol, admission, breaker, scheduler, HTTP.

The load-bearing guarantees:

* request validation is complete and eager — nothing malformed reaches
  the scheduler, and served payloads are byte-identical to what a
  direct in-process ``simulate()`` call produces;
* identical concurrent requests coalesce onto one computation;
* the admission queue is bounded (full ⇒ shed) and the rate limiter
  and breaker reject with machine-readable reasons and Retry-After;
* the breaker walks closed → open → half-open → closed exactly as the
  fake-clock drives it, and an open breaker still serves cache hits;
* draining finishes in-flight work and then refuses new misses.

Scheduler tests inject a fake runner so no worker pools are spawned;
one end-to-end test runs the real HTTP app over a real socket at a
tiny scale.
"""

from __future__ import annotations

import asyncio
import json
import pickle
import threading

import pytest

from repro.common.errors import ConfigurationError, RequestError
from repro.experiments import base
from repro.experiments.base import RunOptions, clear_caches, set_run_options
from repro.hierarchy.config import HierarchyKind
from repro.runner.disk_cache import key_digest
from repro.runner.pool import RunReport
from repro.runner.supervisor import SupervisorConfig
from repro.serve import (
    BreakerState,
    CircuitBreaker,
    DeadlineExceededError,
    DegradedError,
    DrainingError,
    JobFailedError,
    QueueFullError,
    RateLimiter,
    SchedulerConfig,
    ServeApp,
    ServeScheduler,
    TokenBucket,
    parse_request,
    reset_serve_metrics,
    result_payload,
    serve_metrics,
)

SCALE = 0.002


@pytest.fixture(autouse=True)
def _fresh_state():
    clear_caches()
    reset_serve_metrics()
    yield
    set_run_options(RunOptions())
    clear_caches()
    reset_serve_metrics()


def _request(**fields):
    body = {"trace": "pops", "scale": SCALE, "l1": "4K", "l2": "64K", "kind": "vr"}
    body.update(fields)
    return parse_request(json.dumps(body).encode())


def _counters():
    return serve_metrics().snapshot()["counters"]


# -- protocol ----------------------------------------------------------------


class TestProtocol:
    def test_parse_round_trip(self):
        request = _request(seed=3, split_l1=True, deadline_s=2.5, client="ci")
        job = request.job()
        assert job.trace == "pops"
        assert job.kind is HierarchyKind.VR
        assert job.seed == 3
        assert job.split_l1
        assert request.deadline_s == 2.5
        assert request.client == "ci"

    def test_defaults_fill_in(self):
        request = parse_request(b"{}")
        job = request.job()
        assert job.trace == "pops"
        assert job.l1 == "4K" and job.l2 == "64K"
        assert request.deadline_s is None
        assert request.client == "anon"

    def test_config_overrides_are_sorted_tuples(self):
        request = _request(
            config_overrides={"l2_associativity": 4, "l1_associativity": 2},
            l1="8K",
            l2="128K",
        )
        assert request.job().config_overrides == (
            ("l1_associativity", 2),
            ("l2_associativity", 4),
        )

    @pytest.mark.parametrize(
        "body",
        [
            b"not json",
            b"[1, 2]",
            b'{"bogus_field": 1}',
            b'{"trace": "nonexistent"}',
            b'{"trace": "file:/etc/passwd"}',
            b'{"scale": 0}',
            b'{"scale": 100}',
            b'{"kind": "magic"}',
            b'{"l1": "3K"}',
            b'{"block_size": "yes"}',
            b'{"deadline_s": -1}',
            b'{"config_overrides": {"l1_assoc": [1]}}',
            b'{"config_overrides": {"not_a_knob": 1}}',
            b'{"split_l1": "true"}',
        ],
    )
    def test_bad_requests_rejected(self, body):
        with pytest.raises(RequestError):
            parse_request(body)

    def test_result_payload_is_deterministic(self):
        result = base.simulate("pops", SCALE, "4K", "64K", HierarchyKind.VR)
        payload = result_payload(result)
        copied = pickle.loads(pickle.dumps(result))
        assert json.dumps(payload, sort_keys=True) == json.dumps(
            result_payload(copied), sort_keys=True
        )
        assert payload["refs_processed"] == result.refs_processed
        assert "timers" not in payload  # wall-clock never served


# -- admission ---------------------------------------------------------------


class TestRateLimiter:
    def test_bucket_spends_and_refills(self):
        clock = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2.0, now=0.0)
        assert bucket.try_take(clock[0])
        assert bucket.try_take(clock[0])
        assert not bucket.try_take(clock[0])
        assert bucket.seconds_until_token() == pytest.approx(0.5)
        assert bucket.try_take(0.5)  # refilled one token after 0.5s
        assert not bucket.try_take(0.5)

    def test_limiter_is_per_client(self):
        clock = [0.0]
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=lambda: clock[0])
        assert limiter.allow("a")
        assert not limiter.allow("a")
        assert limiter.allow("b")  # separate budget
        assert limiter.retry_after("a") == pytest.approx(1.0)
        clock[0] = 1.0
        assert limiter.allow("a")

    def test_disabled_limiter_allows_everything(self):
        limiter = RateLimiter(rate=0.0)
        assert not limiter.enabled
        assert all(limiter.allow("x") for _ in range(100))
        assert limiter.retry_after("x") == 0.0

    def test_client_table_is_bounded(self):
        clock = [0.0]
        limiter = RateLimiter(
            rate=1.0, burst=1.0, max_clients=4, clock=lambda: clock[0]
        )
        for i in range(10):
            clock[0] += 0.01
            limiter.allow(f"client-{i}")
        assert len(limiter._buckets) <= 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RateLimiter(rate=1.0, burst=0.5)
        with pytest.raises(ConfigurationError):
            RateLimiter(rate=1.0, max_clients=0)


# -- the circuit breaker -----------------------------------------------------


class TestCircuitBreaker:
    def _breaker(self, clock, **kwargs):
        defaults = dict(threshold=3, window_s=10.0, cooldown_s=5.0)
        defaults.update(kwargs)
        return CircuitBreaker(clock=lambda: clock[0], **defaults)

    def test_opens_at_threshold_inside_window(self):
        clock = [0.0]
        breaker = self._breaker(clock)
        breaker.record(2)
        assert breaker.state is BreakerState.CLOSED
        breaker.record(1)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened == 1
        assert not breaker.admits()
        assert not breaker.allow()

    def test_window_slides(self):
        clock = [0.0]
        breaker = self._breaker(clock)
        breaker.record(2)
        clock[0] = 11.0  # both events age out of the window
        breaker.record(1)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_grants_exactly_one_probe(self):
        clock = [0.0]
        breaker = self._breaker(clock)
        breaker.record(3)
        assert breaker.retry_after() == pytest.approx(5.0)
        clock[0] = 5.1
        assert breaker.admits()  # cooldown elapsed: probe-capable
        assert breaker.allow()  # the probe token
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow()  # a second batch must wait
        assert not breaker.admits()

    def test_clean_probe_closes(self):
        clock = [0.0]
        breaker = self._breaker(clock)
        breaker.record(3)
        clock[0] = 6.0
        assert breaker.allow()
        breaker.record(0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.recovered == 1
        assert breaker.allow()

    def test_dirty_probe_reopens(self):
        clock = [0.0]
        breaker = self._breaker(clock)
        breaker.record(3)
        clock[0] = 6.0
        assert breaker.allow()
        breaker.record(1)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened == 2
        clock[0] = 10.0  # cooldown restarts from the reopen
        assert not breaker.admits()
        clock[0] = 11.1
        assert breaker.admits()

    def test_admits_never_consumes_the_probe(self):
        clock = [0.0]
        breaker = self._breaker(clock)
        breaker.record(3)
        clock[0] = 6.0
        for _ in range(5):
            assert breaker.admits()
        assert breaker.state is BreakerState.OPEN  # unchanged by admits()
        assert breaker.allow()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(window_s=0)


# -- the scheduler (fake runner: no worker pools) ----------------------------


def _ok_runner(result):
    """A runner that succeeds instantly, seeding the memo like the pool."""

    def runner(jobs, n_workers, supervisor=None):
        report = RunReport(total_jobs=len(jobs), executed=len(jobs))
        for job in jobs:
            base.seed_memo(job.key(), result)
            digest = key_digest(job.key())
            report.outcomes[digest] = "ok"
            if supervisor is not None and supervisor.on_outcome is not None:
                supervisor.on_outcome(digest, "ok")
        return report

    return runner


def _scheduler(runner, **cfg):
    defaults = dict(n_workers=1, batch_window_s=0.01, batch_max=4)
    defaults.update(cfg)
    return ServeScheduler(
        RunOptions(),
        SupervisorConfig(),
        SchedulerConfig(**defaults),
        runner=runner,
    )


@pytest.fixture(scope="module")
def tiny_result():
    result = base.simulate("pops", SCALE, "4K", "64K", HierarchyKind.VR)
    clear_caches()
    return result


class TestScheduler:
    def test_identical_requests_coalesce(self, tiny_result):
        async def main():
            scheduler = _scheduler(_ok_runner(tiny_result))
            await scheduler.start()
            results = await asyncio.gather(
                *(scheduler.submit(_request()) for _ in range(5))
            )
            await scheduler.drain()
            return results

        results = asyncio.run(main())
        sources = sorted(source for source, _ in results)
        assert sources == ["coalesced"] * 4 + ["computed"]
        assert all(result is tiny_result for _, result in results)
        counters = _counters()
        assert counters["serve.admitted"] == 1
        assert counters["serve.coalesced"] == 4
        assert counters["serve.completed"] == 1
        assert counters["serve.drained"] == 1

    def test_memo_stays_bounded_after_delivery(self, tiny_result):
        async def main():
            scheduler = _scheduler(_ok_runner(tiny_result))
            await scheduler.start()
            await scheduler.submit(_request())
            await scheduler.drain()

        asyncio.run(main())
        # The delivered result was evicted: a long-lived server's memo
        # cannot grow with its request history.
        assert base.memo_get(_request().job().key()) is None

    def test_cache_hit_short_circuits(self, tiny_result):
        async def main():
            scheduler = _scheduler(_ok_runner(tiny_result))
            await scheduler.start()
            base.seed_memo(_request().job().key(), tiny_result)
            source, result = await scheduler.submit(_request())
            await scheduler.drain()
            return source, result

        source, result = asyncio.run(main())
        assert source == "cache"
        assert result is tiny_result
        assert "serve.admitted" not in _counters()

    def test_full_queue_sheds_with_retry_after(self, tiny_result):
        release = threading.Event()
        started = threading.Event()

        def runner(jobs, n_workers, supervisor=None):
            started.set()
            release.wait(10)
            return _ok_runner(tiny_result)(jobs, n_workers, supervisor)

        async def main():
            scheduler = _scheduler(
                runner, queue_limit=1, batch_max=1, batch_window_s=0.0
            )
            await scheduler.start()
            first = asyncio.ensure_future(scheduler.submit(_request(seed=1)))
            await asyncio.to_thread(started.wait, 5)
            second = asyncio.ensure_future(scheduler.submit(_request(seed=2)))
            while scheduler.stats()["queued"] < 1:
                await asyncio.sleep(0.005)
            with pytest.raises(QueueFullError) as excinfo:
                await scheduler.submit(_request(seed=3))
            release.set()
            results = await asyncio.gather(first, second)
            await scheduler.drain()
            return excinfo.value, results

        rejection, results = asyncio.run(main())
        assert rejection.status == 429
        assert rejection.retry_after_s is not None
        assert [source for source, _ in results] == ["computed", "computed"]
        assert _counters()["serve.shed"] == 1

    def test_client_deadline_maps_to_504(self, tiny_result):
        release = threading.Event()

        def runner(jobs, n_workers, supervisor=None):
            release.wait(10)
            return _ok_runner(tiny_result)(jobs, n_workers, supervisor)

        async def main():
            scheduler = _scheduler(runner)
            await scheduler.start()
            with pytest.raises(DeadlineExceededError):
                await scheduler.submit(_request(deadline_s=0.05))
            release.set()
            await scheduler.drain()

        asyncio.run(main())
        assert _counters()["serve.deadline_exceeded"] == 1

    def test_deadlines_reach_the_supervisor_config(self, tiny_result):
        seen = {}

        def runner(jobs, n_workers, supervisor=None):
            seen["deadlines"] = supervisor.job_deadline_s
            return _ok_runner(tiny_result)(jobs, n_workers, supervisor)

        async def main():
            scheduler = _scheduler(runner, batch_window_s=0.0)
            await scheduler.start()
            request = _request(deadline_s=7.5)
            await scheduler.submit(request)
            await scheduler.drain()
            return key_digest(request.job().key())

        digest = asyncio.run(main())
        assert seen["deadlines"] == {digest: 7.5}

    def test_supervisor_timeout_fails_the_request(self, tiny_result):
        def runner(jobs, n_workers, supervisor=None):
            report = RunReport(total_jobs=len(jobs))
            for job in jobs:
                report.outcomes[key_digest(job.key())] = "timed_out"
            return report

        async def main():
            scheduler = _scheduler(runner)
            await scheduler.start()
            with pytest.raises(DeadlineExceededError):
                await scheduler.submit(_request())
            await scheduler.drain()

        asyncio.run(main())

    def test_quarantined_job_fails_the_request(self, tiny_result):
        def runner(jobs, n_workers, supervisor=None):
            report = RunReport(total_jobs=len(jobs), quarantined=len(jobs))
            for job in jobs:
                report.outcomes[key_digest(job.key())] = "quarantined"
            return report

        async def main():
            scheduler = _scheduler(runner)
            await scheduler.start()
            with pytest.raises(JobFailedError):
                await scheduler.submit(_request())
            await scheduler.drain()

        asyncio.run(main())
        assert _counters()["serve.failed"] == 1

    def test_breaker_opens_degrades_and_recovers(self, tiny_result):
        healthy = {"flag": False}

        def runner(jobs, n_workers, supervisor=None):
            if not healthy["flag"]:
                report = RunReport(total_jobs=len(jobs), pool_rebuilds=1)
                for job in jobs:
                    report.outcomes[key_digest(job.key())] = "quarantined"
                return report
            return _ok_runner(tiny_result)(jobs, n_workers, supervisor)

        clock = [0.0]
        breaker = CircuitBreaker(
            threshold=1, window_s=60.0, cooldown_s=5.0, clock=lambda: clock[0]
        )

        async def main():
            scheduler = ServeScheduler(
                RunOptions(),
                SupervisorConfig(),
                SchedulerConfig(n_workers=1, batch_window_s=0.0, batch_max=4),
                breaker=breaker,
                runner=runner,
            )
            await scheduler.start()
            # 1. A failing batch opens the breaker (threshold 1).
            with pytest.raises(JobFailedError):
                await scheduler.submit(_request(seed=1))
            assert breaker.state is BreakerState.OPEN
            # 2. Misses are refused while open; cache hits still serve.
            with pytest.raises(DegradedError) as excinfo:
                await scheduler.submit(_request(seed=2))
            assert excinfo.value.retry_after_s is not None
            base.seed_memo(_request(seed=9).job().key(), tiny_result)
            source, _ = await scheduler.submit(_request(seed=9))
            assert source == "cache"
            # 3. Past the cooldown the next miss is the half-open probe;
            #    a healthy pool closes the breaker again.
            healthy["flag"] = True
            clock[0] = 6.0
            source, _ = await scheduler.submit(_request(seed=3))
            assert source == "computed"
            assert breaker.state is BreakerState.CLOSED
            await scheduler.drain()

        asyncio.run(main())
        counters = _counters()
        assert counters["serve.breaker_open"] == 1
        assert counters["serve.degraded"] == 1
        assert counters["serve.breaker_recovered"] == 1

    def test_draining_refuses_new_misses(self, tiny_result):
        async def main():
            scheduler = _scheduler(_ok_runner(tiny_result))
            await scheduler.start()
            await scheduler.submit(_request())
            await scheduler.drain()
            base.seed_memo(_request(seed=5).job().key(), tiny_result)
            source, _ = await scheduler.submit(_request(seed=5))
            assert source == "cache"  # hits still served while draining
            with pytest.raises(DrainingError):
                await scheduler.submit(_request(seed=6))

        asyncio.run(main())

    def test_dead_batcher_fails_waiters_and_drains(self, tiny_result):
        # A bug escaping the batching loop must not strand waiters on
        # futures that never settle, and drain() must still return.
        class BoomBreaker(CircuitBreaker):
            def allow(self):
                raise RuntimeError("injected batcher bug")

        async def main():
            scheduler = ServeScheduler(
                RunOptions(),
                SupervisorConfig(),
                SchedulerConfig(n_workers=1, batch_window_s=0.01, batch_max=4),
                breaker=BoomBreaker(),
                runner=_ok_runner(tiny_result),
            )
            await scheduler.start()
            with pytest.raises(JobFailedError, match="batching loop died"):
                await scheduler.submit(_request())
            await asyncio.wait_for(scheduler.drain(), 2)

        asyncio.run(main())
        assert _counters()["serve.batcher_died"] == 1

    def test_serve_metric_names_are_lintable(self):
        from repro.analysis.lint import known_metric_names
        from repro.obs import SERVE_METRIC_NAMES

        assert set(SERVE_METRIC_NAMES) <= known_metric_names()


# -- HTTP end to end ---------------------------------------------------------


async def _http(port: int, method: str, path: str, body: bytes = b"") -> tuple:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    request = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode() + body
    writer.write(request)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, payload = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    headers = dict(
        line.decode().split(": ", 1)
        for line in head.split(b"\r\n")[1:]
        if b": " in line
    )
    return status, headers, json.loads(payload) if payload else None


class TestHttpEndToEnd:
    def test_simulate_health_metrics_and_errors(self, tiny_result, tmp_path):
        async def main():
            options = RunOptions(cache_dir=str(tmp_path / "cache"))
            scheduler = ServeScheduler(
                options,
                SupervisorConfig(),
                SchedulerConfig(n_workers=1, batch_window_s=0.01, batch_max=2),
                runner=_ok_runner(tiny_result),
            )
            app = ServeApp(
                scheduler,
                RateLimiter(rate=0.0),
                {"schema": "test", "engine": "object"},
            )
            await scheduler.start()
            server = await asyncio.start_server(app.handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            body = json.dumps(
                {"trace": "pops", "scale": SCALE, "kind": "vr"}
            ).encode()

            status, _, health = await _http(port, "GET", "/healthz")
            assert status == 200 and health["status"] == "ok"
            status, _, ready = await _http(port, "GET", "/readyz")
            assert status == 200 and ready["ready"]

            status, _, payload = await _http(port, "POST", "/simulate", body)
            assert status == 200
            assert payload["source"] == "computed"
            assert payload["provenance"]["schema"] == "test"
            assert payload["result"] == result_payload(tiny_result)

            status, _, errors = await _http(port, "POST", "/simulate", b"junk")
            assert status == 400 and errors["error"] == "bad_request"
            status, _, _ = await _http(port, "GET", "/nowhere")
            assert status == 404
            status, _, _ = await _http(port, "GET", "/simulate")
            assert status == 405
            status, _, _ = await _http(port, "POST", "/chaosz", b"{}")
            assert status == 404  # disabled without --allow-chaos

            status, _, metrics = await _http(port, "GET", "/metricz")
            assert status == 200
            assert metrics["counters"]["serve.admitted"] == 1

            await scheduler.drain()
            status, _, _ = await _http(port, "GET", "/readyz")
            assert status == 503
            server.close()
            await server.wait_closed()

        asyncio.run(main())

    def test_rate_limit_answers_429(self, tiny_result):
        async def main():
            scheduler = _scheduler(_ok_runner(tiny_result))
            clock = [0.0]
            app = ServeApp(
                scheduler,
                RateLimiter(rate=1.0, burst=1.0, clock=lambda: clock[0]),
                {},
            )
            await scheduler.start()
            server = await asyncio.start_server(app.handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            body = json.dumps({"trace": "pops", "scale": SCALE}).encode()
            status, _, _ = await _http(port, "POST", "/simulate", body)
            assert status == 200
            status, headers, payload = await _http(port, "POST", "/simulate", body)
            assert status == 429
            assert payload["error"] == "rate_limited"
            assert "Retry-After" in headers
            await scheduler.drain()
            server.close()
            await server.wait_closed()

        asyncio.run(main())
        assert _counters()["serve.rate_limited"] == 1
