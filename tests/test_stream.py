"""Stream-layer tests: chunks, formats, torn files, resume (DESIGN §14)."""

from __future__ import annotations

import gzip
import json
import struct

import numpy as np
import pytest

from repro.common.errors import TraceFormatError
from repro.faults.checkpoint import run_checkpointed
from repro.hierarchy.config import HierarchyConfig, HierarchyKind
from repro.mmu.address_space import DemandLayout
from repro.system.multiprocessor import Multiprocessor
from repro.trace import textio
from repro.trace.binio import (
    MAGIC,
    RECORD_SIZE,
    VERSION,
    BinaryTraceReader,
    BinaryTraceWriter,
    write_binary,
)
from repro.trace.formats import TextTraceStream, open_trace, sniff_format
from repro.trace.record import RefKind, TraceRecord
from repro.trace.stream import (
    KIND_TO_CODE,
    StreamCursor,
    SyntheticTraceStream,
    TraceChunk,
    TraceStream,
    chunk_iter,
)
from repro.trace.synchro import SynchroTraceReader, parse_event_line
from repro.trace.workloads import get_spec, make_workload


def _records(n: int = 100) -> list[TraceRecord]:
    kinds = [RefKind.INSTR, RefKind.READ, RefKind.WRITE, RefKind.CSWITCH]
    return [
        TraceRecord(i % 2, i % 3, kinds[i % len(kinds)], 0x1000 + 16 * i)
        for i in range(n)
    ]


# -- chunks --------------------------------------------------------------------


class TestTraceChunk:
    def test_round_trips_records(self):
        records = _records(50)
        chunk = TraceChunk.from_records(records, start=7)
        assert len(chunk) == 50
        assert chunk.start == 7
        assert chunk.end == 57
        assert list(chunk.records()) == records

    def test_kind_codes_match_engine_encoding(self):
        chunk = TraceChunk.from_records(_records(40))
        for code, record in zip(chunk.kind.tolist(), _records(40)):
            assert code == KIND_TO_CODE[record.kind]

    def test_memory_refs_counts_non_markers(self):
        records = _records(40)  # every 4th is a CSWITCH
        chunk = TraceChunk.from_records(records)
        assert chunk.memory_refs == sum(1 for r in records if r.is_memory)

    def test_tail_trims_and_preserves_positions(self):
        chunk = TraceChunk.from_records(_records(20), start=100)
        tail = chunk.tail(5)
        assert tail.start == 105
        assert len(tail) == 15
        assert list(tail.records()) == _records(20)[5:]
        assert chunk.tail(0) is chunk

    def test_tail_rejects_bad_skip(self):
        chunk = TraceChunk.from_records(_records(10))
        with pytest.raises(ValueError):
            chunk.tail(11)
        with pytest.raises(ValueError):
            chunk.tail(-1)

    def test_unequal_vectors_rejected(self):
        with pytest.raises(ValueError):
            TraceChunk(
                np.zeros(3, dtype=np.int64),
                np.zeros(2, dtype=np.int64),
                np.zeros(3, dtype=np.int64),
                np.zeros(3, dtype=np.int64),
            )


def test_chunk_iter_batches_with_absolute_positions():
    chunks = list(chunk_iter(_records(25), chunk_records=10, start=40))
    assert [len(c) for c in chunks] == [10, 10, 5]
    assert [c.start for c in chunks] == [40, 50, 60]
    flattened = [r for c in chunks for r in c.records()]
    assert flattened == _records(25)


def test_chunk_iter_rejects_bad_chunk_size():
    with pytest.raises(ValueError):
        list(chunk_iter(_records(5), chunk_records=0))


# -- synthetic streams ---------------------------------------------------------


class TestSyntheticTraceStream:
    def test_matches_materialised_workload(self):
        spec = get_spec("pops", 0.005)
        stream = SyntheticTraceStream(spec, chunk_records=333)
        assert list(stream) == make_workload("pops", 0.005).records()

    def test_resume_skips_exactly(self):
        spec = get_spec("thor", 0.005)
        stream = SyntheticTraceStream(spec, chunk_records=256)
        full = list(stream.records())
        assert list(stream.records(start=1000)) == full[1000:]

    def test_chunks_restartable(self):
        spec = get_spec("pops", 0.003)
        stream = SyntheticTraceStream(spec, chunk_records=128)
        first = [len(c) for c in stream.chunks()]
        second = [len(c) for c in stream.chunks()]
        assert first == second

    def test_provenance_is_spec_stable(self):
        spec = get_spec("pops", 0.01)
        a = SyntheticTraceStream(spec).provenance()
        b = SyntheticTraceStream(spec).provenance()
        assert a == b
        assert a[0] == "synthetic"
        other = SyntheticTraceStream(get_spec("thor", 0.01)).provenance()
        assert other != a


class TestStreamCursor:
    def test_take_walks_the_stream(self):
        stream = SyntheticTraceStream(get_spec("pops", 0.003), 100)
        full = list(stream)
        cursor = StreamCursor(stream)
        taken = []
        while batch := cursor.take(97):
            taken.extend(batch)
        assert taken == full
        assert cursor.position == len(full)
        assert cursor.take(10) == []

    def test_resume_position(self):
        stream = SyntheticTraceStream(get_spec("pops", 0.003), 100)
        full = list(stream)
        cursor = StreamCursor(stream, position=500)
        assert cursor.take(100) == full[500:600]

    def test_rejects_bad_args(self):
        stream = SyntheticTraceStream(get_spec("pops", 0.003))
        with pytest.raises(ValueError):
            StreamCursor(stream, position=-1)
        with pytest.raises(ValueError):
            StreamCursor(stream).take(0)


# -- binary format -------------------------------------------------------------


class TestBinaryFormat:
    def test_write_read_round_trip(self, tmp_path):
        records = _records(1000)
        path = tmp_path / "t.rtb"
        written = write_binary(records, path, chunk_records=64)
        assert written == 1000
        reader = BinaryTraceReader(path)
        assert reader.n_records == 1000
        assert list(reader) == records

    def test_chunk_resume_seeks_mid_frame(self, tmp_path):
        records = _records(500)
        path = tmp_path / "t.rtb"
        write_binary(records, path, chunk_records=64)
        reader = BinaryTraceReader(path)
        for start in (0, 1, 63, 64, 65, 250, 499, 500):
            assert list(reader.records(start)) == records[start:], start

    def test_deterministic_bytes(self, tmp_path):
        records = _records(300)
        a, b = tmp_path / "a.rtb", tmp_path / "b.rtb"
        write_binary(records, a, chunk_records=50)
        write_binary(iter(records), b, chunk_records=50)
        assert a.read_bytes() == b.read_bytes()

    def test_text_binary_text_byte_identical(self, tmp_path):
        records = make_workload("abaqus", 0.003).records()
        text1 = tmp_path / "a.din"
        binary = tmp_path / "a.rtb"
        text2 = tmp_path / "b.din"
        textio.dump(records, text1)
        write_binary(open_trace(text1), binary, chunk_records=128)
        textio.dump(open_trace(binary), text2)
        assert text1.read_bytes() == text2.read_bytes()

    def test_provenance_pins_file_bytes(self, tmp_path):
        path = tmp_path / "t.rtb"
        write_binary(_records(100), path)
        fmt, version, digest = BinaryTraceReader(path).provenance()
        assert (fmt, version) == ("rtb", VERSION)
        write_binary(_records(101), path)
        assert BinaryTraceReader(path).provenance()[2] != digest

    def test_writer_rejects_out_of_range_fields(self, tmp_path):
        bad = [TraceRecord(1 << 16, 0, RefKind.READ, 0x100)]
        with pytest.raises(TraceFormatError):
            write_binary(bad, tmp_path / "t.rtb")

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.rtb"
        assert write_binary([], path) == 0
        reader = BinaryTraceReader(path)
        assert reader.n_records == 0
        assert list(reader) == []


class TestTornBinaryFiles:
    """Satellite: torn/truncated binaries raise structured errors and
    never surface partial records."""

    def _valid(self, tmp_path, n=200, chunk=64):
        path = tmp_path / "t.rtb"
        write_binary(_records(n), path, chunk_records=chunk)
        return path

    def test_bad_magic(self, tmp_path):
        path = self._valid(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[:4] = b"NOPE"
        path.write_bytes(bytes(raw))
        with pytest.raises(TraceFormatError, match="bad magic"):
            BinaryTraceReader(path)

    def test_wrong_version(self, tmp_path):
        path = self._valid(tmp_path)
        raw = bytearray(path.read_bytes())
        struct.pack_into("<H", raw, 4, 99)
        path.write_bytes(bytes(raw))
        with pytest.raises(TraceFormatError, match="version 99"):
            BinaryTraceReader(path)

    def test_truncated_header(self, tmp_path):
        path = self._valid(tmp_path)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(TraceFormatError, match="truncated header"):
            BinaryTraceReader(path)

    def test_truncated_frame_header(self, tmp_path):
        path = self._valid(tmp_path)
        raw = path.read_bytes()
        # Cut into the second frame's 12-byte header.
        reader = BinaryTraceReader(path)
        second = reader.frame_index()[1]
        path.write_bytes(raw[: second[1] + 5])
        with pytest.raises(TraceFormatError, match="truncated frame header"):
            BinaryTraceReader(path).frame_index()

    def test_truncated_payload_mid_record(self, tmp_path):
        path = self._valid(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-7])  # tear the last frame's payload
        reader = BinaryTraceReader(path)
        with pytest.raises(TraceFormatError, match="past|truncated"):
            list(reader)

    def test_corrupt_payload_never_yields_partial_records(self, tmp_path):
        path = self._valid(tmp_path, n=128, chunk=64)
        raw = bytearray(path.read_bytes())
        reader = BinaryTraceReader(path)
        first = reader.frame_index()[0]
        # Replace the first frame's payload with a gzip of a short
        # (mid-record) byte string, fixing up the length field.
        torn = gzip.compress(b"\0" * (RECORD_SIZE + 3), mtime=0)
        header_end = first[1] + 12
        rest = bytes(raw[header_end + first[3] :])
        new = (
            bytes(raw[: first[1]])
            + struct.pack("<4sII", b"RPFR", first[2], len(torn))
            + torn
            + rest
        )
        path.write_bytes(new)
        fresh = BinaryTraceReader(path)
        seen: list = []
        with pytest.raises(TraceFormatError, match="mid-record EOF"):
            for record in fresh:
                seen.append(record)
        assert seen == []  # the torn frame yielded nothing at all

    def test_record_count_mismatch(self, tmp_path):
        path = self._valid(tmp_path)
        raw = bytearray(path.read_bytes())
        struct.pack_into("<Q", raw, 12, 9999)  # lie about n_records
        path.write_bytes(bytes(raw))
        with pytest.raises(TraceFormatError, match="promises 9999"):
            BinaryTraceReader(path).frame_index()


# -- text I/O satellite --------------------------------------------------------


class TestTextIO:
    def test_dump_gzip_by_suffix_round_trip(self, tmp_path):
        records = _records(500)
        path = tmp_path / "t.din.gz"
        assert textio.dump(records, path) == 500
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        assert list(textio.load(path)) == records

    def test_gzip_dump_deterministic(self, tmp_path):
        a, b = tmp_path / "a.gz", tmp_path / "b.gz"
        textio.dump(_records(100), a)
        textio.dump(_records(100), b)
        assert a.read_bytes() == b.read_bytes()

    @pytest.mark.parametrize(
        "line, column",
        [
            ("x 1 r 10", 1),
            ("0 x r 10", 2),
            ("0 1 q 10", 3),
            ("0 1 r zz", 4),
        ],
    )
    def test_parse_line_reports_offending_column(self, line, column):
        with pytest.raises(TraceFormatError) as err:
            textio.parse_line(line, lineno=3)
        assert f"column {column}" in str(err.value)
        assert err.value.context["column"] == column

    def test_parse_line_field_count_message_unchanged(self):
        with pytest.raises(TraceFormatError, match="4 fields"):
            textio.parse_line("1 2 3", lineno=1)


# -- SynchroTrace dialect ------------------------------------------------------


class TestSynchro:
    def _write(self, directory, tid, lines):
        directory.mkdir(exist_ok=True)
        with gzip.open(
            directory / f"sigil.events.out-{tid}.gz", "wt"
        ) as handle:
            handle.write("\n".join(lines) + "\n")

    def test_lowering_round_robin(self, tmp_path):
        st = tmp_path / "st"
        self._write(st, 0, ["1,0,2,0,1,1 * 4096 4111 $ 8192 8207"])
        self._write(st, 1, ["1,1,1,0,1,0 * 12288 12303"])
        reader = SynchroTraceReader(st, n_cpus=2)
        records = list(reader)
        # One INSTR per event, then the ranges; threads interleaved.
        assert [r.pid for r in records] == [0, 0, 0, 1, 1]
        assert [r.kind for r in records] == [
            RefKind.INSTR,
            RefKind.READ,
            RefKind.WRITE,
            RefKind.INSTR,
            RefKind.READ,
        ]
        assert records[1].vaddr == 4096
        assert records[2].vaddr == 8192

    def test_communication_event_reads_produced_range(self, tmp_path):
        st = tmp_path / "st"
        self._write(st, 0, ["1,0 # 1 5 8192 8223"])
        records = list(SynchroTraceReader(st, n_cpus=1))
        reads = [r for r in records if r.kind is RefKind.READ]
        assert [r.vaddr for r in reads] == [8192, 8208]

    def test_pthread_marker_touches_sync_address(self, tmp_path):
        st = tmp_path / "st"
        self._write(st, 0, ["1,0,pth_ty:1^81920"])
        records = list(SynchroTraceReader(st, n_cpus=1))
        assert records[-1].kind is RefKind.READ
        assert records[-1].vaddr == 81920

    def test_range_cap_bounds_huge_events(self, tmp_path):
        st = tmp_path / "st"
        self._write(st, 0, ["1,0,1,0,1,0 * 0 1048576"])
        reader = SynchroTraceReader(st, n_cpus=1, max_range_refs=4)
        reads = [r for r in reader if r.kind is RefKind.READ]
        assert len(reads) == 4

    @pytest.mark.parametrize(
        "line",
        [
            "1,0,5,0",  # wrong CSV arity
            "1,0,x,0,1,0",  # non-integer iops
            "1,0,1,0,1,0 * 4096",  # dangling range
            "1,0,1,0,1,0 * 9 5",  # inverted range
            "1,0 # 1 5 10",  # short communication edge
            "1,0,pth_ty:1",  # marker missing address
        ],
    )
    def test_malformed_events_raise_structured_errors(self, tmp_path, line):
        with pytest.raises(TraceFormatError):
            parse_event_line(line, tmp_path / "f.gz", 3)

    def test_empty_directory_rejected(self, tmp_path):
        empty = tmp_path / "st"
        empty.mkdir()
        with pytest.raises(TraceFormatError):
            SynchroTraceReader(empty)


# -- sniffing ------------------------------------------------------------------


class TestOpenTrace:
    def test_sniffs_all_formats(self, tmp_path):
        records = _records(64)
        din = tmp_path / "t.din"
        rtb = tmp_path / "t.rtb"
        gz = tmp_path / "t.din.gz"
        textio.dump(records, din)
        write_binary(records, rtb)
        textio.dump(records, gz)
        st = tmp_path / "st"
        st.mkdir()
        with gzip.open(st / "sigil.events.out-0.gz", "wt") as handle:
            handle.write("1,0,1,0,1,0 * 4096 4096\n")
        assert sniff_format(din) == "din"
        assert sniff_format(rtb) == "rtb"
        assert sniff_format(gz) == "din"
        assert sniff_format(st) == "synchro"
        assert list(open_trace(din)) == records
        assert list(open_trace(rtb)) == records
        assert list(open_trace(gz)) == records
        assert isinstance(open_trace(st), SynchroTraceReader)

    def test_missing_path_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError):
            open_trace(tmp_path / "missing.din")

    def test_garbage_file_rejected(self, tmp_path):
        junk = tmp_path / "junk.din"
        junk.write_bytes(b"\x00\x01\x02 not a trace\n")
        with pytest.raises(TraceFormatError):
            open_trace(junk)

    def test_text_stream_resume(self, tmp_path):
        records = _records(100)
        din = tmp_path / "t.din"
        textio.dump(records, din)
        stream = TextTraceStream(din, chunk_records=16)
        assert list(stream.records(start=37)) == records[37:]


# -- engine + checkpoint integration ------------------------------------------


class TestStreamedReplay:
    def _config(self):
        return HierarchyConfig.sized("1K", "16K")

    def test_both_engines_match_in_memory_run(self, tmp_path):
        spec = get_spec("pops", 0.004)
        workload = make_workload("pops", 0.004)
        records = workload.records()
        path = tmp_path / "t.rtb"
        write_binary(records, path, chunk_records=512)

        reference = Multiprocessor(
            workload.layout, spec.n_cpus, self._config()
        ).run(records)
        for engine in ("object", "soa"):
            machine = Multiprocessor(
                DemandLayout(), spec.n_cpus, self._config(), engine=engine
            )
            result = machine.run(BinaryTraceReader(path))
            assert result.refs_processed == reference.refs_processed
            # External traces translate through a demand layout, so
            # physical placement differs from the synthetic layout —
            # but both engines must agree with each other.
            if engine == "object":
                object_counters = [
                    s.counters.export_state() for s in result.per_cpu
                ]
            else:
                soa_counters = [
                    s.counters.export_state() for s in result.per_cpu
                ]
        assert object_counters == soa_counters

    def test_checkpoint_resume_bit_identical(self, tmp_path):
        records = make_workload("pops", 0.004).records()
        path = tmp_path / "t.rtb"
        write_binary(records, path, chunk_records=512)
        config = self._config()

        class Stop(Exception):
            pass

        def run(interrupt_at=None):
            ckpt = str(tmp_path / "resume.ckpt")
            machine = Multiprocessor(DemandLayout(), 4, config, engine="soa")

            def bomb(position):
                if interrupt_at is not None and position >= interrupt_at:
                    raise Stop()

            return run_checkpointed(
                machine,
                BinaryTraceReader(path),
                ckpt,
                chunk=3000,
                on_chunk=bomb,
            )

        plain_ckpt = str(tmp_path / "plain.ckpt")
        plain_machine = Multiprocessor(DemandLayout(), 4, config, engine="soa")
        plain = run_checkpointed(
            plain_machine, BinaryTraceReader(path), plain_ckpt, chunk=3000
        )
        with pytest.raises(Stop):
            run(interrupt_at=9000)
        resumed = run()
        assert resumed.refs_processed == plain.refs_processed
        assert [s.counters.export_state() for s in resumed.per_cpu] == [
            s.counters.export_state() for s in plain.per_cpu
        ]
        assert resumed.bus_transactions == plain.bus_transactions
        assert resumed.tlb_per_cpu == plain.tlb_per_cpu

    def test_demand_layout_state_round_trips(self):
        layout = DemandLayout()
        addresses = [(1, 0x1000), (1, 0x2000), (2, 0x1000), (1, 0x1008)]
        translations = [layout.translate(p, v) for p, v in addresses]
        state = layout.export_state()
        fresh = DemandLayout()
        fresh.restore_state(json.loads(json.dumps(state)))
        assert [
            fresh.translate(p, v) for p, v in addresses
        ] == translations
        assert fresh.allocator.frames_allocated == layout.allocator.frames_allocated

    def test_run_options_key_trace_provenance(self):
        from repro.experiments.base import RunOptions

        plain = RunOptions()
        streamed = RunOptions(stream=True)
        pinned = RunOptions(trace_provenance=("rtb", 1, "ab" * 32))
        keys = {
            plain.result_key_parts(),
            streamed.result_key_parts(),
            pinned.result_key_parts(),
        }
        assert len(keys) == 3


def test_trace_stream_default_surface():
    stream = TraceStream()
    assert stream.provenance() is None
    with pytest.raises(NotImplementedError):
        next(stream.chunks())
