"""Tests for the single-level cache front end (Tables 1-3 support)."""

from repro.cache.config import CacheConfig
from repro.coherence.protocol import AllocPolicy, WritePolicy
from repro.hierarchy.single import SingleLevelCache
from repro.trace.record import RefKind

I, R, W = RefKind.INSTR, RefKind.READ, RefKind.WRITE


def make_cache(**kwargs) -> SingleLevelCache:
    return SingleLevelCache(CacheConfig.create("1K", 16), **kwargs)


class TestWriteThrough:
    def test_every_write_goes_downstream(self):
        cache = make_cache(write_policy=WritePolicy.WRITE_THROUGH)
        cache.access(0x100, W)
        cache.access(0x100, W)
        assert cache.stats["downstream_writes"] == 2

    def test_no_write_allocate_by_default(self):
        cache = make_cache(write_policy=WritePolicy.WRITE_THROUGH)
        cache.access(0x100, W)
        assert not cache.access(0x100, R)  # still a miss

    def test_write_allocate_option(self):
        cache = make_cache(
            write_policy=WritePolicy.WRITE_THROUGH,
            alloc_policy=AllocPolicy.WRITE_ALLOCATE,
        )
        cache.access(0x100, W)
        assert cache.access(0x100, R)

    def test_intervals_recorded_between_writes(self):
        cache = make_cache(write_policy=WritePolicy.WRITE_THROUGH)
        cache.access(0x100, W)
        cache.access(0x200, R)
        cache.access(0x300, W)  # interval of 2 references
        assert cache.write_intervals.count(2) == 1


class TestWriteBack:
    def test_write_miss_allocates(self):
        cache = make_cache(write_policy=WritePolicy.WRITE_BACK)
        cache.access(0x100, W)
        assert cache.access(0x100, R)

    def test_clean_eviction_silent(self):
        cache = make_cache(write_policy=WritePolicy.WRITE_BACK)
        cache.access(0x100, R)
        cache.access(0x100 + 1024, R)
        assert cache.stats["downstream_writes"] == 0

    def test_dirty_eviction_writes_downstream(self):
        cache = make_cache(write_policy=WritePolicy.WRITE_BACK)
        cache.access(0x100, W)
        cache.access(0x100 + 1024, R)
        assert cache.stats["downstream_writes"] == 1

    def test_write_hits_are_free(self):
        cache = make_cache(write_policy=WritePolicy.WRITE_BACK)
        for _ in range(5):
            cache.access(0x100, W)
        assert cache.stats["downstream_writes"] == 0


class TestContextSwitchModes:
    def test_eager_flush_writes_dirty_blocks(self):
        cache = make_cache(write_policy=WritePolicy.WRITE_BACK)
        for i in range(8):
            cache.access(0x100 + i * 16, W)
        assert cache.context_switch() == 8
        assert cache.stats["switch_writebacks"] == 8

    def test_eager_flush_invalidates(self):
        cache = make_cache(write_policy=WritePolicy.WRITE_BACK)
        cache.access(0x100, R)
        cache.context_switch()
        assert not cache.access(0x100, R)

    def test_lazy_swap_defers_writebacks(self):
        cache = make_cache(write_policy=WritePolicy.WRITE_BACK, lazy_swap=True)
        for i in range(8):
            cache.access(0x100 + i * 16, W)
        assert cache.context_switch() == 0
        assert cache.stats["downstream_writes"] == 0

    def test_lazy_swapped_writeback_on_replacement(self):
        cache = make_cache(write_policy=WritePolicy.WRITE_BACK, lazy_swap=True)
        cache.access(0x100, W)
        cache.context_switch()
        cache.access(0x100 + 1024, R)  # replaces the swapped dirty block
        assert cache.stats["swapped_downstream_writes"] == 1

    def test_swapped_intervals_tracked_separately(self):
        cache = make_cache(write_policy=WritePolicy.WRITE_BACK, lazy_swap=True)
        cache.access(0x100, W)
        cache.access(0x200, W)
        cache.context_switch()
        cache.access(0x100 + 1024, R)
        for _ in range(20):
            cache.access(0x300, R)
        cache.access(0x200 + 1024, R)
        assert cache.swapped_write_intervals.observations == 1
        assert cache.swapped_write_intervals.count_top() == 1

    def test_lazy_swapped_block_misses_for_processor(self):
        cache = make_cache(write_policy=WritePolicy.WRITE_BACK, lazy_swap=True)
        cache.access(0x100, R)
        cache.context_switch()
        assert not cache.access(0x100, R)


class TestAccounting:
    def test_hit_ratio(self):
        cache = make_cache()
        cache.access(0x100, R)
        cache.access(0x100, R)
        assert cache.hit_ratio == 0.5

    def test_per_class_counters(self):
        cache = make_cache()
        cache.access(0x100, I)
        cache.access(0x200, R)
        cache.access(0x300, W)
        assert cache.stats["instr_refs"] == 1
        assert cache.stats["reads"] == 1
        assert cache.stats["writes"] == 1

    def test_per_class_hit_counters(self):
        cache = make_cache()
        cache.access(0x100, R)
        cache.access(0x100, R)
        assert cache.stats["misses_r"] == 1
        assert cache.stats["hits_r"] == 1
