"""Tests for coherent physically-addressed I/O (system.dma)."""

import itertools

import pytest

from repro.coherence.bus import Bus, MainMemory
from repro.common.errors import ConfigurationError
from repro.hierarchy.checker import check_all, check_coherence
from repro.hierarchy.config import HierarchyConfig, HierarchyKind
from repro.hierarchy.twolevel import Outcome, TwoLevelHierarchy
from repro.mmu.address_space import MemoryLayout
from repro.system.dma import DMAEngine
from repro.trace.record import RefKind

R, W = RefKind.READ, RefKind.WRITE


@pytest.fixture
def system():
    layout = MemoryLayout()
    layout.add_private_segment(1, "buf", 0x40000, 8)
    bus = Bus(MainMemory())
    counter = itertools.count(1).__next__
    hier = TwoLevelHierarchy(
        HierarchyConfig.sized("1K", "8K"), layout, bus, next_version=counter
    )
    dma = DMAEngine(bus, block_size=16)
    return layout, bus, hier, dma


class TestDmaRead:
    def test_reads_memory_default(self, system):
        _, _, _, dma = system
        assert dma.read(0x5000, 16) == [0]

    def test_flushes_dirty_v_cache_copy(self, system):
        layout, bus, hier, dma = system
        version = hier.access(1, 0x40000, W).version
        paddr = layout.translate(1, 0x40000)
        assert dma.read(paddr, 16) == [version]
        # The CPU copy survives, now clean; memory is up to date.
        assert hier.access(1, 0x40000, R).outcome is Outcome.L1_HIT
        assert bus.memory.peek(paddr >> 4) == version
        check_all(hier)

    def test_flushes_write_buffer_copy(self, system):
        layout, bus, hier, dma = system
        version = hier.access(1, 0x40000, W).version
        hier.access(1, 0x40000 + hier.config.l1.size, R)  # evict to buffer
        paddr = layout.translate(1, 0x40000)
        assert dma.read(paddr, 16) == [version]
        assert len(hier.write_buffer) == 0
        check_all(hier)

    def test_multi_block_read(self, system):
        layout, _, hier, dma = system
        v0 = hier.access(1, 0x40000, W).version
        v1 = hier.access(1, 0x40010, W).version
        paddr = layout.translate(1, 0x40000)
        assert dma.read(paddr, 32) == [v0, v1]

    def test_partial_block_rounding(self, system):
        _, _, _, dma = system
        # 17 bytes starting mid-block touch three... two blocks.
        assert len(dma.read(0x5008, 17)) == 2
        assert dma.stats["blocks_read"] == 2


class TestDmaWrite:
    def test_invalidates_cached_copies(self, system):
        layout, bus, hier, dma = system
        hier.access(1, 0x40000, R)
        paddr = layout.translate(1, 0x40000)
        dma.write(paddr, 16, version=777)
        result = hier.access(1, 0x40000, R)
        assert result.outcome is Outcome.MEMORY
        assert result.version == 777
        check_all(hier)

    def test_overwrites_dirty_copy(self, system):
        layout, bus, hier, dma = system
        hier.access(1, 0x40000, W)  # CPU holds it dirty
        paddr = layout.translate(1, 0x40000)
        dma.write(paddr, 16, version=888)
        assert hier.access(1, 0x40000, R).version == 888
        check_all(hier)

    def test_multi_block_write(self, system):
        _, bus, _, dma = system
        assert dma.write(0x5000, 64, version=5) == 4
        assert all(bus.memory.peek((0x5000 >> 4) + i) == 5 for i in range(4))

    def test_zero_bytes_rejected(self, system):
        _, _, _, dma = system
        with pytest.raises(ConfigurationError):
            dma.write(0x5000, 0, version=1)


class TestDmaCopy:
    def test_copies_cpu_written_data(self, system):
        layout, _, hier, dma = system
        version = hier.access(1, 0x40000, W).version
        src = layout.translate(1, 0x40000)
        dst = 0x9000
        dma.copy(src, dst, 16)
        assert dma.read(dst, 16) == [version]

    def test_misaligned_copy_rejected(self, system):
        _, _, _, dma = system
        with pytest.raises(ConfigurationError, match="aligned"):
            dma.copy(0x5000, 0x6008, 16)


class TestDmaAgainstMachine:
    def test_dma_churn_stays_coherent(self, system):
        layout, bus, hier, dma = system
        latest = {}
        for i in range(60):
            vaddr = 0x40000 + (i % 8) * 16
            paddr = layout.translate(1, vaddr)
            pblock = paddr >> 4
            if i % 3 == 0:
                latest[pblock] = hier.access(1, vaddr, W).version
            elif i % 3 == 1:
                dma.write(paddr, 16, version=10_000 + i)
                latest[pblock] = 10_000 + i
            else:
                assert hier.access(1, vaddr, R).version == latest.get(pblock, 0)
                assert dma.read(paddr, 16) == [latest.get(pblock, 0)]
        check_all(hier)
        check_coherence([hier])

    def test_no_inclusion_hierarchy_also_coherent(self):
        layout = MemoryLayout()
        layout.add_private_segment(1, "buf", 0x40000, 8)
        bus = Bus(MainMemory())
        hier = TwoLevelHierarchy(
            HierarchyConfig.sized(
                "1K", "1K", kind=HierarchyKind.RR_NO_INCLUSION
            ),
            layout,
            bus,
        )
        dma = DMAEngine(bus)
        version = hier.access(1, 0x40000, W).version
        # Orphan the dirty block in level 1 by flushing level 2.
        for i in range(64):
            hier.access(1, 0x41000 + i * 16, R)
        paddr = layout.translate(1, 0x40000)
        assert dma.read(paddr, 16) == [version]

    def test_for_config_helper(self, system):
        _, bus, hier, _ = system
        engine = DMAEngine.for_config(bus, hier.config.l1)
        assert engine.block_size == hier.config.l1.block_size
